"""Pytest bootstrap: make ``src/`` importable even without an editable install."""

import os
import sys

_SRC = os.path.join(os.path.dirname(__file__), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)


def pytest_addoption(parser):
    parser.addoption(
        "--quick",
        action="store_true",
        default=False,
        help="run the perf benchmark harness in its quick (CI smoke) mode",
    )


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "bench: perf benchmark harness (runs only when selected with -m bench)",
    )
