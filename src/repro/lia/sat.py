"""An incremental DPLL SAT search with a theory hook (the "DPLL(T)" loop).

The propositional engine works on the clause set produced by
:mod:`repro.lia.cnf` and is built for the *solve–refine* workloads of lazy
SMT: the clause database, watch lists, variable activities and learned theory
clauses all survive across :meth:`DpllSolver.solve` calls, so a caller that
adds a handful of clauses between checks (an MBQI instantiation lemma, a new
assertion-stack frame) restarts the boolean search with everything it learned
before.

Architecture:

* **Two-watched-literal propagation** — every clause with ≥ 2 literals
  watches two of them; unit propagation only touches the watch lists of the
  newly falsified literal instead of scanning the clause database
  (Moskewicz et al., "Chaff", DAC 2001).  Unit clauses are kept in a
  separate set and asserted at the root of every restart.
* **Activity-ordered decisions** — decisions pick the unassigned variable
  occurring most often in currently-unsatisfied clauses (the classic DLIS
  measure, which keeps chronological search focused on clauses that still
  need work) and break ties by a VSIDS-style exponentially decaying
  activity score bumped on every conflict, so repeatedly conflicting
  variables rise within their frequency class.
* **Chronological backtracking** — conflicts flip the most recent
  un-flipped decision (the classic DPLL regime).  Completeness does not
  rely on conflict clauses, so theory *blocking* clauses (which are not
  implied) are safe to add.
* **Incremental clause database** — :meth:`add_clause` (deduplicating) may
  be called between solves and during the search through the theory
  callback; :meth:`remove_unit` retracts a root-level unit assertion,
  which is how the assertion stack of :class:`repro.lia.solver.LiaSolver`
  implements ``pop`` (Tseitin definitions are implications and stay).

The theory callback receives the set of atom variables currently assigned
*true* and returns either ``None`` (consistent as far as it can tell) or a
conflict clause (a tuple of literals) that is added to the clause database.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from .intsolver import ResourceLimit

Clause = Tuple[int, ...]
TheoryCallback = Callable[[Set[int], bool], Optional[Clause]]

#: multiplicative activity decay applied after every conflict
_ACTIVITY_DECAY = 0.95
#: rescale threshold guarding against float overflow
_ACTIVITY_RESCALE = 1e100
#: conflicts per solve after which decisions switch from the DLIS scan to
#: pure activity ordering: once a search is conflict-heavy the activity
#: signal is strong, and the O(clause-database) DLIS scan per decision
#: (which keeps growing with every learned clause) starts to dominate
_DLIS_CONFLICT_LIMIT = 500


@dataclass
class SatStats:
    """Counters describing one SAT search (useful in tests and benchmarks)."""

    decisions: int = 0
    propagations: int = 0
    conflicts: int = 0
    theory_checks: int = 0
    learned_clauses: int = 0
    restarts: int = 0
    duplicate_clauses: int = 0


class DpllSolver:
    """Incremental DPLL with watched-literal propagation and a theory hook."""

    def __init__(
        self,
        num_vars: int = 0,
        clauses: Sequence[Clause] = (),
        theory_atoms: Optional[Set[int]] = None,
        theory_callback: Optional[TheoryCallback] = None,
        deadline: Optional[float] = None,
        max_conflicts: int = 200000,
    ) -> None:
        self.num_vars = 0
        #: the caller may keep mutating this set between solves (new atoms)
        self.theory_atoms = theory_atoms if theory_atoms is not None else set()
        self.theory_callback = theory_callback
        self.deadline = deadline
        self.max_conflicts = max_conflicts
        #: decision phase for theory atoms: ``False`` (the default) decides
        #: atoms positively, which drives model search on satisfiable
        #: encodings; the theory layer switches this to ``True`` on
        #: integer-sensitive refutation workloads, where deciding atoms
        #: negatively keeps the asserted-atom sets (and hence the theory
        #: conflicts) small
        self.negative_atom_phase = False
        #: set by the theory layer to restart the search at the next
        #: opportunity (keeping all clauses and activities); used when a
        #: mid-search heuristic change makes the current partial assignment
        #: worth abandoning
        self.request_restart = False
        self.stats = SatStats()

        self.clauses: List[List[int]] = []
        #: literal -> indices of clauses currently watching it
        self._watches: Dict[int, List[int]] = {}
        #: variable -> indices of clauses mentioning it (either polarity);
        #: consulted after backtracking to re-derive implications whose
        #: watched literals did not change (see :meth:`_apply_recheck`)
        self._occurrences: Dict[int, List[int]] = {}
        #: clause indices to re-examine before the next propagation round
        self._pending_recheck: Set[int] = set()
        #: set after a backtrack: unit assertions may have been unwound and
        #: must be re-asserted before the next propagation round
        self._units_dirty = False
        #: canonical (sorted) clause keys for deduplication
        self._clause_keys: Dict[Clause, int] = {}
        #: root-level unit assertions (asserted at the start of every solve)
        self._units: Set[int] = set()

        # Search state (index 0 unused; variables are 1-based).
        self._value_of: List[Optional[bool]] = [None]
        #: trail position of each variable's current assignment (valid while
        #: assigned; used to order watches on learned clauses)
        self._pos_of: List[int] = [0]
        self.trail: List[List] = []
        self._prop_head = 0
        self._true_atoms: Set[int] = set()
        #: conflict count when the current solve began (drives the DLIS →
        #: activity decision switch-over, see :meth:`_decide_var`)
        self._conflicts_at_solve_start = 0

        # Activity / decision order.
        self._activity: List[float] = [0.0]
        self._var_inc = 1.0

        self.ensure_vars(num_vars)
        for clause in clauses:
            self.add_clause(clause)

    # ------------------------------------------------------------------
    # Clause database
    # ------------------------------------------------------------------
    def ensure_vars(self, num_vars: int) -> None:
        """Grow the variable range to ``1..num_vars``."""
        while self.num_vars < num_vars:
            self.num_vars += 1
            self._value_of.append(None)
            self._pos_of.append(0)
            self._activity.append(0.0)

    def add_clause(self, clause: Sequence[int]) -> bool:
        """Add a clause (deduplicating); returns ``False`` for duplicates.

        Safe to call between solves; during the search use the learned-clause
        path of :meth:`solve` (the theory callback), which re-establishes the
        watch invariant under the current partial assignment.
        """
        literals = list(dict.fromkeys(clause))
        key = tuple(sorted(literals))
        if key in self._clause_keys:
            self.stats.duplicate_clauses += 1
            return False
        for literal in literals:
            self.ensure_vars(abs(literal))
        if len(literals) == 1:
            self._clause_keys[key] = -1
            self._units.add(literals[0])
            return True
        index = len(self.clauses)
        self._clause_keys[key] = index
        self.clauses.append(literals)
        self._watches.setdefault(literals[0], []).append(index)
        self._watches.setdefault(literals[1], []).append(index)
        for literal in literals:
            self._occurrences.setdefault(abs(literal), []).append(index)
        return True

    def remove_unit(self, literal: int) -> None:
        """Retract a root-level unit assertion added via :meth:`add_clause`."""
        self._units.discard(literal)
        self._clause_keys.pop((literal,), None)

    def retract_clause_key(self, key: Clause) -> None:
        """Retract the clause with canonical (sorted) key ``key``, if present.

        Used by the assertion stack to withdraw theory clauses that were
        strengthened with level-local information.  The clause slot is
        emptied in place (an empty slot is inert for propagation, decision
        counting and rechecking) so the remaining indices stay stable.
        """
        if not key:
            return
        index = self._clause_keys.pop(key, None)
        if index is None:
            return
        if index == -1:
            self._units.discard(key[0])
            return
        lits = self.clauses[index]
        for literal in set(lits):
            watch_list = self._watches.get(literal)
            if watch_list and index in watch_list:
                watch_list.remove(index)
            occurrence = self._occurrences.get(abs(literal))
            if occurrence and index in occurrence:
                occurrence.remove(index)
        self.clauses[index] = []
        self._pending_recheck.discard(index)

    def has_unit(self, literal: int) -> bool:
        return literal in self._units

    # ------------------------------------------------------------------
    # Assignment primitives
    # ------------------------------------------------------------------
    def _value(self, literal: int) -> Optional[bool]:
        value = self._value_of[abs(literal)]
        if value is None:
            return None
        return value if literal > 0 else not value

    def _assign(self, literal: int, is_decision: bool, tried_both: bool = False) -> None:
        var = abs(literal)
        self._value_of[var] = literal > 0
        self.trail.append([literal, is_decision, tried_both])
        self._pos_of[var] = len(self.trail) - 1
        if literal > 0 and var in self.theory_atoms:
            self._true_atoms.add(var)

    def _unassign_last(self) -> List:
        entry = self.trail.pop()
        var = abs(entry[0])
        self._value_of[var] = None
        self._true_atoms.discard(var)
        return entry

    # Compatibility view used by tests and debugging tools.
    @property
    def assignment(self) -> Dict[int, bool]:
        return {
            var: value
            for var, value in enumerate(self._value_of)
            if var and value is not None
        }

    # ------------------------------------------------------------------
    # Activity
    # ------------------------------------------------------------------
    def _bump_var(self, var: int) -> None:
        self._activity[var] += self._var_inc
        if self._activity[var] > _ACTIVITY_RESCALE:
            self._rescale_activity()

    def _rescale_activity(self) -> None:
        for var in range(1, self.num_vars + 1):
            self._activity[var] *= 1e-100
        self._var_inc *= 1e-100

    def _on_conflict_clause(self, clause: Sequence[int]) -> None:
        for literal in clause:
            self._bump_var(abs(literal))
        self._var_inc /= _ACTIVITY_DECAY

    def _decide_var(self) -> Optional[int]:
        """DLIS count over unsatisfied clauses, activity as the tie-break.

        Conflict-heavy searches (past :data:`_DLIS_CONFLICT_LIMIT` conflicts
        in the current solve) switch to the activity order alone — by then
        the conflict signal beats the frequency signal and the per-decision
        clause scan is the bottleneck.
        """
        value_of = self._value_of
        if self.stats.conflicts - self._conflicts_at_solve_start > _DLIS_CONFLICT_LIMIT:
            activity = self._activity
            best: Optional[int] = None
            best_score = -1.0
            for var in range(1, self.num_vars + 1):
                if value_of[var] is None and activity[var] > best_score:
                    best = var
                    best_score = activity[var]
            if best is not None and best_score > 0.0:
                return best
        counts: Dict[int, int] = {}
        for lits in self.clauses:
            satisfied = False
            for literal in lits:
                value = value_of[abs(literal)]
                if value is not None and value == (literal > 0):
                    satisfied = True
                    break
            if satisfied:
                continue
            for literal in lits:
                var = abs(literal)
                if value_of[var] is None:
                    counts[var] = counts.get(var, 0) + 1
        if counts:
            activity = self._activity
            return max(counts, key=lambda v: (counts[v], activity[v], -v))
        for var in range(1, self.num_vars + 1):
            if value_of[var] is None:
                return var
        return None

    # ------------------------------------------------------------------
    # Watched-literal propagation
    # ------------------------------------------------------------------
    def _propagate(self) -> Optional[Sequence[int]]:
        """Unit propagation over the watch lists; returns a falsified clause."""
        while self._prop_head < len(self.trail):
            literal = self.trail[self._prop_head][0]
            self._prop_head += 1
            false_literal = -literal
            watch_list = self._watches.get(false_literal)
            if not watch_list:
                continue
            kept: List[int] = []
            position = 0
            while position < len(watch_list):
                index = watch_list[position]
                position += 1
                lits = self.clauses[index]
                # Normalise: the falsified watch sits at position 1.
                if lits[0] == false_literal:
                    lits[0], lits[1] = lits[1], lits[0]
                other = lits[0]
                if self._value(other) is True:
                    kept.append(index)
                    continue
                moved = False
                for k in range(2, len(lits)):
                    if self._value(lits[k]) is not False:
                        lits[1], lits[k] = lits[k], lits[1]
                        self._watches.setdefault(lits[1], []).append(index)
                        moved = True
                        break
                if moved:
                    continue
                kept.append(index)
                other_value = self._value(other)
                if other_value is False:
                    kept.extend(watch_list[position:])
                    watch_list[:] = kept
                    return lits
                if other_value is None:
                    self._assign(other, is_decision=False)
                    self.stats.propagations += 1
            watch_list[:] = kept
        return None

    # ------------------------------------------------------------------
    # Backtracking
    # ------------------------------------------------------------------
    def _backtrack(self) -> bool:
        """Undo the trail up to the last decision not yet flipped; flip it.

        Returns ``False`` when no decision is left (the search space is
        exhausted).  Clauses mentioning any unassigned variable are queued
        for re-examination: watched-literal propagation only wakes up when a
        *watched* literal is falsified, so a clause that was unit (or whose
        satisfying literal sat) above the flip point would otherwise keep an
        undetected implication once the trail unwinds past it.
        """
        recheck = self._pending_recheck
        occurrences = self._occurrences
        self._units_dirty = True
        while self.trail:
            literal, is_decision, tried_both = self.trail[-1]
            if is_decision and not tried_both:
                self._unassign_last()
                recheck.update(occurrences.get(abs(literal), ()))
                self._assign(-literal, is_decision=True, tried_both=True)
                self._prop_head = len(self.trail) - 1
                return True
            self._unassign_last()
            recheck.update(occurrences.get(abs(literal), ()))
        self._prop_head = 0
        return False

    def _apply_recheck(self) -> Optional[Sequence[int]]:
        """Re-derive implications from clauses queued by :meth:`_backtrack`.

        Together with the watch-triggered :meth:`_propagate` this restores
        the full propagation fixpoint of a naive clause-scanning solver:
        after a backtrack, exactly the clauses containing a freshly
        unassigned variable can hold a missed unit or conflict.
        """
        if self._units_dirty:
            # Unit assertions have no watches; re-assert any that a backtrack
            # unwound (a false unit is a root-level conflict clause).
            self._units_dirty = False
            for literal in self._units:
                value = self._value(literal)
                if value is False:
                    return (literal,)
                if value is None:
                    self._assign(literal, is_decision=False)
                    self.stats.propagations += 1
        pending = self._pending_recheck
        while pending:
            index = pending.pop()
            lits = self.clauses[index]
            if not lits:  # retracted slot
                continue
            satisfied = False
            unassigned = None
            open_count = 0
            for literal in lits:
                value = self._value(literal)
                if value is True:
                    satisfied = True
                    break
                if value is None:
                    unassigned = literal
                    open_count += 1
                    if open_count > 1:
                        break
            if satisfied or open_count > 1:
                continue
            if open_count == 0:
                # Conflict: leave the remaining queue for after the backtrack
                # (this clause re-enters it through its popped variables).
                pending.add(index)
                return lits
            self._assign(unassigned, is_decision=False)
            self.stats.propagations += 1
        return None

    def _learn(self, clause: Clause) -> bool:
        """Install a theory clause during the search and recover from it.

        Returns ``False`` when the search space is exhausted.  The clause is
        falsified under the current assignment (it blocks the atoms the
        theory just rejected): we backtrack once and queue the clause for
        re-examination, so a clause that is still falsified after the flip
        surfaces as a fresh conflict in the next round — the same fixpoint a
        clause-scanning solver reaches by rescanning its database.
        """
        if not clause:
            return False
        literals = tuple(dict.fromkeys(clause))
        added = self.add_clause(literals)
        if added:
            self.stats.learned_clauses += 1
        self._on_conflict_clause(literals)
        if not self._backtrack():
            return False
        if len(literals) == 1:
            # Learned root-level unit: enforce it now (it only re-enters the
            # search via the unit list on the next restart otherwise).
            literal = literals[0]
            while self._value(literal) is False:
                self.stats.conflicts += 1
                if not self._backtrack():
                    return False
            if self._value(literal) is None:
                self._assign(literal, is_decision=False)
                self.stats.propagations += 1
            return True
        index = self._clause_keys.get(tuple(sorted(literals)), -1)
        if index >= 0:
            self._rewatch(index)
            self._pending_recheck.add(index)
        return True

    def _rewatch(self, index: int) -> None:
        """Re-select the two watches of ``clauses[index]`` for a live trail.

        Non-false literals are preferred; among false literals the *most
        recently* falsified ones are chosen.  The recency order is what keeps
        the watch invariant intact under chronological backtracking: whenever
        the trail unwinds far enough that some literal of the clause becomes
        non-false again, a watched literal is unassigned first (it is the
        newest), so the clause can never silently turn unit or falsified
        while both watches sit on stale false literals.
        """
        lits = self.clauses[index]
        old_watch = (lits[0], lits[1])
        pos_of = self._pos_of

        def rank(k: int):
            literal = lits[k]
            if self._value(literal) is not False:
                return (0, 0)
            return (1, -pos_of[abs(literal)])

        ranked = sorted(range(len(lits)), key=rank)
        a, b = ranked[0], ranked[1]
        new0, new1 = lits[a], lits[b]
        if (new0, new1) in (old_watch, (old_watch[1], old_watch[0])):
            return
        for watched in set(old_watch):
            entries = self._watches.get(watched, [])
            if index in entries:
                entries.remove(index)
        reordered = [new0, new1] + [l for k, l in enumerate(lits) if k not in (a, b)]
        self.clauses[index] = reordered
        self._watches.setdefault(new0, []).append(index)
        self._watches.setdefault(new1, []).append(index)

    # ------------------------------------------------------------------
    # Search
    # ------------------------------------------------------------------
    def _assert_units(self) -> bool:
        """Assert every root unit; ``False`` on an immediate contradiction."""
        for literal in list(self._units):
            value = self._value(literal)
            if value is False:
                return False
            if value is None:
                self._assign(literal, is_decision=False)
        return True

    def _restart(self) -> None:
        """Clear the search state; the clause database and activities stay."""
        for entry in self.trail:
            self._value_of[abs(entry[0])] = None
        self.trail = []
        self._prop_head = 0
        self._true_atoms = set()
        self._pending_recheck.clear()

    def solve(
        self,
        deadline: Optional[float] = None,
        max_conflicts: Optional[int] = None,
    ) -> Tuple[str, Optional[Dict[int, bool]]]:
        """Run the search; returns ``("sat", model)`` or ``("unsat", None)``.

        The search restarts from the root but keeps all clauses (including
        the ones learned in earlier calls) and the variable activities.
        Raises :class:`ResourceLimit` when the conflict or time budget is
        exhausted.
        """
        deadline = self.deadline if deadline is None else deadline
        budget = self.max_conflicts if max_conflicts is None else max_conflicts
        conflicts_at_start = self.stats.conflicts
        self._conflicts_at_solve_start = conflicts_at_start
        self.stats.restarts += 1
        self._restart()
        if not self._assert_units():
            return "unsat", None

        def over_budget() -> bool:
            return self.stats.conflicts - conflicts_at_start > budget

        while True:
            if deadline is not None and time.monotonic() > deadline:
                raise ResourceLimit("SAT search exceeded the time budget")

            if self.request_restart:
                self.request_restart = False
                self.stats.restarts += 1
                self._restart()
                if not self._assert_units():
                    return "unsat", None

            conflict = self._apply_recheck()
            if conflict is None:
                conflict = self._propagate()
            if conflict is not None:
                self.stats.conflicts += 1
                self._on_conflict_clause(conflict)
                if over_budget():
                    raise ResourceLimit("SAT search exceeded the conflict budget")
                if not self._backtrack():
                    return "unsat", None
                continue

            # Theory consistency of the currently-true atoms (cheap check).
            if self.theory_callback is not None and self.theory_atoms:
                self.stats.theory_checks += 1
                clause = self.theory_callback(set(self._true_atoms), False)
                if clause is not None:
                    self.stats.conflicts += 1
                    if over_budget():
                        raise ResourceLimit("SAT search exceeded the conflict budget")
                    if not self._learn(tuple(clause)):
                        return "unsat", None
                    continue

            branch_var = self._decide_var()
            if branch_var is None:
                # Complete assignment: run the full (integer) theory check.
                if self.theory_callback is not None:
                    self.stats.theory_checks += 1
                    clause = self.theory_callback(set(self._true_atoms), True)
                    if clause is not None:
                        self.stats.conflicts += 1
                        if over_budget():
                            raise ResourceLimit("SAT search exceeded the conflict budget")
                        if not self._learn(tuple(clause)):
                            return "unsat", None
                        continue
                return "sat", dict(self.assignment)

            self.stats.decisions += 1
            if self.negative_atom_phase and branch_var in self.theory_atoms:
                self._assign(-branch_var, is_decision=True)
            else:
                self._assign(branch_var, is_decision=True)
