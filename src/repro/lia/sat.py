"""An incremental CDCL SAT engine with a theory hook (the "DPLL(T)" loop).

The propositional engine works on the clause set produced by
:mod:`repro.lia.cnf` and is built for the *solve–refine* workloads of lazy
SMT: the clause database, watch lists, variable activities and learned
clauses (both theory lemmas and conflict clauses) all survive across
:meth:`DpllSolver.solve` calls, so a caller that adds a handful of clauses
between checks (an MBQI instantiation lemma, a new assertion-stack frame)
restarts the boolean search with everything it learned before.

Architecture (conflict-driven clause learning, replacing the chronological
flip search of earlier revisions):

* **Two-watched-literal propagation** — every clause with ≥ 2 literals
  watches two of them; unit propagation only touches the watch lists of the
  newly falsified literal (Moskewicz et al., "Chaff", DAC 2001).  Root-level
  unit clauses are kept in a separate set and asserted at the start of every
  solve.
* **Implication graph + 1UIP learning** — every propagated literal records
  its reason clause; a conflict is analysed by resolving backwards along the
  trail until exactly one literal of the current decision level remains (the
  first unique implication point).  The learned clause is minimized by
  self-subsuming resolution (literals whose reason clause is already covered
  by the learned clause are recursively dropped) before it is stored.
* **Non-chronological backjumping with a chronological model-search
  regime** — in the conflict-heavy regime the search jumps straight back
  to the second-highest decision level of the learned clause and asserts
  the UIP literal there, skipping every level the conflict did not depend
  on (outsized jumps are capped chronologically — Möhle & Biere, "Backing
  Backtracking", SAT'19).  While conflicts are sparse (model search on
  satisfiable encodings, where every unwound level costs a re-decision and
  a theory partial check) conflicts backtrack exactly one level; the
  learned clause prunes the dead region either way.  Learned *units*
  always commit at the root.
* **DLIS → VSIDS decisions with phase saving** — conflict-sparse solves
  pick the unassigned variable occurring most often in currently
  unsatisfied clauses (decisions aim at clauses that still need work, so
  model search is propagation-dense), re-using the variable the last
  chronological backtrack displaced without a rescan; conflict-heavy
  solves switch to the highest exponentially-decaying activity (bumped for
  every variable resolved in a conflict).  Both regimes re-use the
  polarity a variable last held (initially positive, which drives model
  search); the theory layer forces theory atoms negative via
  :attr:`negative_atom_phase` on integer-sensitive refutation workloads,
  which keeps the asserted-atom sets small.
* **Luby restarts in the conflict-heavy regime** — once a solve has left
  the model-search regime it restarts (keeping all clauses, phases and
  activities) on the classic Luby sequence, counting from the regime
  switch; sparse solves never restart, where a restart would merely replay
  the deterministic DLIS trail at full re-decision cost.
* **Learned-clause DB reduction by LBD** — conflict clauses carry their
  literal-block distance (number of distinct decision levels); when the
  learned database outgrows its budget, the highest-LBD half is dropped
  (glue clauses, binary clauses and clauses currently locked as reasons are
  kept).  Theory lemmas are permanent: they encode theory facts the SAT
  engine cannot re-derive, and the assertion stack retracts the
  level-strengthened ones explicitly via :meth:`retract_clause_key`.
* **Assumption literals** — :meth:`solve` accepts a sequence of assumption
  literals that are decided (in order, one decision level each) before any
  free decision.  When the problem is unsatisfiable *under the assumptions*,
  final-conflict analysis computes the subset of assumptions that actually
  participated (:attr:`failed_assumptions`) — the mechanism behind unsat
  cores without deletion-test re-solves.
* **Incremental clause database** — :meth:`add_clause` (deduplicating) may
  be called between solves; :meth:`remove_unit` retracts a root-level unit
  assertion, which is how the assertion stack of
  :class:`repro.lia.solver.LiaSolver` implements ``pop`` (Tseitin
  definitions are implications and stay).

The theory callback receives the set of atom variables currently assigned
*true* and returns either ``None`` (consistent as far as it can tell) or a
conflict clause (a tuple of literals, all currently false) that is added to
the clause database and then resolved by the regular 1UIP analysis.
"""

from __future__ import annotations

from dataclasses import dataclass
from heapq import heappop, heappush
from typing import Callable, Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from ..budget import Budget
from .intsolver import ResourceLimit

Clause = Tuple[int, ...]
TheoryCallback = Callable[[Set[int], bool], Optional[Clause]]

#: multiplicative activity decay applied after every conflict
_ACTIVITY_DECAY = 0.95
#: rescale threshold guarding against float overflow
_ACTIVITY_RESCALE = 1e100
#: clause-activity decay (slower than the variable decay, as in MiniSat)
_CLAUSE_DECAY = 0.999
_CLAUSE_RESCALE = 1e20
#: conflicts per solve after which decisions switch from the DLIS scan to
#: pure VSIDS activity ordering: model search on satisfiable encodings is
#: propagation-dense and conflict-sparse (DLIS aims decisions at still-
#: unsatisfied clauses, so most variables arrive by propagation), while a
#: conflict-heavy refutation makes the activity signal strong and the
#: O(clause-database) DLIS scan per decision the bottleneck
_DLIS_CONFLICT_LIMIT = 500
#: backjumps farther than this many levels backtrack chronologically
#: instead (the learned clause still asserts its UIP one level down)
_CHRONO_JUMP_LIMIT = 64


def _chrono_target(before: int, backjump_level: int, sparse: bool) -> int:
    """Backtrack target of a conflict at level ``before``.

    Conflict-sparse solves (model search on satisfiable encodings) always
    backtrack chronologically: every level unwound costs a re-decision
    *and* a theory partial check, and the learned clause prunes the dead
    region either way.  Conflict-heavy solves take the 1UIP assertion
    level — non-chronological backjumping proper — capped by
    :data:`_CHRONO_JUMP_LIMIT` (Möhle & Biere, "Backing Backtracking",
    SAT'19).
    """
    if sparse or before - backjump_level > _CHRONO_JUMP_LIMIT:
        return max(backjump_level, before - 1)
    return backjump_level
#: conflicts per Luby restart unit (restarts only fire in the
#: conflict-heavy regime, counting from the regime switch)
_LUBY_UNIT = 512
#: learned-clause budget before the first DB reduction, and its growth
_MAX_LEARNT_START = 3000
_MAX_LEARNT_GROWTH = 1.2
#: node budget of one recursive clause-minimization check
_MINIMIZE_BUDGET = 80
#: participant sets above this size degrade to "unknown" (the caller falls
#: back to its accumulated over-approximation) — bounds the proof-tracking
#: overhead per conflict
_PARTICIPANT_CAP = 512
#: sentinel for a participant set that overflowed the cap
_WIDE = object()
_EMPTY: FrozenSet[int] = frozenset()


def _luby(index: int) -> int:
    """The ``index``-th (0-based) element of the Luby sequence (1,1,2,1,1,2,4,…)."""
    size, seq = 1, 0
    while size < index + 1:
        seq += 1
        size = 2 * size + 1
    while size - 1 != index:
        size = (size - 1) // 2
        seq -= 1
        index = index % size
    return 1 << seq


@dataclass
class SatStats:
    """Counters describing one SAT search (useful in tests and benchmarks)."""

    decisions: int = 0
    propagations: int = 0
    conflicts: int = 0
    theory_checks: int = 0
    learned_clauses: int = 0
    restarts: int = 0
    duplicate_clauses: int = 0
    #: total decision levels skipped by non-chronological backjumps (the
    #: chronological baseline would undo exactly one level per conflict)
    backjump_levels: int = 0
    #: learned clauses dropped by LBD-based DB reduction
    deleted_clauses: int = 0
    #: literals removed from learned clauses by self-subsuming minimization
    minimized_literals: int = 0


class DpllSolver:
    """Incremental CDCL with watched-literal propagation and a theory hook.

    The class keeps its historical name: it still implements the DPLL(T)
    loop, the search regime inside is conflict-driven clause learning.
    """

    def __init__(
        self,
        num_vars: int = 0,
        clauses: Sequence[Clause] = (),
        theory_atoms: Optional[Set[int]] = None,
        theory_callback: Optional[TheoryCallback] = None,
        deadline: Optional[float] = None,
        max_conflicts: int = 200000,
    ) -> None:
        self.num_vars = 0
        #: the caller may keep mutating this set between solves (new atoms)
        self.theory_atoms = theory_atoms if theory_atoms is not None else set()
        self.theory_callback = theory_callback
        self.deadline = deadline
        self.max_conflicts = max_conflicts
        #: decision phase for theory atoms: ``False`` (the default) decides
        #: atoms positively, which drives model search on satisfiable
        #: encodings; the theory layer switches this to ``True`` on
        #: integer-sensitive refutation workloads, where deciding atoms
        #: negatively keeps the asserted-atom sets (and hence the theory
        #: conflicts) small
        self.negative_atom_phase = False
        #: set by the theory layer to restart the search at the next
        #: opportunity (keeping all clauses and activities); used when a
        #: mid-search heuristic change makes the current partial assignment
        #: worth abandoning
        self.request_restart = False
        self.stats = SatStats()
        #: assumptions that final-conflict analysis blamed for the last
        #: ``unsat`` answer of :meth:`solve`; empty when the clause set is
        #: unsatisfiable without any assumption
        self.failed_assumptions: FrozenSet[int] = frozenset()
        #: theory-atom variables the *final* refutation transitively used
        #: (proof-tracked through learned clauses); ``None`` when tracking
        #: overflowed or the last solve was not ``unsat`` — callers fall
        #: back to their own accumulated over-approximation
        self.final_participants: Optional[FrozenSet[int]] = None
        #: side channel for the theory layer: the participant set of the
        #: conflict clause it is about to return (read and cleared by the
        #: conflict handler; defaults to the clause's own atoms)
        self.pending_conflict_participants: Optional[FrozenSet[int]] = None

        self.clauses: List[List[int]] = []
        #: literal -> indices of clauses currently watching it
        self._watches: Dict[int, List[int]] = {}
        #: canonical (sorted) clause keys for deduplication (units map to -1)
        self._clause_keys: Dict[Clause, int] = {}
        #: root-level unit assertions (asserted at the start of every solve)
        self._units: Set[int] = set()
        #: learned (reducible) clause index -> activity; permanent clauses
        #: (problem clauses and theory lemmas) never appear here
        self._learnt_act: Dict[int, float] = {}
        #: learned clause index -> literal-block distance at learning time
        self._learnt_lbd: Dict[int, int] = {}
        #: proof tracking: clause index -> theory atoms its derivation used
        #: (frozenset, or the ``_WIDE`` overflow sentinel; absent = none)
        self._clause_participants: Dict[int, object] = {}
        #: proof tracking for learned/theory *unit* clauses, by literal
        self._unit_participants: Dict[int, object] = {}
        #: proof tracking per root-level assignment, by variable
        self._root_participants: Dict[int, object] = {}
        #: unit literals learned by conflict analysis (as opposed to
        #: asserted or theory units) — see :meth:`_purge_derived`
        self._derived_units: Set[int] = set()
        #: a root unit (or a strengthened theory clause) was retracted:
        #: every analysis-derived clause may have resolved through it and
        #: must be dropped before the next solve
        self._derived_dirty = False
        self._max_learnts = _MAX_LEARNT_START
        self._cla_inc = 1.0

        # Search state (index 0 unused; variables are 1-based).
        self._value_of: List[Optional[bool]] = [None]
        self._level_of: List[int] = [0]
        #: reason clause index of a propagated literal (None for decisions,
        #: assumptions and root units)
        self._reason_of: List[Optional[int]] = [None]
        #: last polarity each variable held (consulted by heavy-regime
        #: decisions only — see :meth:`solve`; sparse model search always
        #: decides positively)
        self._phase: List[bool] = [True]
        #: assignment trail: just the literals, in assignment order
        self.trail: List[int] = []
        #: trail length at the start of each decision level
        self._trail_lim: List[int] = []
        self._prop_head = 0
        self._true_atoms: Set[int] = set()
        #: conflict count when the current solve began (drives the DLIS →
        #: activity decision switch-over, see :meth:`_decide_var`)
        self._conflicts_at_solve_start = 0
        #: decision variable displaced by a chronological backtrack; the
        #: next decision re-picks it without a DLIS rescan (the old flip
        #: search kept it assigned — re-deciding it first preserves both
        #: the search order and the scan budget)
        self._redecide: int = 0

        # Activity / decision order.
        self._activity: List[float] = [0.0]
        self._var_inc = 1.0
        #: lazy max-heap of (-activity, var); stale entries are skipped
        self._order: List[Tuple[float, int]] = []

        self.ensure_vars(num_vars)
        for clause in clauses:
            self.add_clause(clause)

    # ------------------------------------------------------------------
    # Clause database
    # ------------------------------------------------------------------
    def ensure_vars(self, num_vars: int) -> None:
        """Grow the variable range to ``1..num_vars``."""
        while self.num_vars < num_vars:
            self.num_vars += 1
            self._value_of.append(None)
            self._level_of.append(0)
            self._reason_of.append(None)
            self._phase.append(True)
            self._activity.append(0.0)
            heappush(self._order, (0.0, self.num_vars))

    def add_clause(self, clause: Sequence[int]) -> bool:
        """Add a clause (deduplicating); returns ``False`` for duplicates.

        Safe to call between solves; clauses arriving from the theory
        callback during the search take the dedicated conflict path inside
        :meth:`solve` instead.
        """
        literals = list(dict.fromkeys(clause))
        key = tuple(sorted(literals))
        existing = self._clause_keys.get(key)
        if existing is not None:
            # Promote a colliding *derived* clause to permanent: the caller
            # is asserting it, so it must survive a purge of the derived
            # set (see :meth:`_purge_derived`).
            if existing == -1:  # unit slot: key is the 1-tuple itself
                self._derived_units.discard(key[0])
            else:
                self._learnt_act.pop(existing, None)
                self._learnt_lbd.pop(existing, None)
            self.stats.duplicate_clauses += 1
            return False
        for literal in literals:
            self.ensure_vars(abs(literal))
        if len(literals) == 1:
            self._clause_keys[key] = -1
            self._units.add(literals[0])
            return True
        index = len(self.clauses)
        self._clause_keys[key] = index
        self.clauses.append(literals)
        self._watches.setdefault(literals[0], []).append(index)
        self._watches.setdefault(literals[1], []).append(index)
        return True

    def remove_unit(self, literal: int) -> None:
        """Retract a root-level unit assertion added via :meth:`add_clause`."""
        self._units.discard(literal)
        self._clause_keys.pop((literal,), None)
        self._unit_participants.pop(literal, None)
        self._derived_dirty = True

    def retract_clause_key(self, key: Clause) -> None:
        """Retract the clause with canonical (sorted) key ``key``, if present.

        Used by the assertion stack to withdraw theory clauses that were
        strengthened with level-local information.  The clause slot is
        emptied in place (an empty slot is inert for propagation) so the
        remaining indices stay stable.
        """
        if not key:
            return
        index = self._clause_keys.pop(key, None)
        if index is None:
            return
        if index == -1:
            self._units.discard(key[0])
            self._derived_dirty = True
            return
        self._drop_clause(index)
        self._derived_dirty = True

    def _drop_clause(self, index: int) -> None:
        """Empty one clause slot and detach its watches."""
        lits = self.clauses[index]
        for literal in set(lits[:2]):
            watch_list = self._watches.get(literal)
            if watch_list and index in watch_list:
                watch_list.remove(index)
        self.clauses[index] = []
        self._learnt_act.pop(index, None)
        self._learnt_lbd.pop(index, None)
        self._clause_participants.pop(index, None)

    def has_unit(self, literal: int) -> bool:
        return literal in self._units

    # ------------------------------------------------------------------
    # Assignment primitives
    # ------------------------------------------------------------------
    def _value(self, literal: int) -> Optional[bool]:
        value = self._value_of[abs(literal)]
        if value is None:
            return None
        return value if literal > 0 else not value

    def _decision_level(self) -> int:
        return len(self._trail_lim)

    def _merge_participants(self, *parts: object) -> object:
        """Union participant sets, degrading to ``_WIDE`` past the cap."""
        total: Set[int] = set()
        for part in parts:
            if part is _WIDE:
                return _WIDE
            if part:
                total |= part  # type: ignore[arg-type]
                if len(total) > _PARTICIPANT_CAP:
                    return _WIDE
        return frozenset(total) if total else _EMPTY

    def _assign(self, literal: int, reason: Optional[int]) -> None:
        var = abs(literal)
        self._value_of[var] = literal > 0
        self._level_of[var] = len(self._trail_lim)
        self._reason_of[var] = reason
        self.trail.append(literal)
        if literal > 0 and var in self.theory_atoms:
            self._true_atoms.add(var)
        if not self._trail_lim:
            # Root-level assignment: remember what its derivation used, so
            # final-conflict analysis can see through level-0 literals.
            if reason is None:
                part = self._unit_participants.get(literal, _EMPTY)
            else:
                part = self._merge_participants(
                    self._clause_participants.get(reason, _EMPTY),
                    *(
                        self._root_participants.get(abs(q), _EMPTY)
                        for q in self.clauses[reason]
                        if abs(q) != var
                    ),
                )
            if part is _WIDE or part:
                self._root_participants[var] = part

    def _new_level(self) -> None:
        self._trail_lim.append(len(self.trail))

    def _backjump(self, level: int) -> None:
        """Undo the trail down to (and keeping) decision level ``level``."""
        if len(self._trail_lim) <= level:
            return
        mark = self._trail_lim[level]
        order = self._order
        activity = self._activity
        for position in range(len(self.trail) - 1, mark - 1, -1):
            literal = self.trail[position]
            var = abs(literal)
            self._phase[var] = literal > 0
            self._value_of[var] = None
            self._reason_of[var] = None
            self._true_atoms.discard(var)
            heappush(order, (-activity[var], var))
        del self.trail[mark:]
        del self._trail_lim[level:]
        self._prop_head = len(self.trail)

    def root_literals(self) -> Tuple[int, ...]:
        """The literals currently forced at decision level 0.

        The theory layer uses this to strengthen conflict cores: an atom
        forced at the root contributes nothing to the pruning power of a
        learned clause.
        """
        end = self._trail_lim[0] if self._trail_lim else len(self.trail)
        return tuple(self.trail[:end])

    # Compatibility view used by tests and debugging tools.
    @property
    def assignment(self) -> Dict[int, bool]:
        return {
            var: value
            for var, value in enumerate(self._value_of)
            if var and value is not None
        }

    # ------------------------------------------------------------------
    # Activity
    # ------------------------------------------------------------------
    def _bump_var(self, var: int) -> None:
        self._activity[var] += self._var_inc
        if self._activity[var] > _ACTIVITY_RESCALE:
            self._rescale_activity()
        if self._value_of[var] is None:
            heappush(self._order, (-self._activity[var], var))

    def _rescale_activity(self) -> None:
        for var in range(1, self.num_vars + 1):
            self._activity[var] *= 1e-100
        self._var_inc *= 1e-100

    def _bump_clause(self, index: int) -> None:
        activity = self._learnt_act.get(index)
        if activity is None:
            return
        activity += self._cla_inc
        self._learnt_act[index] = activity
        if activity > _CLAUSE_RESCALE:
            for learnt in self._learnt_act:
                self._learnt_act[learnt] *= 1.0 / _CLAUSE_RESCALE
            self._cla_inc *= 1.0 / _CLAUSE_RESCALE

    def _decay_activities(self) -> None:
        self._var_inc /= _ACTIVITY_DECAY
        self._cla_inc /= _CLAUSE_DECAY

    def _sparse(self) -> bool:
        """Still in the conflict-sparse (model search) regime of this solve?"""
        return (
            self.stats.conflicts - self._conflicts_at_solve_start
            <= _DLIS_CONFLICT_LIMIT
        )

    def _note_redecide(self, target: int) -> None:
        """Remember the decision a one-level backtrack is about to displace."""
        if target != self._decision_level() - 1 or target == 0:
            return
        mark = self._trail_lim[target]
        if mark < len(self.trail):
            self._redecide = abs(self.trail[mark])

    def _decision_literal(self, branch_var: int) -> int:
        """Polarity of a fresh decision on ``branch_var``.

        Variables re-use their saved phase (initially positive, which
        drives model search) — saved phases are what make restarts and
        chronological re-decisions cheap replays.  The theory layer forces
        theory atoms negative on integer-sensitive refutation workloads,
        which keeps the asserted-atom sets (and theory conflicts) small.
        """
        if self.negative_atom_phase and branch_var in self.theory_atoms:
            return -branch_var
        return branch_var if self._phase[branch_var] else -branch_var

    def _decide_var(self) -> Optional[int]:
        """DLIS while conflicts are sparse, VSIDS once the signal is strong.

        The DLIS pass counts unassigned variables of currently-unsatisfied
        clauses (decisions then aim at clauses that still need work, and
        most other variables arrive through propagation — the fast regime
        for model search, where non-chronological backjumps would otherwise
        force thousands of re-decisions).  Past
        :data:`_DLIS_CONFLICT_LIMIT` conflicts in the current solve the
        activity heap takes over.
        """
        value_of = self._value_of
        if self._redecide:
            var = self._redecide
            self._redecide = 0
            if value_of[var] is None:
                return var
        if self._sparse():
            counts: Dict[int, int] = {}
            for lits in self.clauses:
                satisfied = False
                for literal in lits:
                    value = value_of[abs(literal)]
                    if value is not None and value == (literal > 0):
                        satisfied = True
                        break
                if satisfied:
                    continue
                for literal in lits:
                    var = abs(literal)
                    if value_of[var] is None:
                        counts[var] = counts.get(var, 0) + 1
            if counts:
                activity = self._activity
                return max(counts, key=lambda v: (counts[v], activity[v], -v))
        order = self._order
        while order:
            _, var = heappop(order)
            if value_of[var] is None:
                return var
        for var in range(1, self.num_vars + 1):
            if value_of[var] is None:
                return var
        return None

    # ------------------------------------------------------------------
    # Watched-literal propagation
    # ------------------------------------------------------------------
    def _propagate(self) -> Optional[int]:
        """Unit propagation; returns the index of a falsified clause."""
        while self._prop_head < len(self.trail):
            literal = self.trail[self._prop_head]
            self._prop_head += 1
            false_literal = -literal
            watch_list = self._watches.get(false_literal)
            if not watch_list:
                continue
            kept: List[int] = []
            position = 0
            while position < len(watch_list):
                index = watch_list[position]
                position += 1
                lits = self.clauses[index]
                if not lits:  # retracted / reduced slot
                    continue
                # Normalise: the falsified watch sits at position 1.
                if lits[0] == false_literal:
                    lits[0], lits[1] = lits[1], lits[0]
                other = lits[0]
                if self._value(other) is True:
                    kept.append(index)
                    continue
                moved = False
                for k in range(2, len(lits)):
                    if self._value(lits[k]) is not False:
                        lits[1], lits[k] = lits[k], lits[1]
                        self._watches.setdefault(lits[1], []).append(index)
                        moved = True
                        break
                if moved:
                    continue
                kept.append(index)
                other_value = self._value(other)
                if other_value is False:
                    kept.extend(watch_list[position:])
                    watch_list[:] = kept
                    return index
                self._assign(other, reason=index)
                self.stats.propagations += 1
            watch_list[:] = kept
        return None

    # ------------------------------------------------------------------
    # Conflict analysis (1UIP)
    # ------------------------------------------------------------------
    def _analyze(self, conflict_index: int) -> Tuple[List[int], int, int, object]:
        """Resolve a falsified clause to the first UIP.

        Returns ``(learned, backjump_level, lbd, participants)`` where
        ``learned[0]`` is the asserting (UIP) literal and ``participants``
        are the theory atoms the derivation transitively used.  The caller
        guarantees the conflict involves at least one literal of the
        current decision level.
        """
        current = self._decision_level()
        seen: Dict[int, bool] = {}
        learned: List[int] = [0]
        counter = 0
        p: Optional[int] = None
        index = len(self.trail)
        reason_lits: Sequence[int] = self.clauses[conflict_index]
        self._bump_clause(conflict_index)
        used: List[object] = [self._clause_participants.get(conflict_index, _EMPTY)]
        root_parts = self._root_participants
        # repro: allow(checkpoint-coverage): resolution walks the trail at most once per conflict, and the search loop checkpoints lia.sat on every conflict
        while True:
            for q in reason_lits:
                if p is not None and q == p:
                    continue
                var = abs(q)
                if seen.get(var):
                    continue
                if self._level_of[var] > 0:
                    seen[var] = True
                    self._bump_var(var)
                    if self._level_of[var] >= current:
                        counter += 1
                    else:
                        learned.append(q)
                else:
                    part = root_parts.get(var)
                    if part is not None:
                        seen[var] = True  # merge each root var once
                        used.append(part)
            while True:
                index -= 1
                p = self.trail[index]
                if seen.get(abs(p)) and self._level_of[abs(p)] > 0:
                    break
            counter -= 1
            if counter == 0:
                break
            reason_index = self._reason_of[abs(p)]
            self._bump_clause(reason_index)
            reason_lits = self.clauses[reason_index]
            used.append(self._clause_participants.get(reason_index, _EMPTY))
        learned[0] = -p
        participants = self._merge_participants(*used)

        # Self-subsuming minimization: drop literals whose reason clause is
        # already covered by the learned clause (recursively).
        kept = [learned[0]]
        for literal in learned[1:]:
            if self._reason_of[abs(literal)] is None or not self._redundant(literal, seen):
                kept.append(literal)
            else:
                self.stats.minimized_literals += 1
        learned = kept

        if len(learned) == 1:
            backjump_level = 0
        else:
            # The second watch must sit on the backjump level.
            best = 1
            for position in range(2, len(learned)):
                if self._level_of[abs(learned[position])] > self._level_of[abs(learned[best])]:
                    best = position
            learned[1], learned[best] = learned[best], learned[1]
            backjump_level = self._level_of[abs(learned[1])]
        levels = {self._level_of[abs(literal)] for literal in learned}
        return learned, backjump_level, len(levels), participants

    def _redundant(self, literal: int, seen: Dict[int, bool]) -> bool:
        """Recursive check that ``literal`` is implied by the learned clause."""
        stack = [literal]
        marked: List[int] = []
        budget = _MINIMIZE_BUDGET
        # repro: allow(checkpoint-coverage): self-bounded by the _MINIMIZE_BUDGET node counter, which bails out before the loop can run long
        while stack:
            top = stack.pop()
            reason_index = self._reason_of[abs(top)]
            for q in self.clauses[reason_index]:
                var = abs(q)
                if var == abs(top) or seen.get(var) or self._level_of[var] == 0:
                    continue
                budget -= 1
                if self._reason_of[var] is None or budget <= 0:
                    for mark in marked:
                        seen.pop(mark, None)
                    return False
                seen[var] = True
                marked.append(var)
                stack.append(q)
        return True

    def _install_learned(self, learned: List[int], lbd: int, participants: object = _EMPTY) -> None:
        """Store a learned clause and assert its UIP literal."""
        self.stats.learned_clauses += 1
        if len(learned) == 1:
            literal = learned[0]
            key = (literal,)
            if key not in self._clause_keys:
                self._clause_keys[key] = -1
                self._units.add(literal)
                self._derived_units.add(literal)
            if participants is _WIDE or participants:
                self._unit_participants[literal] = participants
            if self._value(literal) is None:
                self._assign(literal, reason=None)
                self.stats.propagations += 1
            return
        key = tuple(sorted(dict.fromkeys(learned)))
        existing = self._clause_keys.get(key)
        if existing is not None and existing >= 0 and self.clauses[existing]:
            # Re-learned an existing clause (possible after DB reduction
            # races with theory lemmas): reuse it as the reason.
            self.stats.duplicate_clauses += 1
            self._rewatch(existing, learned[0], learned[1])
            index = existing
        else:
            index = len(self.clauses)
            self._clause_keys[key] = index
            self.clauses.append(list(learned))
            self._watches.setdefault(learned[0], []).append(index)
            self._watches.setdefault(learned[1], []).append(index)
            self._learnt_act[index] = self._cla_inc
            self._learnt_lbd[index] = lbd
        if participants is _WIDE or participants:
            self._clause_participants[index] = participants
        if self._value(learned[0]) is None:
            self._assign(learned[0], reason=index)
            self.stats.propagations += 1

    def _rewatch(self, index: int, first: int, second: int) -> None:
        """Force the watches of ``clauses[index]`` onto two given literals."""
        lits = self.clauses[index]
        for literal in set(lits[:2]):
            watch_list = self._watches.get(literal)
            if watch_list and index in watch_list:
                watch_list.remove(index)
        rest = [l for l in lits if l not in (first, second)]
        self.clauses[index] = [first, second] + rest
        self._watches.setdefault(first, []).append(index)
        self._watches.setdefault(second, []).append(index)

    # ------------------------------------------------------------------
    # Learned-clause DB reduction
    # ------------------------------------------------------------------
    def _locked(self, index: int) -> bool:
        lits = self.clauses[index]
        if not lits:
            return False
        head = lits[0]
        return self._value(head) is True and self._reason_of[abs(head)] == index

    def _reduce_db(self) -> None:
        """Drop the worst half of the learned clauses (by LBD, then activity)."""
        candidates = [
            index
            for index in self._learnt_act
            if len(self.clauses[index]) > 2
            and self._learnt_lbd[index] > 2
            and not self._locked(index)
        ]
        if not candidates:
            self._max_learnts = int(self._max_learnts * _MAX_LEARNT_GROWTH)
            return
        candidates.sort(key=lambda i: (-self._learnt_lbd[i], self._learnt_act[i]))
        for index in candidates[: len(candidates) // 2]:
            key = tuple(sorted(dict.fromkeys(self.clauses[index])))
            if self._clause_keys.get(key) == index:
                del self._clause_keys[key]
            self._drop_clause(index)
            self.stats.deleted_clauses += 1
        self._max_learnts = int(self._max_learnts * _MAX_LEARNT_GROWTH)

    # ------------------------------------------------------------------
    # Theory conflicts
    # ------------------------------------------------------------------
    def _handle_theory_conflict(self, clause: Clause) -> bool:
        """Install a theory conflict clause and recover from it.

        Returns ``False`` when the clause set became unsatisfiable (with
        :attr:`final_participants` set to the refutation's support).  Theory
        clauses are permanent (see the module docstring); the recovery is
        ordinary 1UIP analysis after backjumping to the deepest level the
        clause mentions.
        """
        pending = self.pending_conflict_participants
        self.pending_conflict_participants = None
        literals = tuple(dict.fromkeys(clause))
        participants: object = (
            frozenset(pending)
            if pending is not None
            else frozenset(abs(literal) for literal in literals)
        )
        if not literals:
            self.final_participants = None if participants is _WIDE else participants
            return False
        # A clause with a true or unassigned literal is no conflict: attach
        # it (it is still a sound lemma) and resume the search.
        falsified = all(self._value(literal) is False for literal in literals)

        key = tuple(sorted(literals))
        index = self._clause_keys.get(key)
        if index is None:
            if len(literals) == 1:
                self._clause_keys[key] = -1
                self._units.add(literals[0])
                index = -1
            else:
                index = len(self.clauses)
                self._clause_keys[key] = index
                self.clauses.append(list(literals))
                self._watches.setdefault(literals[0], []).append(index)
                self._watches.setdefault(literals[1], []).append(index)
            self.stats.learned_clauses += 1
        else:
            self.stats.duplicate_clauses += 1
        if participants:
            if len(literals) == 1:
                self._unit_participants[literals[0]] = participants
            elif index >= 0:
                self._clause_participants[index] = self._merge_participants(
                    self._clause_participants.get(index, _EMPTY), participants
                )
        for literal in literals:
            self._bump_var(abs(literal))
        self._decay_activities()

        if len(literals) == 1:
            literal = literals[0]
            self._backjump(0)
            value = self._value(literal)
            if value is False:
                self.final_participants = self._as_final(
                    self._merge_participants(
                        participants, self._root_participants.get(abs(literal), _EMPTY)
                    )
                )
                return False
            if value is None:
                self._assign(literal, reason=None)
                self.stats.propagations += 1
            return True

        if not falsified:
            if index >= 0:
                # Keep the watch invariant: watch two non-false literals
                # (or the most recently falsified ones).
                free = [l for l in literals if self._value(l) is not False]
                if len(free) >= 2:
                    self._rewatch(index, free[0], free[1])
                elif len(free) == 1:
                    others = [l for l in literals if l != free[0]]
                    others.sort(key=lambda l: -self._level_of[abs(l)])
                    self._rewatch(index, free[0], others[0])
                    if self._value(free[0]) is None:
                        self._assign(free[0], reason=index)
                        self.stats.propagations += 1
            return True

        deepest = max(self._level_of[abs(literal)] for literal in literals)
        if deepest == 0:
            self.final_participants = self._as_final(
                self._merge_participants(
                    participants,
                    *(
                        self._root_participants.get(abs(literal), _EMPTY)
                        for literal in literals
                    ),
                )
            )
            return False
        if index >= 0:
            ordered = sorted(literals, key=lambda l: -self._level_of[abs(l)])
            self._rewatch(index, ordered[0], ordered[1])
        before = self._decision_level()
        self._backjump(deepest)
        learned, backjump_level, lbd, used = self._analyze(index)
        if len(learned) == 1:
            target = 0  # learned units always commit at the root
        else:
            target = _chrono_target(deepest, backjump_level, self._sparse())
        self._note_redecide(target)
        self.stats.backjump_levels += before - target
        self._backjump(target)
        self._install_learned(learned, lbd, used)
        return True

    @staticmethod
    def _as_final(participants: object) -> Optional[FrozenSet[int]]:
        return None if participants is _WIDE else participants  # type: ignore[return-value]

    # ------------------------------------------------------------------
    # Assumptions
    # ------------------------------------------------------------------
    def _analyze_final(self, failed: int) -> FrozenSet[int]:
        """Assumptions that imply the falsification of assumption ``failed``.

        Walks the implication graph backwards from ``¬failed``; every
        decision reached is an assumption literal (free decisions cannot be
        on the trail while assumptions are still being placed).
        """
        blamed = {failed}
        used: List[object] = [
            self._root_participants.get(abs(failed), _EMPTY)
        ]
        if not self._trail_lim:
            self.final_participants = self._as_final(self._merge_participants(*used))
            return frozenset(blamed)
        seen = {abs(failed)}
        base = self._trail_lim[0]
        for position in range(len(self.trail) - 1, base - 1, -1):
            literal = self.trail[position]
            var = abs(literal)
            if var not in seen:
                continue
            seen.discard(var)
            reason_index = self._reason_of[var]
            if reason_index is None:
                blamed.add(literal)
                continue
            used.append(self._clause_participants.get(reason_index, _EMPTY))
            for q in self.clauses[reason_index]:
                if self._level_of[abs(q)] > 0:
                    seen.add(abs(q))
                else:
                    part = self._root_participants.get(abs(q))
                    if part is not None:
                        used.append(part)
        self.final_participants = self._as_final(self._merge_participants(*used))
        return frozenset(blamed)

    # ------------------------------------------------------------------
    # Search
    # ------------------------------------------------------------------
    def _assert_units(self) -> bool:
        """Assert every root unit; ``False`` on an immediate contradiction."""
        for literal in sorted(self._units, key=abs):
            value = self._value(literal)
            if value is False:
                self.final_participants = self._as_final(
                    self._merge_participants(
                        self._unit_participants.get(literal, _EMPTY),
                        self._root_participants.get(abs(literal), _EMPTY),
                    )
                )
                return False
            if value is None:
                self._assign(literal, reason=None)
        return True

    def _purge_derived(self) -> None:
        """Drop every analysis-derived clause and unit.

        A 1UIP resolvent implicitly resolves through the root units whose
        literals it dropped at level 0, so it is only implied while those
        units (and any strengthened theory clause used as a reason) stay
        asserted.  Rather than tracking the exact dependencies, a
        retraction invalidates the whole derived set — theory lemmas are
        consequences of the atom semantics alone and survive, which is
        exactly the retention the pre-CDCL engine had.
        """
        self._derived_dirty = False
        for index in list(self._learnt_act):
            lits = self.clauses[index]
            if not lits:
                continue
            key = tuple(sorted(dict.fromkeys(lits)))
            if self._clause_keys.get(key) == index:
                del self._clause_keys[key]
            self._drop_clause(index)
        for literal in self._derived_units:
            if self._clause_keys.get((literal,)) == -1:
                del self._clause_keys[(literal,)]
            self._units.discard(literal)
            self._unit_participants.pop(literal, None)
        self._derived_units.clear()

    def _restart(self) -> None:
        """Clear the whole search state; clauses and activities stay."""
        order = self._order
        activity = self._activity
        for literal in self.trail:
            var = abs(literal)
            self._phase[var] = literal > 0
            self._value_of[var] = None
            self._reason_of[var] = None
            heappush(order, (-activity[var], var))
        self.trail = []
        self._trail_lim = []
        self._prop_head = 0
        self._true_atoms = set()
        self._root_participants = {}

    def solve(
        self,
        deadline: Optional[float] = None,
        max_conflicts: Optional[int] = None,
        assumptions: Sequence[int] = (),
        budget: Optional[Budget] = None,
    ) -> Tuple[str, Optional[Dict[int, bool]]]:
        """Run the search; returns ``("sat", model)`` or ``("unsat", None)``.

        The search restarts from the root but keeps all clauses (including
        the ones learned in earlier calls), phases and activities.
        ``assumptions`` are literals decided before any free decision; when
        they make the problem unsatisfiable, :attr:`failed_assumptions`
        holds the blamed subset (empty when the clause set is unsatisfiable
        on its own).  Raises :class:`ResourceLimit` when the conflict
        budget is exhausted; wall-clock bounding goes through ``budget``
        (one checkpoint per search iteration, raising
        :class:`repro.budget.BudgetExceeded`), with ``deadline`` kept as a
        legacy spelling that is folded into a local budget.
        """
        deadline = self.deadline if deadline is None else deadline
        if budget is None and deadline is not None:
            budget = Budget(deadline=deadline)
        conflict_budget = self.max_conflicts if max_conflicts is None else max_conflicts
        assumptions = tuple(assumptions)
        for literal in assumptions:
            self.ensure_vars(abs(literal))
        self.failed_assumptions = frozenset()
        self.final_participants = None
        conflicts_at_start = self.stats.conflicts
        self._conflicts_at_solve_start = conflicts_at_start
        self.stats.restarts += 1
        self._restart()
        if self._derived_dirty:
            self._purge_derived()
        if not self._assert_units():
            return "unsat", None

        restart_index = 0
        restart_limit = _LUBY_UNIT * _luby(restart_index)
        conflicts_at_restart = conflicts_at_start
        heavy_since_conflicts = False

        def over_budget() -> bool:
            return self.stats.conflicts - conflicts_at_start > conflict_budget

        while True:
            if budget is not None:
                budget.checkpoint("lia.sat")

            if self.request_restart:
                self.request_restart = False
                self.stats.restarts += 1
                self._restart()
                if not self._assert_units():
                    return "unsat", None
                conflicts_at_restart = self.stats.conflicts

            conflict = self._propagate()
            if conflict is not None:
                self.stats.conflicts += 1
                if over_budget():
                    raise ResourceLimit("SAT search exceeded the conflict budget")
                before = self._decision_level()
                # After a chronological backtrack the conflicting clause may
                # live entirely below the current decision level (its
                # asserting literal was re-propagated out of order); 1UIP
                # analysis needs the conflict at the top, so first drop to
                # the clause's own level.
                deepest = max(self._level_of[abs(q)] for q in self.clauses[conflict])
                if deepest == 0:
                    self.final_participants = self._as_final(
                        self._merge_participants(
                            self._clause_participants.get(conflict, _EMPTY),
                            *(
                                self._root_participants.get(abs(q), _EMPTY)
                                for q in self.clauses[conflict]
                            ),
                        )
                    )
                    return "unsat", None
                self._backjump(deepest)
                learned, backjump_level, lbd, used = self._analyze(conflict)
                if len(learned) == 1:
                    # A learned unit always commits at the root: asserting
                    # it reason-less any higher would plant a pseudo-
                    # decision later analyses cannot resolve through.
                    target = 0
                else:
                    target = _chrono_target(deepest, backjump_level, self._sparse())
                self._note_redecide(target)
                self.stats.backjump_levels += before - target
                self._backjump(target)
                self._install_learned(learned, lbd, used)
                self._decay_activities()
                if len(self._learnt_act) > self._max_learnts:
                    self._reduce_db()
                continue

            # Luby restarts pair with VSIDS + saved phases: activity
            # reordering makes the replay productive and phases make it
            # cheap.  The conflict-sparse regime decides by the
            # (deterministic) DLIS scan, where a restart merely replays the
            # same trail at full re-decision cost — so restarts only fire
            # once the solve has left it, counting from the switch.
            if not self._sparse() and not heavy_since_conflicts:
                heavy_since_conflicts = True
                conflicts_at_restart = self.stats.conflicts
            if (
                heavy_since_conflicts
                and self.stats.conflicts - conflicts_at_restart >= restart_limit
                and self._decision_level() > len(assumptions)
            ):
                restart_index += 1
                restart_limit = _LUBY_UNIT * _luby(restart_index)
                conflicts_at_restart = self.stats.conflicts
                self.stats.restarts += 1
                self._backjump(0)
                continue

            # Theory consistency of the currently-true atoms (cheap check).
            if self.theory_callback is not None and self.theory_atoms:
                self.stats.theory_checks += 1
                clause = self.theory_callback(set(self._true_atoms), False)
                if clause is not None:
                    self.stats.conflicts += 1
                    if over_budget():
                        raise ResourceLimit("SAT search exceeded the conflict budget")
                    if not self._handle_theory_conflict(tuple(clause)):
                        return "unsat", None
                    continue

            # Place the next pending assumption (one decision level each).
            placed = False
            failed_now: Optional[int] = None
            while self._decision_level() < len(assumptions):
                literal = assumptions[self._decision_level()]
                value = self._value(literal)
                if value is True:
                    self._new_level()  # dummy level, keeps the indexing
                    continue
                if value is False:
                    failed_now = literal
                    break
                self._new_level()
                self._assign(literal, reason=None)
                self.stats.decisions += 1
                placed = True
                break
            if failed_now is not None:
                self.failed_assumptions = self._analyze_final(failed_now)
                return "unsat", None
            if placed:
                continue

            branch_var = self._decide_var()
            if branch_var is None:
                # Complete assignment: run the full (integer) theory check.
                if self.theory_callback is not None:
                    self.stats.theory_checks += 1
                    clause = self.theory_callback(set(self._true_atoms), True)
                    if clause is not None:
                        self.stats.conflicts += 1
                        if over_budget():
                            raise ResourceLimit("SAT search exceeded the conflict budget")
                        if not self._handle_theory_conflict(tuple(clause)):
                            return "unsat", None
                        continue
                return "sat", dict(self.assignment)

            self.stats.decisions += 1
            self._new_level()
            self._assign(self._decision_literal(branch_var), reason=None)
