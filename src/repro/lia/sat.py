"""A DPLL SAT search with a theory hook (the "DPLL(T)" loop).

The propositional part works on the clause set produced by
:mod:`repro.lia.cnf`.  The search is a classic iterative DPLL with unit
propagation and chronological backtracking; learned clauses (theory blocking
clauses or theory conflict clauses) can be added during the search through
the theory callback.

The theory callback receives the set of atom variables currently assigned
*true* and returns either ``None`` (consistent as far as it can tell) or a
conflict clause (a tuple of literals) that is added to the clause database.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from .intsolver import ResourceLimit

Clause = Tuple[int, ...]
TheoryCallback = Callable[[Set[int], bool], Optional[Clause]]


@dataclass
class SatStats:
    """Counters describing one SAT search (useful in tests and benchmarks)."""

    decisions: int = 0
    propagations: int = 0
    conflicts: int = 0
    theory_checks: int = 0
    learned_clauses: int = 0


class DpllSolver:
    """DPLL with unit propagation, chronological backtracking and a theory hook."""

    def __init__(
        self,
        num_vars: int,
        clauses: Sequence[Clause],
        theory_atoms: Optional[Set[int]] = None,
        theory_callback: Optional[TheoryCallback] = None,
        deadline: Optional[float] = None,
        max_conflicts: int = 200000,
    ) -> None:
        self.num_vars = num_vars
        self.clauses: List[Clause] = [tuple(clause) for clause in clauses]
        self.theory_atoms = theory_atoms or set()
        self.theory_callback = theory_callback
        self.deadline = deadline
        self.max_conflicts = max_conflicts
        self.stats = SatStats()

        self.assignment: Dict[int, bool] = {}
        # Trail of (literal, is_decision, tried_both)
        self.trail: List[List] = []

    # ------------------------------------------------------------------
    def _value(self, literal: int) -> Optional[bool]:
        var = abs(literal)
        if var not in self.assignment:
            return None
        value = self.assignment[var]
        return value if literal > 0 else not value

    def _assign(self, literal: int, is_decision: bool) -> None:
        self.assignment[abs(literal)] = literal > 0
        self.trail.append([literal, is_decision, False])

    def _unassign_last(self) -> List:
        entry = self.trail.pop()
        del self.assignment[abs(entry[0])]
        return entry

    # ------------------------------------------------------------------
    def _propagate(self) -> Optional[Clause]:
        """Unit propagation; returns a falsified clause on conflict."""
        changed = True
        while changed:
            changed = False
            for clause in self.clauses:
                unassigned: Optional[int] = None
                satisfied = False
                multiple_unassigned = False
                for literal in clause:
                    value = self._value(literal)
                    if value is True:
                        satisfied = True
                        break
                    if value is None:
                        if unassigned is None:
                            unassigned = literal
                        else:
                            multiple_unassigned = True
                if satisfied:
                    continue
                if unassigned is None:
                    return clause
                if not multiple_unassigned:
                    self._assign(unassigned, is_decision=False)
                    self.stats.propagations += 1
                    changed = True
        return None

    def _pick_branch_variable(self) -> Optional[int]:
        """Pick an unassigned variable (most frequent in unsatisfied clauses)."""
        counts: Dict[int, int] = {}
        for clause in self.clauses:
            clause_satisfied = any(self._value(lit) is True for lit in clause)
            if clause_satisfied:
                continue
            for literal in clause:
                var = abs(literal)
                if var not in self.assignment:
                    counts[var] = counts.get(var, 0) + 1
        if counts:
            return max(counts, key=lambda v: (counts[v], -v))
        for var in range(1, self.num_vars + 1):
            if var not in self.assignment:
                return var
        return None

    def _true_theory_atoms(self) -> Set[int]:
        return {var for var in self.theory_atoms if self.assignment.get(var) is True}

    def _backtrack(self) -> bool:
        """Undo the trail up to the last decision not yet flipped; flip it.

        Returns ``False`` when no decision is left (the search space is
        exhausted).
        """
        while self.trail:
            literal, is_decision, tried_both = self.trail[-1]
            if is_decision and not tried_both:
                self._unassign_last()
                # Re-assign the opposite phase as a pseudo-decision that must
                # not be flipped again.
                self.assignment[abs(literal)] = not (literal > 0)
                self.trail.append([-literal, True, True])
                return True
            self._unassign_last()
        return False

    # ------------------------------------------------------------------
    def solve(self) -> Tuple[str, Optional[Dict[int, bool]]]:
        """Run the search; returns ``("sat", model)``, ``("unsat", None)``.

        Raises :class:`ResourceLimit` when the conflict or time budget is
        exhausted.
        """
        while True:
            if self.deadline is not None and time.monotonic() > self.deadline:
                raise ResourceLimit("SAT search exceeded the time budget")

            conflict = self._propagate()
            if conflict is not None:
                self.stats.conflicts += 1
                if self.stats.conflicts > self.max_conflicts:
                    raise ResourceLimit("SAT search exceeded the conflict budget")
                if not self._backtrack():
                    return "unsat", None
                continue

            # Theory consistency of the currently-true atoms (cheap check).
            if self.theory_callback is not None and self.theory_atoms:
                self.stats.theory_checks += 1
                clause = self.theory_callback(self._true_theory_atoms(), False)
                if clause is not None:
                    self.clauses.append(tuple(clause))
                    self.stats.learned_clauses += 1
                    self.stats.conflicts += 1
                    if self.stats.conflicts > self.max_conflicts:
                        raise ResourceLimit("SAT search exceeded the conflict budget")
                    if not self._backtrack():
                        return "unsat", None
                    continue

            branch_var = self._pick_branch_variable()
            if branch_var is None:
                # Complete assignment: run the full (integer) theory check.
                if self.theory_callback is not None:
                    self.stats.theory_checks += 1
                    clause = self.theory_callback(self._true_theory_atoms(), True)
                    if clause is not None:
                        self.clauses.append(tuple(clause))
                        self.stats.learned_clauses += 1
                        self.stats.conflicts += 1
                        if self.stats.conflicts > self.max_conflicts:
                            raise ResourceLimit("SAT search exceeded the conflict budget")
                        if not self._backtrack():
                            return "unsat", None
                        continue
                return "sat", dict(self.assignment)

            self.stats.decisions += 1
            self._assign(branch_var, is_decision=True)
