"""Integer feasibility of conjunctions of linear constraints.

The rational relaxation is decided by :mod:`repro.lia.simplex`; integrality
is then enforced by a genuine **branch-and-cut** search, mirroring Z3's
"Simplex extended with a branch-and-cut strategy" mentioned in §8 of the
paper.  The pipeline per :func:`check_integer_feasibility` call:

1. **Presolve** (:func:`_eliminate_equalities_over_z`): integer-preserving
   equality elimination, bound propagation and gcd tightening.  Divisibility
   conflicts surfaced here are refuted without touching the simplex.
2. **Omega pre-pass** (:func:`_omega_check`): when the reduced system is
   small, a Pugh-style Omega-test elimination runs first — Fourier–Motzkin
   projection with gcd tightening of every derived inequality (the
   divisibility reasoning), tracking whether each elimination step is
   *exact* (some coefficient of every combined pair is ±1, the case where
   the dark shadow coincides with the real shadow).  A contradiction in the
   projected system is a sound refutation because real-shadow projections
   are implied constraints; a fully exact elimination additionally yields an
   integer model by back-substitution.  Inexact systems fall through.
3. **Branch-and-cut**: branch-and-bound on fractional variables, where each
   node first spends ``cut_rounds`` rounds of Gomory mixed-integer cuts
   (:meth:`repro.lia.simplex.Simplex.gomory_cuts`) derived from fractional
   basic rows of the feasible tableau.  Cuts are what refute pure-inequality
   mod-k conflicts — e.g. the ``(abc)*`` commuting-disequality instances —
   that plain branch-and-bound diverges on.  Cuts added at the root are
   globally valid; cuts derived below a branch live in that branch's scope
   and are retracted on backtracking (their derivation may use branch
   bounds).

Budgets (surfaced as :class:`repro.lia.solver.LiaConfig` knobs):
``max_nodes`` bounds branch-and-bound nodes, ``cut_rounds`` bounds Gomory
rounds per node, ``max_cuts`` bounds total cuts per check, and ``omega``
gates the Omega pre-pass (which additionally caps its own variable count and
derived-constraint count).  The search raises :class:`ResourceLimit` when a
budget is exhausted — callers then report ``UNKNOWN`` rather than an unsound
verdict.

Every derived fact carries provenance: cut tags are frozenset unions of the
tags of the bounds used in their derivation, Omega projections union the
tags of the combined rows, and substitution descendants union their source
equality's tags — so a conflict core reported from any layer names exactly
the original caller constraints that produced it (see ``_eliminate_pass``
for why anything less is unsound).
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from math import gcd
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..budget import Budget, checkpoint
from .simplex import Constraint, Simplex, SimplexResult


class ResourceLimit(Exception):
    """Raised when a solving budget (nodes, pivots, wall clock) is exhausted."""


@dataclass
class IntResult:
    """Outcome of an integer feasibility check."""

    feasible: bool
    model: Optional[Dict[str, int]] = None
    conflict: Optional[Set[object]] = None
    #: simplex pivots spent on this check (benchmark statistic)
    pivots: int = 0


def _gcd(values) -> int:
    result = 0
    for value in values:
        result = gcd(result, abs(int(value)))
    return result


def _flatten_tags(tags) -> Set[object]:
    """Expand frozenset provenance tags back into the original caller tags."""
    out: Set[object] = set()
    for tag in tags or ():
        if isinstance(tag, frozenset):
            out |= tag
        elif tag is not None:
            out.add(tag)
    return out


def _eliminate_pass(
    constraints: Sequence[Constraint],
) -> Tuple[Optional[List[Constraint]], List[Tuple[str, "LinExpr"]], Set[object]]:
    """One pass of integer-preserving elimination of equality constraints.

    Repeatedly takes an equality ``Σ c_i x_i + c = 0``:

    * if ``gcd(c_i)`` does not divide ``c`` the system has no integer
      solution (returns ``None`` plus the conflicting tags) — this is what
      catches parity-style conflicts that pure branch-and-bound diverges on,
    * if some coefficient is ±1 the variable is solved for and substituted
      (recorded so models can be completed afterwards),
    * otherwise the (gcd-normalised) equality is kept for the simplex.

    Constraint tags here are *frozensets* of original caller tags: whenever a
    definition derived from equality ``E`` is substituted into a constraint
    ``C``, the tags of ``E`` are merged into ``C`` so that any later conflict
    on (a descendant of) ``C`` reports every constraint that produced it —
    reporting only ``C``'s own tag would yield an unsound conflict core (and,
    one level up, an over-strong learned theory clause).

    Returns ``(remaining constraints, eliminated definitions, conflict tags)``.
    """
    from .terms import LinExpr

    remaining: List[Constraint] = []
    equalities: List[Constraint] = []
    for constraint in constraints:
        (equalities if constraint.relation == "==" else remaining).append(constraint)

    eliminated: List[Tuple[str, LinExpr]] = []
    kept_equalities: List[Constraint] = []
    while equalities:
        # Substitution can grow the remaining expressions, so the
        # elimination chain itself must stay under the ambient budget
        # (the PR-6 presolve stall was exactly this shape).
        checkpoint("lia.eliminate")
        constraint = equalities.pop()
        expr = constraint.expr
        if not expr.coeffs:
            if expr.const != 0:
                return None, eliminated, constraint.tag
            continue
        g = _gcd(expr.coeffs.values())
        if g > 1:
            if expr.const % g != 0:
                return None, eliminated, constraint.tag
            expr = LinExpr({k: v // g for k, v in expr.coeffs.items()}, expr.const // g)
        pivot = None
        for name, coeff in expr.coeffs.items():
            if coeff in (1, -1):
                pivot = (name, coeff)
                break
        if pivot is None:
            kept_equalities.append(Constraint(expr, "==", constraint.tag))
            continue
        name, coeff = pivot
        rest = LinExpr({k: v for k, v in expr.coeffs.items() if k != name}, expr.const)
        definition = rest * (-1) if coeff == 1 else rest
        eliminated.append((name, definition))
        mapping = {name: definition}
        source_tags = constraint.tag

        def substitute_all(items: List[Constraint]) -> List[Constraint]:
            updated = []
            for item in items:
                if name not in item.expr.coeffs:
                    updated.append(item)
                    continue
                new_expr = item.expr.substitute(mapping)
                updated.append(Constraint(new_expr, item.relation, item.tag | source_tags))
            return updated

        equalities = substitute_all(equalities)
        remaining = substitute_all(remaining)
        kept_equalities = substitute_all(kept_equalities)
        eliminated = [
            (v, d.substitute(mapping) if name in d.coeffs else d) for v, d in eliminated[:-1]
        ] + [eliminated[-1]]

    # Re-check divisibility of the equalities that survived (substitutions may
    # have turned them into parity conflicts), decide constant atoms, and
    # *tighten* inequalities by gcd rounding: over the integers
    # ``Σ c_i x_i ≤ b`` is equivalent to ``Σ (c_i/g) x_i ≤ ⌊b/g⌋``.  This
    # rounding is what lets the rational simplex refute parity conflicts such
    # as ``2x − 2y ≤ −1 ∧ 2y − 2x ≤ 0`` that branch-and-bound diverges on.
    final: List[Constraint] = []
    for constraint in remaining + kept_equalities:
        expr = constraint.expr
        if not expr.coeffs:
            holds = expr.const <= 0 if constraint.relation == "<=" else (
                expr.const >= 0 if constraint.relation == ">=" else expr.const == 0
            )
            if not holds:
                return None, eliminated, constraint.tag
            continue
        if constraint.relation == "==":
            g = _gcd(expr.coeffs.values())
            if g > 1 and expr.const % g != 0:
                return None, eliminated, constraint.tag
            final.append(constraint)
            continue
        # Normalise to "expr <= 0" form and gcd-tighten.
        if constraint.relation == ">=":
            expr = expr * -1
        coeffs, const = _tighten(expr.coeffs, expr.const)
        if coeffs is not expr.coeffs:
            expr = LinExpr(coeffs, const)
        final.append(Constraint(expr, "<=", constraint.tag))
    return final, eliminated, set()


def _implied_equalities(constraints: Sequence[Constraint]) -> Tuple[Optional[List[Constraint]], Set[object]]:
    """Derive equalities implied by pairs of inequalities.

    Two sources are recognised: a variable whose lower and upper bounds
    coincide, and a pair ``e ≤ 0`` / ``−e ≤ 0``.  Such hidden equalities are
    what makes divisibility conflicts visible to :func:`_eliminate_pass`
    (e.g. a γ-variable forced to 1 by two inequalities, turning
    ``3x − 3y + 2γ = 0`` into a mod-3 conflict).  Returns ``None`` when the
    bounds themselves are contradictory.
    """
    from .terms import LinExpr

    lower: Dict[str, Tuple[int, frozenset]] = {}
    upper: Dict[str, Tuple[int, frozenset]] = {}
    seen_forms: Dict[Tuple, Constraint] = {}
    implied: List[Constraint] = []

    for constraint in constraints:
        if constraint.relation == "==":
            continue
        expr = constraint.expr if constraint.relation == "<=" else constraint.expr * -1
        key = tuple(sorted(expr.coeffs.items())) + (expr.const,)
        seen_forms.setdefault(key, constraint)
        if len(expr.coeffs) == 1:
            ((name, coeff),) = expr.coeffs.items()
            if coeff > 0:
                # coeff·name + const <= 0  =>  name <= floor(-const / coeff)
                bound = (-expr.const) // coeff
                current = upper.get(name)
                if current is None or bound < current[0]:
                    upper[name] = (bound, constraint.tag)
            else:
                # -m·name + const <= 0  =>  name >= ceil(const / m)
                magnitude = -coeff
                bound = -((-expr.const) // magnitude)
                current = lower.get(name)
                if current is None or bound > current[0]:
                    lower[name] = (bound, constraint.tag)

    for name in set(lower) & set(upper):
        low, low_tags = lower[name]
        high, high_tags = upper[name]
        if low > high:
            return None, low_tags | high_tags
        if low == high:
            # The implied equality relies on *both* bounds.
            implied.append(Constraint(LinExpr({name: 1}, -low), "==", low_tags | high_tags))

    for key, constraint in seen_forms.items():
        expr = constraint.expr if constraint.relation == "<=" else constraint.expr * -1
        if len(expr.coeffs) <= 1:
            continue
        negated = expr * -1
        negated_key = tuple(sorted(negated.coeffs.items())) + (negated.const,)
        if negated_key in seen_forms and repr(key) < repr(negated_key):
            other = seen_forms[negated_key]
            implied.append(Constraint(expr, "==", constraint.tag | other.tag))

    return implied, set()


def _eliminate_equalities_over_z(
    constraints: Sequence[Constraint],
) -> Tuple[Optional[List[Constraint]], List[Tuple[str, "LinExpr"]], Set[object]]:
    """Fixpoint of equality elimination, bound propagation and gcd tightening.

    Tags are normalised to frozensets of original caller tags on entry so
    that substitution provenance can be tracked (see :func:`_eliminate_pass`);
    the reduced constraints keep frozenset tags and callers flatten conflict
    sets with :func:`_flatten_tags`.
    """
    current = [
        Constraint(
            c.expr,
            c.relation,
            c.tag
            if isinstance(c.tag, frozenset)
            else (frozenset() if c.tag is None else frozenset([c.tag])),
        )
        for c in constraints
    ]
    eliminated_all: List[Tuple[str, "LinExpr"]] = []
    for _round in range(6):
        reduced, eliminated, conflict = _eliminate_pass(current)
        eliminated_all.extend(eliminated)
        if reduced is None:
            return None, eliminated_all, conflict
        implied, bound_conflict = _implied_equalities(reduced)
        if implied is None:
            return None, eliminated_all, bound_conflict
        new_equalities = [c for c in implied if not _already_present(reduced, c)]
        if not new_equalities:
            return reduced, eliminated_all, set()
        current = reduced + new_equalities
    return reduced, eliminated_all, set()


def _already_present(constraints: Sequence[Constraint], candidate: Constraint) -> bool:
    for constraint in constraints:
        if constraint.relation == candidate.relation and constraint.expr == candidate.expr:
            return True
    return False


def _tighten(coeffs: Dict[str, int], const: int) -> Tuple[Dict[str, int], int]:
    """gcd-tighten ``Σ c_i x_i + const ≤ 0`` over the integers.

    Dividing by ``g = gcd(c_i)`` and flooring the bound is the divisibility
    reasoning of the Omega test: ``Σ c_i x_i ≤ b`` iff ``Σ (c_i/g) x_i ≤
    ⌊b/g⌋`` for integer solutions.
    """
    g = _gcd(coeffs.values())
    if g <= 1:
        return coeffs, const
    bound = (-const) // g
    return {name: coeff // g for name, coeff in coeffs.items()}, -bound


#: one inequality of the Omega system: ``Σ coeffs·x + const ≤ 0`` plus the
#: frozenset of original-constraint tags it descends from
_OmegaRow = Tuple[Dict[str, int], int, frozenset]


def _omega_check(
    constraints: Sequence[Constraint],
    max_vars: int = 24,
    max_rows: int = 600,
) -> Tuple[Optional[str], object]:
    """Omega-test elimination (Pugh 1991) over an all-integer system.

    Projects variables away one at a time by Fourier–Motzkin combination,
    gcd-tightening every derived row.  Soundness of the two verdicts:

    * ``("unsat", tags)`` — every derived row is implied over ℤ (real-shadow
      projections plus divisibility tightening), so a contradictory constant
      row refutes the input; ``tags`` unions the provenance of the rows that
      produced it.
    * ``("sat", model)`` — only reported when **every** eliminated pair was
      exact (some coefficient ±1, where dark and real shadow coincide) so
      the projection is equivalence-preserving, and the model produced by
      back-substitution satisfies the input (the caller re-verifies).

    ``(None, None)`` means inconclusive: budgets exceeded or an inexact
    elimination was required.  All input coefficients must be integral and
    all variables integer-constrained; callers gate on that.
    """
    rows: List[_OmegaRow] = []

    def add_row(coeffs: Dict[str, int], const: int, tags: frozenset) -> Optional[frozenset]:
        coeffs = {name: coeff for name, coeff in coeffs.items() if coeff}
        if not coeffs:
            return tags if const > 0 else None
        coeffs, const = _tighten(coeffs, const)
        rows.append((coeffs, const, tags))
        return None

    for constraint in constraints:
        expr = constraint.expr
        if any(
            not isinstance(c, int) and Fraction(c).denominator != 1
            for c in list(expr.coeffs.values()) + [expr.const]
        ):
            return None, None
        coeffs = {name: int(coeff) for name, coeff in expr.coeffs.items()}
        const = int(expr.const)
        tags = constraint.tag if isinstance(constraint.tag, frozenset) else (
            frozenset() if constraint.tag is None else frozenset([constraint.tag])
        )
        sides = {"<=": (1,), ">=": (-1,), "==": (1, -1)}[constraint.relation]
        for sign in sides:
            conflict = add_row(
                {name: sign * coeff for name, coeff in coeffs.items()}, sign * const, tags
            )
            if conflict is not None:
                return "unsat", conflict

    variables = {name for coeffs, _c, _t in rows for name in coeffs}
    if len(variables) > max_vars:
        return None, None

    #: elimination stack for back-substitution: (var, lowers, uppers) where
    #: lowers hold (a, rest_coeffs, rest_const) meaning ``a·var ≥ −rest``
    stack: List[Tuple[str, List, List]] = []
    all_exact = True

    while rows:
        # Each elimination can square the row count; charge per round.
        checkpoint("lia.omega", 1 + len(rows))
        variables = {name for coeffs, _c, _t in rows for name in coeffs}
        if not variables:
            break
        # Pugh's heuristic: eliminate the variable producing the fewest
        # combined rows first.
        def cost(name: str) -> int:
            lowers = sum(1 for coeffs, _c, _t in rows if coeffs.get(name, 0) < 0)
            uppers = sum(1 for coeffs, _c, _t in rows if coeffs.get(name, 0) > 0)
            return lowers * uppers

        var = min(sorted(variables), key=cost)
        lowers = []  # -a·x + rest ≤ 0, a > 0  (x ≥ rest/a)
        uppers = []  # a·x + rest ≤ 0, a > 0   (x ≤ -rest/a)
        untouched = []
        for coeffs, const, tags in rows:
            coeff = coeffs.get(var, 0)
            rest = {name: c for name, c in coeffs.items() if name != var}
            if coeff > 0:
                uppers.append((coeff, rest, const, tags))
            elif coeff < 0:
                lowers.append((-coeff, rest, const, tags))
            else:
                untouched.append((coeffs, const, tags))
        if len(untouched) + len(lowers) * len(uppers) > max_rows:
            return None, None
        rows = untouched
        for low_coeff, low_rest, low_const, low_tags in lowers:
            for up_coeff, up_rest, up_const, up_tags in uppers:
                if low_coeff != 1 and up_coeff != 1:
                    # Inexact pair: the real shadow stays sound for
                    # refutation but SAT would need dark-shadow splinters.
                    all_exact = False
                combined = {
                    name: low_coeff * up_rest.get(name, 0) + up_coeff * low_rest.get(name, 0)
                    for name in set(low_rest) | set(up_rest)
                }
                conflict = add_row(
                    combined,
                    low_coeff * up_const + up_coeff * low_const,
                    low_tags | up_tags,
                )
                if conflict is not None:
                    return "unsat", conflict
        stack.append((var, [(a, r, c) for a, r, c, _t in lowers],
                      [(a, r, c) for a, r, c, _t in uppers]))

    if not all_exact:
        return None, None

    # Every elimination was exact and no contradiction surfaced: the input
    # has an integer solution; rebuild one by back-substitution.
    model: Dict[str, int] = {}
    for coeffs, _c, _t in rows:
        for name in coeffs:
            model.setdefault(name, 0)
    for var, lowers, uppers in reversed(stack):
        def rest_value(rest: Dict[str, int], const: int) -> int:
            return const + sum(coeff * model.get(name, 0) for name, coeff in rest.items())

        if lowers:
            # -a·x + rest ≤ 0  ⇒  x ≥ rest/a  ⇒  x = max ceil(rest/a)
            value = max(-((-rest_value(rest, const)) // a) for a, rest, const in lowers)
        elif uppers:
            value = min((-rest_value(rest, const)) // a for a, rest, const in uppers)
        else:
            value = 0
        model[var] = value
    return "sat", model


def _fractional_variable(model: Dict[str, Fraction], integer_vars: Optional[Set[str]]) -> Optional[str]:
    """Return a variable that must be integral but currently is not."""
    best_name = None
    best_distance = None
    for name, value in model.items():
        if name.startswith("__s"):
            continue
        if integer_vars is not None and name not in integer_vars:
            continue
        if value.denominator == 1:
            continue
        fractional_part = value - value.__floor__()
        distance = abs(Fraction(1, 2) - fractional_part)
        if best_distance is None or distance < best_distance:
            best_distance = distance
            best_name = name
    return best_name


def _satisfied(constraint: Constraint, model: Dict[str, int]) -> bool:
    """Evaluate a constraint under a (partial, default-0) integer model."""
    value = constraint.expr.const + sum(
        coeff * model.get(name, 0) for name, coeff in constraint.expr.coeffs.items()
    )
    if constraint.relation == "<=":
        return value <= 0
    if constraint.relation == ">=":
        return value >= 0
    return value == 0


def check_integer_feasibility(
    constraints: Sequence[Constraint],
    integer_vars: Optional[Set[str]] = None,
    max_nodes: int = 4000,
    deadline: Optional[float] = None,
    cut_rounds: int = 10,
    max_cuts: int = 200,
    omega: bool = True,
    budget: Optional[Budget] = None,
) -> IntResult:
    """Decide whether ``constraints`` have an integer solution.

    ``integer_vars`` restricts which variables must take integral values
    (``None`` means all of them).  ``cut_rounds`` bounds the Gomory cut
    rounds spent per branch-and-bound node, ``max_cuts`` the total cuts per
    call (0 disables cutting planes), and ``omega`` gates the Omega-test
    pre-pass on the reduced system (see the module docstring).  The function
    either returns a definitive :class:`IntResult` or raises
    :class:`ResourceLimit` on the node/depth budgets.  Wall-clock bounding
    goes through ``budget`` (one checkpoint per branch-and-bound node,
    raising :class:`repro.budget.BudgetExceeded` — deliberately distinct
    from ``ResourceLimit``, which callers treat as a recoverable
    per-assignment event); ``deadline`` is the legacy spelling and is
    folded into a local budget when no shared one is given.
    """
    if budget is None and deadline is not None:
        budget = Budget(deadline=deadline)
    original_constraints = list(constraints)
    reduced, eliminated_defs, conflict_tags = _eliminate_equalities_over_z(original_constraints)
    if reduced is None:
        tags = _flatten_tags(conflict_tags)
        if not tags:
            tags = {c.tag for c in original_constraints if c.tag is not None}
        return IntResult(False, conflict=tags)
    constraints = reduced

    def finish_model(model: Dict[str, int]) -> Dict[str, int]:
        completed = dict(model)
        for name, definition in reversed(eliminated_defs):
            value = definition.const
            for other, coeff in definition.coeffs.items():
                value += coeff * completed.get(other, 0)
            completed[name] = int(value)
        return completed

    if omega and integer_vars is None:
        verdict, payload = _omega_check(constraints)
        if verdict == "unsat":
            return IntResult(False, conflict=_flatten_tags(payload))
        if verdict == "sat":
            # Belt and braces: trust the reconstructed model only after it
            # re-verifies against the reduced system (falling through to
            # branch-and-cut otherwise keeps the solver sound either way).
            model = dict(payload)
            if all(_satisfied(constraint, model) for constraint in constraints):
                return IntResult(True, model=finish_model(model))

    nodes_used = 0
    cuts_used = 0
    max_depth = 120

    # One tableau for the whole search: the base constraints are loaded once
    # and every branch constraint is a retractable single-variable bound
    # (push/pop), so no node ever rebuilds rows and every relaxation check
    # starts from the previous (warm) basis.
    simplex = Simplex()
    for constraint in constraints:
        simplex.add_constraint(constraint)

    def solve(depth: int = 0) -> IntResult:
        nonlocal nodes_used, cuts_used
        nodes_used += 1
        if nodes_used > max_nodes:
            raise ResourceLimit(f"branch-and-bound exceeded {max_nodes} nodes")
        if depth > max_depth:
            raise ResourceLimit(f"branch-and-bound exceeded depth {max_depth}")
        if budget is not None:
            budget.checkpoint("lia.intsolver")

        relaxation: SimplexResult = simplex.check()
        if not relaxation.feasible:
            return IntResult(False, conflict=relaxation.conflict)

        # Gomory cut rounds: tighten the relaxation before branching.  Cuts
        # added at the root (no enclosing scope) persist for the whole
        # search; cuts below a branch live in the branch's scope and are
        # retracted with it (their derivation may use branch bounds).
        rounds = 0
        branch_var = _fractional_variable(relaxation.model, integer_vars)
        while (
            branch_var is not None and rounds < cut_rounds and cuts_used < max_cuts
        ):
            cuts = simplex.gomory_cuts(
                integer_vars, max_cuts=min(8, max_cuts - cuts_used)
            )
            if not cuts:
                break
            rounds += 1
            cuts_used += len(cuts)
            for cut in cuts:
                simplex.add_constraint(cut)
            relaxation = simplex.check()
            if not relaxation.feasible:
                return IntResult(False, conflict=relaxation.conflict)
            branch_var = _fractional_variable(relaxation.model, integer_vars)
            if budget is not None:
                budget.checkpoint("lia.intsolver")

        if branch_var is None:
            model = {
                name: int(value)
                for name, value in relaxation.model.items()
                if not name.startswith("__s") and value.denominator == 1
            }
            # Round any remaining rational-valued, non-integer-constrained
            # variables down; they are unconstrained in sign of rounding
            # because they are not required to be integral.
            for name, value in relaxation.model.items():
                if name.startswith("__s") or name in model:
                    continue
                model[name] = int(value) if value.denominator == 1 else int(value.__floor__())
            return IntResult(True, model=finish_model(model))

        value = relaxation.model[branch_var]
        floor_value = value.__floor__()
        from .terms import LinExpr

        below = Constraint(LinExpr({branch_var: 1}, -floor_value), "<=", tag=None)
        above = Constraint(LinExpr({branch_var: 1}, -(floor_value + 1)), ">=", tag=None)

        simplex.push()
        simplex.add_constraint(below)
        left = solve(depth + 1)
        simplex.pop()
        if left.feasible:
            return left
        simplex.push()
        simplex.add_constraint(above)
        right = solve(depth + 1)
        simplex.pop()
        if right.feasible:
            return right
        # Neither branch is integer feasible.  The union of the two branch
        # cores over-approximates a minimal explanation but is still a sound
        # core (the branch constraints themselves carry no tag and drop out):
        # reporting it lets the caller learn a clause that actually prunes,
        # where an empty core would force blocking the entire assignment.
        return IntResult(
            False, conflict=(left.conflict or set()) | (right.conflict or set())
        )

    result = solve()
    result.pivots = simplex.pivots
    if not result.feasible:
        result.conflict = _flatten_tags(result.conflict)
    return result


def check_rational_feasibility(constraints: Sequence[Constraint]) -> SimplexResult:
    """Check the rational relaxation only (used for fast pruning in DPLL(T))."""
    simplex = Simplex()
    for constraint in constraints:
        simplex.add_constraint(constraint)
    return simplex.check()
