"""Integer feasibility of conjunctions of linear constraints.

The rational relaxation is decided by :mod:`repro.lia.simplex`; integrality
is then enforced by branch-and-bound on variables with fractional values,
mirroring Z3's "Simplex extended with a branch-and-cut strategy" mentioned in
§8 of the paper.  The search is bounded (node limit and optional deadline)
and raises :class:`ResourceLimit` when the budget is exhausted — callers then
report ``UNKNOWN`` rather than an unsound verdict.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, List, Optional, Sequence, Set

from .simplex import Constraint, Simplex, SimplexResult


class ResourceLimit(Exception):
    """Raised when a solving budget (nodes, pivots, wall clock) is exhausted."""


@dataclass
class IntResult:
    """Outcome of an integer feasibility check."""

    feasible: bool
    model: Optional[Dict[str, int]] = None
    conflict: Optional[Set[object]] = None
    #: simplex pivots spent on this check (benchmark statistic)
    pivots: int = 0


def _gcd(values) -> int:
    from math import gcd

    result = 0
    for value in values:
        result = gcd(result, abs(int(value)))
    return result


def _flatten_tags(tags) -> Set[object]:
    """Expand frozenset provenance tags back into the original caller tags."""
    out: Set[object] = set()
    for tag in tags or ():
        if isinstance(tag, frozenset):
            out |= tag
        elif tag is not None:
            out.add(tag)
    return out


def _eliminate_pass(
    constraints: Sequence[Constraint],
) -> Tuple[Optional[List[Constraint]], List[Tuple[str, "LinExpr"]], Set[object]]:
    """One pass of integer-preserving elimination of equality constraints.

    Repeatedly takes an equality ``Σ c_i x_i + c = 0``:

    * if ``gcd(c_i)`` does not divide ``c`` the system has no integer
      solution (returns ``None`` plus the conflicting tags) — this is what
      catches parity-style conflicts that pure branch-and-bound diverges on,
    * if some coefficient is ±1 the variable is solved for and substituted
      (recorded so models can be completed afterwards),
    * otherwise the (gcd-normalised) equality is kept for the simplex.

    Constraint tags here are *frozensets* of original caller tags: whenever a
    definition derived from equality ``E`` is substituted into a constraint
    ``C``, the tags of ``E`` are merged into ``C`` so that any later conflict
    on (a descendant of) ``C`` reports every constraint that produced it —
    reporting only ``C``'s own tag would yield an unsound conflict core (and,
    one level up, an over-strong learned theory clause).

    Returns ``(remaining constraints, eliminated definitions, conflict tags)``.
    """
    from .terms import LinExpr

    remaining: List[Constraint] = []
    equalities: List[Constraint] = []
    for constraint in constraints:
        (equalities if constraint.relation == "==" else remaining).append(constraint)

    eliminated: List[Tuple[str, LinExpr]] = []
    kept_equalities: List[Constraint] = []
    while equalities:
        constraint = equalities.pop()
        expr = constraint.expr
        if not expr.coeffs:
            if expr.const != 0:
                return None, eliminated, constraint.tag
            continue
        g = _gcd(expr.coeffs.values())
        if g > 1:
            if expr.const % g != 0:
                return None, eliminated, constraint.tag
            expr = LinExpr({k: v // g for k, v in expr.coeffs.items()}, expr.const // g)
        pivot = None
        for name, coeff in expr.coeffs.items():
            if coeff in (1, -1):
                pivot = (name, coeff)
                break
        if pivot is None:
            kept_equalities.append(Constraint(expr, "==", constraint.tag))
            continue
        name, coeff = pivot
        rest = LinExpr({k: v for k, v in expr.coeffs.items() if k != name}, expr.const)
        definition = rest * (-1) if coeff == 1 else rest
        eliminated.append((name, definition))
        mapping = {name: definition}
        source_tags = constraint.tag

        def substitute_all(items: List[Constraint]) -> List[Constraint]:
            updated = []
            for item in items:
                if name not in item.expr.coeffs:
                    updated.append(item)
                    continue
                new_expr = item.expr.substitute(mapping)
                updated.append(Constraint(new_expr, item.relation, item.tag | source_tags))
            return updated

        equalities = substitute_all(equalities)
        remaining = substitute_all(remaining)
        kept_equalities = substitute_all(kept_equalities)
        eliminated = [
            (v, d.substitute(mapping) if name in d.coeffs else d) for v, d in eliminated[:-1]
        ] + [eliminated[-1]]

    # Re-check divisibility of the equalities that survived (substitutions may
    # have turned them into parity conflicts), decide constant atoms, and
    # *tighten* inequalities by gcd rounding: over the integers
    # ``Σ c_i x_i ≤ b`` is equivalent to ``Σ (c_i/g) x_i ≤ ⌊b/g⌋``.  This
    # rounding is what lets the rational simplex refute parity conflicts such
    # as ``2x − 2y ≤ −1 ∧ 2y − 2x ≤ 0`` that branch-and-bound diverges on.
    final: List[Constraint] = []
    for constraint in remaining + kept_equalities:
        expr = constraint.expr
        if not expr.coeffs:
            holds = expr.const <= 0 if constraint.relation == "<=" else (
                expr.const >= 0 if constraint.relation == ">=" else expr.const == 0
            )
            if not holds:
                return None, eliminated, constraint.tag
            continue
        if constraint.relation == "==":
            g = _gcd(expr.coeffs.values())
            if g > 1 and expr.const % g != 0:
                return None, eliminated, constraint.tag
            final.append(constraint)
            continue
        # Normalise to "expr <= 0" form.
        if constraint.relation == ">=":
            expr = expr * -1
        g = _gcd(expr.coeffs.values())
        if g > 1:
            coeffs = {name: coeff // g for name, coeff in expr.coeffs.items()}
            # Σ (c_i/g) x_i <= floor(-const / g), i.e. const' = -floor(-const/g).
            bound = (-expr.const) // g  # Python floor division
            expr = LinExpr(coeffs, -bound)
        final.append(Constraint(expr, "<=", constraint.tag))
    return final, eliminated, set()


def _implied_equalities(constraints: Sequence[Constraint]) -> Tuple[Optional[List[Constraint]], Set[object]]:
    """Derive equalities implied by pairs of inequalities.

    Two sources are recognised: a variable whose lower and upper bounds
    coincide, and a pair ``e ≤ 0`` / ``−e ≤ 0``.  Such hidden equalities are
    what makes divisibility conflicts visible to :func:`_eliminate_pass`
    (e.g. a γ-variable forced to 1 by two inequalities, turning
    ``3x − 3y + 2γ = 0`` into a mod-3 conflict).  Returns ``None`` when the
    bounds themselves are contradictory.
    """
    from .terms import LinExpr

    lower: Dict[str, Tuple[int, frozenset]] = {}
    upper: Dict[str, Tuple[int, frozenset]] = {}
    seen_forms: Dict[Tuple, Constraint] = {}
    implied: List[Constraint] = []

    for constraint in constraints:
        if constraint.relation == "==":
            continue
        expr = constraint.expr if constraint.relation == "<=" else constraint.expr * -1
        key = tuple(sorted(expr.coeffs.items())) + (expr.const,)
        seen_forms.setdefault(key, constraint)
        if len(expr.coeffs) == 1:
            ((name, coeff),) = expr.coeffs.items()
            if coeff > 0:
                # coeff·name + const <= 0  =>  name <= floor(-const / coeff)
                bound = (-expr.const) // coeff
                current = upper.get(name)
                if current is None or bound < current[0]:
                    upper[name] = (bound, constraint.tag)
            else:
                # -m·name + const <= 0  =>  name >= ceil(const / m)
                magnitude = -coeff
                bound = -((-expr.const) // magnitude)
                current = lower.get(name)
                if current is None or bound > current[0]:
                    lower[name] = (bound, constraint.tag)

    for name in set(lower) & set(upper):
        low, low_tags = lower[name]
        high, high_tags = upper[name]
        if low > high:
            return None, low_tags | high_tags
        if low == high:
            # The implied equality relies on *both* bounds.
            implied.append(Constraint(LinExpr({name: 1}, -low), "==", low_tags | high_tags))

    for key, constraint in seen_forms.items():
        expr = constraint.expr if constraint.relation == "<=" else constraint.expr * -1
        if len(expr.coeffs) <= 1:
            continue
        negated = expr * -1
        negated_key = tuple(sorted(negated.coeffs.items())) + (negated.const,)
        if negated_key in seen_forms and repr(key) < repr(negated_key):
            other = seen_forms[negated_key]
            implied.append(Constraint(expr, "==", constraint.tag | other.tag))

    return implied, set()


def _eliminate_equalities_over_z(
    constraints: Sequence[Constraint],
) -> Tuple[Optional[List[Constraint]], List[Tuple[str, "LinExpr"]], Set[object]]:
    """Fixpoint of equality elimination, bound propagation and gcd tightening.

    Tags are normalised to frozensets of original caller tags on entry so
    that substitution provenance can be tracked (see :func:`_eliminate_pass`);
    the reduced constraints keep frozenset tags and callers flatten conflict
    sets with :func:`_flatten_tags`.
    """
    current = [
        Constraint(
            c.expr,
            c.relation,
            c.tag
            if isinstance(c.tag, frozenset)
            else (frozenset() if c.tag is None else frozenset([c.tag])),
        )
        for c in constraints
    ]
    eliminated_all: List[Tuple[str, "LinExpr"]] = []
    for _round in range(6):
        reduced, eliminated, conflict = _eliminate_pass(current)
        eliminated_all.extend(eliminated)
        if reduced is None:
            return None, eliminated_all, conflict
        implied, bound_conflict = _implied_equalities(reduced)
        if implied is None:
            return None, eliminated_all, bound_conflict
        new_equalities = [c for c in implied if not _already_present(reduced, c)]
        if not new_equalities:
            return reduced, eliminated_all, set()
        current = reduced + new_equalities
    return reduced, eliminated_all, set()


def _already_present(constraints: Sequence[Constraint], candidate: Constraint) -> bool:
    for constraint in constraints:
        if constraint.relation == candidate.relation and constraint.expr == candidate.expr:
            return True
    return False


def _fractional_variable(model: Dict[str, Fraction], integer_vars: Optional[Set[str]]) -> Optional[str]:
    """Return a variable that must be integral but currently is not."""
    best_name = None
    best_distance = None
    for name, value in model.items():
        if name.startswith("__s"):
            continue
        if integer_vars is not None and name not in integer_vars:
            continue
        if value.denominator == 1:
            continue
        fractional_part = value - value.__floor__()
        distance = abs(Fraction(1, 2) - fractional_part)
        if best_distance is None or distance < best_distance:
            best_distance = distance
            best_name = name
    return best_name


def check_integer_feasibility(
    constraints: Sequence[Constraint],
    integer_vars: Optional[Set[str]] = None,
    max_nodes: int = 4000,
    deadline: Optional[float] = None,
) -> IntResult:
    """Decide whether ``constraints`` have an integer solution.

    ``integer_vars`` restricts which variables must take integral values
    (``None`` means all of them).  The function either returns a definitive
    :class:`IntResult` or raises :class:`ResourceLimit`.
    """
    original_constraints = list(constraints)
    reduced, eliminated_defs, conflict_tags = _eliminate_equalities_over_z(original_constraints)
    if reduced is None:
        tags = _flatten_tags(conflict_tags)
        if not tags:
            tags = {c.tag for c in original_constraints if c.tag is not None}
        return IntResult(False, conflict=tags)
    constraints = reduced

    def finish_model(model: Dict[str, int]) -> Dict[str, int]:
        completed = dict(model)
        for name, definition in reversed(eliminated_defs):
            value = definition.const
            for other, coeff in definition.coeffs.items():
                value += coeff * completed.get(other, 0)
            completed[name] = int(value)
        return completed

    nodes_used = 0
    max_depth = 120

    # One tableau for the whole search: the base constraints are loaded once
    # and every branch constraint is a retractable single-variable bound
    # (push/pop), so no node ever rebuilds rows and every relaxation check
    # starts from the previous (warm) basis.
    simplex = Simplex()
    for constraint in constraints:
        simplex.add_constraint(constraint)

    def solve(depth: int = 0) -> IntResult:
        nonlocal nodes_used
        nodes_used += 1
        if nodes_used > max_nodes:
            raise ResourceLimit(f"branch-and-bound exceeded {max_nodes} nodes")
        if depth > max_depth:
            raise ResourceLimit(f"branch-and-bound exceeded depth {max_depth}")
        if deadline is not None and time.monotonic() > deadline:
            raise ResourceLimit("branch-and-bound exceeded the time budget")

        relaxation: SimplexResult = simplex.check()
        if not relaxation.feasible:
            return IntResult(False, conflict=relaxation.conflict)

        branch_var = _fractional_variable(relaxation.model, integer_vars)
        if branch_var is None:
            model = {
                name: int(value)
                for name, value in relaxation.model.items()
                if not name.startswith("__s") and value.denominator == 1
            }
            # Round any remaining rational-valued, non-integer-constrained
            # variables down; they are unconstrained in sign of rounding
            # because they are not required to be integral.
            for name, value in relaxation.model.items():
                if name.startswith("__s") or name in model:
                    continue
                model[name] = int(value) if value.denominator == 1 else int(value.__floor__())
            return IntResult(True, model=finish_model(model))

        value = relaxation.model[branch_var]
        floor_value = value.__floor__()
        from .terms import LinExpr

        below = Constraint(LinExpr({branch_var: 1}, -floor_value), "<=", tag=None)
        above = Constraint(LinExpr({branch_var: 1}, -(floor_value + 1)), ">=", tag=None)

        simplex.push()
        simplex.add_constraint(below)
        left = solve(depth + 1)
        simplex.pop()
        if left.feasible:
            return left
        simplex.push()
        simplex.add_constraint(above)
        right = solve(depth + 1)
        simplex.pop()
        if right.feasible:
            return right
        # Neither branch is integer feasible.  The union of the two branch
        # cores over-approximates a minimal explanation but is still a sound
        # core (the branch constraints themselves carry no tag and drop out):
        # reporting it lets the caller learn a clause that actually prunes,
        # where an empty core would force blocking the entire assignment.
        return IntResult(
            False, conflict=(left.conflict or set()) | (right.conflict or set())
        )

    result = solve()
    result.pivots = simplex.pivots
    if not result.feasible:
        result.conflict = _flatten_tags(result.conflict)
    return result


def check_rational_feasibility(constraints: Sequence[Constraint]) -> SimplexResult:
    """Check the rational relaxation only (used for fast pruning in DPLL(T))."""
    simplex = Simplex()
    for constraint in constraints:
        simplex.add_constraint(constraint)
    return simplex.check()
