"""CNF conversion of NNF formulae for the DPLL(T) loop.

Atoms are numbered ``1..n``; auxiliary Tseitin variables continue the
numbering.  Because the input is in negation normal form (atoms occur only
positively), the Plaisted–Greenbaum polarity optimisation applies: only the
"definition implies content" direction of each auxiliary variable is needed,
halving the number of clauses while preserving equisatisfiability.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple, Union

from .terms import And, BoolConst, Eq, Formula, Le, Or

Atom = Union[Le, Eq]
Clause = Tuple[int, ...]


@dataclass
class CnfResult:
    """Result of CNF conversion."""

    clauses: List[Clause] = field(default_factory=list)
    #: boolean variable index -> theory atom (only for atom variables)
    atom_of_var: Dict[int, Atom] = field(default_factory=dict)
    #: canonical atom key -> boolean variable index
    var_of_atom: Dict[Tuple, int] = field(default_factory=dict)
    num_vars: int = 0
    trivially_false: bool = False
    trivially_true: bool = False


def _atom_key(atom: Atom) -> Tuple:
    kind = "le" if isinstance(atom, Le) else "eq"
    return (kind, atom.expr.key())


def to_cnf(formula: Formula) -> CnfResult:
    """Convert an NNF formula to CNF clauses with a theory-atom mapping."""
    result = CnfResult()

    if isinstance(formula, BoolConst):
        if formula.value:
            result.trivially_true = True
        else:
            result.trivially_false = True
        return result

    def fresh_var() -> int:
        result.num_vars += 1
        return result.num_vars

    def atom_var(atom: Atom) -> int:
        key = _atom_key(atom)
        existing = result.var_of_atom.get(key)
        if existing is not None:
            return existing
        index = fresh_var()
        result.var_of_atom[key] = index
        result.atom_of_var[index] = atom
        return index

    def encode(node: Formula) -> int:
        """Return a literal representing ``node`` (positive polarity only)."""
        if isinstance(node, (Le, Eq)):
            return atom_var(node)
        if isinstance(node, BoolConst):
            aux = fresh_var()
            if node.value:
                result.clauses.append((aux,))
            else:
                result.clauses.append((-aux,))
            return aux
        if isinstance(node, And):
            aux = fresh_var()
            for arg in node.args:
                lit = encode(arg)
                result.clauses.append((-aux, lit))
            return aux
        if isinstance(node, Or):
            aux = fresh_var()
            literals = [encode(arg) for arg in node.args]
            result.clauses.append(tuple([-aux] + literals))
            return aux
        raise TypeError(f"to_cnf expects NNF input, got {node!r}")

    root = encode(formula)
    result.clauses.append((root,))
    return result
