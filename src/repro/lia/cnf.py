"""Incremental CNF conversion of NNF formulae for the DPLL(T) loop.

Atoms are numbered ``1..n``; auxiliary Tseitin variables continue the
numbering.  Because the input is in negation normal form (atoms occur only
positively), the Plaisted–Greenbaum polarity optimisation applies: only the
"definition implies content" direction of each auxiliary variable is needed,
halving the number of clauses while preserving equisatisfiability.

The conversion is *incremental* and *caching*: a :class:`CnfBuilder` keeps
the atom ↔ boolean-variable map, a structural cache of already-encoded
``And``/``Or`` sub-formulae and a clause-deduplication set alive across
:meth:`CnfBuilder.add_formula` calls.  Parikh encodings reuse the same atoms
and sub-formulae across prefixes and MBQI rounds, so later additions (e.g.
instantiation lemmas) only emit the genuinely new clauses.  The one-shot
:func:`to_cnf` helper wraps a fresh builder.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple, Union

from .terms import And, BoolConst, Eq, Formula, Le, Or

Atom = Union[Le, Eq]
Clause = Tuple[int, ...]


@dataclass
class CnfResult:
    """Result of a one-shot CNF conversion."""

    clauses: List[Clause] = field(default_factory=list)
    #: boolean variable index -> theory atom (only for atom variables)
    atom_of_var: Dict[int, Atom] = field(default_factory=dict)
    #: canonical atom key -> boolean variable index
    var_of_atom: Dict[Tuple, int] = field(default_factory=dict)
    num_vars: int = 0
    trivially_false: bool = False
    trivially_true: bool = False


def _atom_key(atom: Atom) -> Tuple:
    kind = "le" if isinstance(atom, Le) else "eq"
    return (kind, atom.expr.key())


class CnfBuilder:
    """Incremental Tseitin/Plaisted-Greenbaum clause builder.

    ``clauses`` is append-only; callers that feed a SAT solver incrementally
    remember a watermark into it and hand over only the suffix after each
    :meth:`add_formula`.
    """

    def __init__(self) -> None:
        self.num_vars = 0
        self.clauses: List[Clause] = []
        self.atom_of_var: Dict[int, Atom] = {}
        self.var_of_atom: Dict[Tuple, int] = {}
        #: structural cache: already-encoded sub-formula -> auxiliary variable
        self._aux_of_node: Dict[Formula, int] = {}
        self._clause_keys: Set[Clause] = set()
        #: statistics: structural/atom cache hits and dropped duplicate clauses
        self.cache_hits = 0
        self.duplicate_clauses = 0

    # ------------------------------------------------------------------
    def fresh_var(self) -> int:
        self.num_vars += 1
        return self.num_vars

    def atom_var(self, atom: Atom) -> int:
        """Return the boolean variable of ``atom`` (allocating it once)."""
        key = _atom_key(atom)
        existing = self.var_of_atom.get(key)
        if existing is not None:
            self.cache_hits += 1
            return existing
        index = self.fresh_var()
        self.var_of_atom[key] = index
        self.atom_of_var[index] = atom
        return index

    def _emit(self, clause: Clause) -> None:
        key = tuple(sorted(set(clause)))
        if key in self._clause_keys:
            self.duplicate_clauses += 1
            return
        self._clause_keys.add(key)
        self.clauses.append(clause)

    # ------------------------------------------------------------------
    def add_formula(self, formula: Formula) -> Optional[int]:
        """Encode an NNF formula; returns its root literal.

        Returns ``None`` for ``BoolConst(True)`` (nothing to assert) and
        raises :class:`ValueError` for ``BoolConst(False)`` — callers decide
        how a trivially false assertion interacts with their assertion stack.
        The caller must add the returned root literal as a unit clause to
        actually assert the formula; the emitted clauses by themselves are
        only the (one-sided) Tseitin definitions.
        """
        if isinstance(formula, BoolConst):
            if formula.value:
                return None
            raise ValueError("cannot encode BoolConst(False); handle it upstream")
        return self._encode(formula)

    def _encode(self, node: Formula) -> int:
        """Return a literal representing ``node`` (positive polarity only)."""
        if isinstance(node, (Le, Eq)):
            return self.atom_var(node)
        cached = self._aux_of_node.get(node)
        if cached is not None:
            self.cache_hits += 1
            return cached
        if isinstance(node, BoolConst):
            aux = self.fresh_var()
            self._emit((aux,) if node.value else (-aux,))
            return aux
        if isinstance(node, And):
            aux = self.fresh_var()
            for arg in node.args:
                literal = self._encode(arg)
                self._emit((-aux, literal))
            self._aux_of_node[node] = aux
            return aux
        if isinstance(node, Or):
            aux = self.fresh_var()
            literals = [self._encode(arg) for arg in node.args]
            self._emit(tuple([-aux] + literals))
            self._aux_of_node[node] = aux
            return aux
        raise TypeError(f"to_cnf expects NNF input, got {node!r}")


def to_cnf(formula: Formula) -> CnfResult:
    """One-shot CNF conversion (wraps a fresh :class:`CnfBuilder`)."""
    result = CnfResult()

    if isinstance(formula, BoolConst):
        if formula.value:
            result.trivially_true = True
        else:
            result.trivially_false = True
        return result

    builder = CnfBuilder()
    root = builder.add_formula(formula)
    builder._emit((root,))
    result.clauses = builder.clauses
    result.atom_of_var = builder.atom_of_var
    result.var_of_atom = builder.var_of_atom
    result.num_vars = builder.num_vars
    return result
