"""Preprocessing of LIA formulae before the DPLL(T) search.

Parikh (tag) formulae are dominated by *defining equalities*: tag counters
are sums of transition counters, most ``γ`` variables are fixed to 0, and
Kirchhoff constraints chain counters together.  Eliminating such equalities
by substitution shrinks the formula dramatically (fewer atoms, fewer
variables) and is the single most important performance lever of the solver.

The elimination is satisfiability- and model-preserving: each eliminated
variable has a definition ``v = expr`` with unit coefficient, recorded in
order so that :func:`complete_model` can recover its value from a model of
the reduced formula.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from ..budget import checkpoint
from .terms import And, BoolConst, Eq, Formula, LinExpr, conj, substitute

#: Maximum number of variables in a defining expression used for elimination;
#: larger definitions cause too much fill-in to be worth substituting.
_MAX_DEFINITION_SIZE = 24


def _isolate(expr: LinExpr, exclude: set) -> Optional[Tuple[str, LinExpr]]:
    """Find a variable with coefficient ±1 in ``expr = 0`` and solve for it."""
    for name, coeff in expr.coeffs.items():
        if name in exclude:
            continue
        if coeff in (1, -1):
            rest_coeffs = {other: c for other, c in expr.coeffs.items() if other != name}
            rest = LinExpr(rest_coeffs, expr.const)
            definition = rest * (-1) if coeff == 1 else rest
            if len(definition.coeffs) <= _MAX_DEFINITION_SIZE:
                return name, definition
    return None


def eliminate_equalities(
    formula: Formula, protected: Optional[set] = None
) -> Tuple[Formula, List[Tuple[str, LinExpr]]]:
    """Eliminate top-level defining equalities by substitution.

    ``protected`` variables are never eliminated (useful when the caller needs
    their values to appear directly in the reduced model, e.g. user-visible
    length variables).  Returns the reduced formula and the elimination order.
    """
    protected = set(protected or ())
    eliminated: List[Tuple[str, LinExpr]] = []

    if not isinstance(formula, And):
        return formula, eliminated

    conjuncts = list(formula.args)
    changed = True
    while changed:
        changed = False
        for index, conjunct in enumerate(conjuncts):
            # Each accepted substitution rewrites every other conjunct, so a
            # full elimination pass is quadratic on adversarial chains — on a
            # tight budget this is where a check must be interruptible.
            checkpoint("lia.presolve")
            if not isinstance(conjunct, Eq):
                continue
            isolated = _isolate(conjunct.expr, protected)
            if isolated is None:
                continue
            name, definition = isolated
            mapping = {name: definition}
            new_conjuncts = []
            for position, other in enumerate(conjuncts):
                if position == index:
                    continue
                checkpoint("lia.presolve")
                replaced = substitute(other, mapping)
                if isinstance(replaced, BoolConst) and replaced.value:
                    continue
                new_conjuncts.append(replaced)
            eliminated.append((name, definition))
            conjuncts = new_conjuncts
            changed = True
            break

    reduced = conj(conjuncts)
    return reduced, eliminated


def complete_model(model: Dict[str, int], eliminated: List[Tuple[str, LinExpr]]) -> Dict[str, int]:
    """Extend a model of the reduced formula with the eliminated variables.

    Definitions are evaluated in reverse elimination order (later definitions
    may mention variables eliminated earlier... they cannot, but reverse order
    is the safe direction because each definition only mentions variables
    still present when it was created).
    """
    completed = dict(model)
    for name, definition in reversed(eliminated):
        value = definition.const
        for other, coeff in definition.coeffs.items():
            value += coeff * completed.get(other, 0)
        completed[name] = int(value)
    return completed
