"""Negation normal form for quantifier-free LIA formulae.

Negations are pushed to the leaves and then *eliminated*: over the integers
``¬(e <= 0)`` becomes ``-e + 1 <= 0`` and ``¬(e = 0)`` becomes
``(e + 1 <= 0) ∨ (-e + 1 <= 0)``.  The result therefore only contains
``And`` / ``Or`` over positive :class:`~repro.lia.terms.Le` /
:class:`~repro.lia.terms.Eq` atoms, which makes the formula *monotone* in its
atoms — a property the lazy SMT loop exploits (only atoms assigned true need
to be sent to the arithmetic core).
"""

from __future__ import annotations

from .terms import (
    FALSE,
    TRUE,
    And,
    BoolConst,
    Eq,
    Formula,
    Iff,
    Implies,
    Le,
    Not,
    Or,
    conj,
    disj,
)


def to_nnf(formula: Formula, negate: bool = False) -> Formula:
    """Return an equivalent formula in negation normal form.

    ``negate=True`` computes the NNF of the negation of ``formula``.
    Quantifiers are not supported here; strip them beforehand.
    """
    if isinstance(formula, BoolConst):
        value = formula.value != negate
        return TRUE if value else FALSE

    if isinstance(formula, Le):
        if not negate:
            return formula
        # not (e <= 0)  <=>  e >= 1  <=>  -e + 1 <= 0
        return Le((-formula.expr) + 1)

    if isinstance(formula, Eq):
        if not negate:
            return formula
        # not (e = 0)  <=>  e <= -1  or  e >= 1
        return disj([Le(formula.expr + 1), Le((-formula.expr) + 1)])

    if isinstance(formula, Not):
        return to_nnf(formula.arg, not negate)

    if isinstance(formula, And):
        parts = [to_nnf(arg, negate) for arg in formula.args]
        return disj(parts) if negate else conj(parts)

    if isinstance(formula, Or):
        parts = [to_nnf(arg, negate) for arg in formula.args]
        return conj(parts) if negate else disj(parts)

    if isinstance(formula, Implies):
        rewritten = disj([to_nnf(formula.antecedent, True), to_nnf(formula.consequent, False)])
        return to_nnf(rewritten, negate) if negate else rewritten

    if isinstance(formula, Iff):
        left, right = formula.left, formula.right
        both = conj([to_nnf(left, False), to_nnf(right, False)])
        neither = conj([to_nnf(left, True), to_nnf(right, True)])
        positive = disj([both, neither])
        if not negate:
            return positive
        mixed_a = conj([to_nnf(left, False), to_nnf(right, True)])
        mixed_b = conj([to_nnf(left, True), to_nnf(right, False)])
        return disj([mixed_a, mixed_b])

    raise TypeError(f"to_nnf does not handle quantified formula {formula!r}")
