"""Satisfiability of quantifier-free LIA formulae (lazy SMT / DPLL(T)).

This is the reproduction's analogue of "Z3's internal LIA solver based on the
Simplex method extended with a branch-and-cut strategy" used by Z3-Noodler
(§8) — rebuilt around an **incremental assertion-stack API** because the
solver's dominant workload is the solve–refine loop of model-based quantifier
instantiation (§6.4): the same large formula is re-checked dozens of times
with one small lemma added per round.

Incremental architecture (what survives between :meth:`LiaSolver.check`
calls on the same assertion stack):

* the atom ↔ boolean-variable map and the Tseitin clause database
  (:class:`repro.lia.cnf.CnfBuilder` — structural caching means a new lemma
  only emits its genuinely new clauses),
* the SAT engine (:class:`repro.lia.sat.DpllSolver` — watched literals,
  variable activities and *learned theory clauses* are retained; a new
  check restarts the search, it does not restart the learning),
* the theory state: one persistent :class:`repro.lia.simplex.Simplex` whose
  rows are registered once per atom and whose bounds are asserted and
  retracted per theory check (the Dutertre–de Moura DPLL(T) discipline),
  plus the cache of known-feasible atom sets,
* the presolve substitution: defining equalities are eliminated when first
  asserted and the substitution chain is applied to every later assertion,
  so lemmas mentioning eliminated variables are rewritten instead of
  re-introducing them.

``push()`` / ``pop()`` manage assertion-stack levels: ``pop`` retracts the
root-level unit assertions, the substitutions and the trivial-verdict flags
of the popped level while keeping atom definitions and learned theory
clauses (which are level-independent consequences of the atom semantics).

The classic one-shot ``check(formula)`` entry point is preserved and runs a
fresh context per call, so existing callers keep their exact semantics.

Pipeline per assertion: :func:`repro.lia.simplify.eliminate_equalities`
(presolve) → :func:`repro.lia.nnf.to_nnf` → :class:`CnfBuilder` →
:class:`DpllSolver` with the rational-simplex / branch-and-bound theory hook
(:mod:`repro.lia.intsolver`).  All variables are interpreted over the
integers.  Results are reported as :class:`LiaStatus` (``SAT`` / ``UNSAT`` /
``UNKNOWN``); the model accompanying a ``SAT`` verdict assigns an integer to
every free variable of the asserted formulae.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from ..budget import Budget, BudgetExceeded
from .cnf import CnfBuilder
from .intsolver import (
    ResourceLimit,
    _eliminate_equalities_over_z,
    _flatten_tags,
    check_integer_feasibility,
    check_rational_feasibility,
)
from .nnf import to_nnf
from .sat import DpllSolver
from .simplify import complete_model, eliminate_equalities
from .simplex import Constraint, Simplex
from .terms import BoolConst, Formula, Le, LinExpr, conj, evaluate, substitute


class LiaStatus(Enum):
    """Verdict of a satisfiability check."""

    SAT = "sat"
    UNSAT = "unsat"
    UNKNOWN = "unknown"


@dataclass
class LiaModel:
    """An integer model; unknown variables default to 0."""

    values: Dict[str, int] = field(default_factory=dict)

    def __getitem__(self, name: str) -> int:
        return self.values.get(name, 0)

    def get(self, name: str, default: int = 0) -> int:
        return self.values.get(name, default)

    def as_dict(self) -> Dict[str, int]:
        return dict(self.values)


@dataclass
class LiaResult:
    """Status plus (for SAT) a model and basic statistics."""

    status: LiaStatus
    model: Optional[LiaModel] = None
    decisions: int = 0
    theory_checks: int = 0
    reason: str = ""
    #: per-check performance counters (propagations, pivots, cache hits, ...)
    stats: Dict[str, int] = field(default_factory=dict)
    #: variables of atoms that participated in theory conflicts during the
    #: check (mapped back through the presolve elimination chain).  For an
    #: ``UNSAT`` verdict this over-approximates the variables a refutation
    #: touched; string-solver callers use it to narrow unsat cores before
    #: deletion testing.  Empty when no theory conflict was recorded (e.g. a
    #: purely boolean refutation), in which case callers must fall back to
    #: the full assertion set.
    conflict_vars: FrozenSet[str] = frozenset()
    #: labels of the ``check(assumptions=…)`` entries that final-conflict
    #: analysis blamed for an ``UNSAT`` verdict.  Unlike ``conflict_vars``
    #: this is *exact*: an assumption outside the set is guaranteed not to
    #: be needed for the refutation.  Empty when the asserted stack is
    #: unsatisfiable on its own (no assumption required), and meaningless
    #: for non-UNSAT verdicts.
    core_labels: Tuple = ()

    @property
    def is_sat(self) -> bool:
        return self.status is LiaStatus.SAT

    @property
    def is_unsat(self) -> bool:
        return self.status is LiaStatus.UNSAT


@dataclass
class LiaConfig:
    """Tunable limits of the LIA solver."""

    #: check the rational relaxation at every decision level (early pruning)
    partial_theory_checks: bool = True
    #: budget of branch-and-bound nodes per integer feasibility check
    branch_and_bound_nodes: int = 4000
    #: rounds of Gomory mixed-integer cuts per branch-and-bound node; cuts
    #: are what refute pure-inequality divisibility conflicts (e.g. the
    #: ``(abc)*`` commuting disequalities) that branch-and-bound diverges on
    gomory_cut_rounds: int = 10
    #: total Gomory cuts per integer feasibility check (0 disables cuts)
    max_gomory_cuts: int = 200
    #: run the Omega-test elimination pre-pass on small reduced systems
    #: (sound refutations from projected divisibility conflicts, and integer
    #: models by back-substitution when every elimination step is exact)
    omega_elimination: bool = True
    #: budget of boolean conflicts
    max_conflicts: int = 100000
    #: optional wall-clock limit in seconds
    timeout: Optional[float] = None
    #: eliminate defining equalities before the search (major speed-up on
    #: Parikh formulae; the model of the original formula is reconstructed)
    presolve: bool = True
    #: size of the cache of known-feasible atom sets used to skip redundant
    #: rational relaxation checks
    feasible_cache_size: int = 32
    #: run the (expensive) partial rational check only every N-th opportunity;
    #: completeness is unaffected because complete assignments are always
    #: checked with the full integer procedure.  1 = check at every decision
    #: level (strong pruning, the default); larger values trade pruning for
    #: fewer simplex calls.
    partial_check_period: int = 1


@dataclass
class _Level:
    """One assertion-stack frame of the incremental context."""

    units: List[int] = field(default_factory=list)
    eliminated_mark: int = 0
    var_mark: int = 0
    false: bool = False
    #: variables of the assertion batch that collapsed to ``false`` (the
    #: presolve cannot attribute the collapse to one formula of the batch,
    #: so this over-approximates at batch granularity)
    false_vars: FrozenSet[str] = frozenset()
    unsupported: str = ""
    #: canonical keys of theory clauses strengthened with root-forced atoms
    #: of this level (retracted on pop — see ``_Context._strengthen_core``)
    strengthened: List[Tuple[int, ...]] = field(default_factory=list)


class _Context:
    """The persistent state behind one assertion stack."""

    def __init__(self, config: LiaConfig) -> None:
        self.config = config
        self.cnf = CnfBuilder()
        self.theory_atoms: Set[int] = set()
        self.sat = DpllSolver(
            num_vars=0,
            clauses=(),
            theory_atoms=self.theory_atoms,
            theory_callback=self._theory_callback,
            max_conflicts=config.max_conflicts,
        )
        self.theory = Simplex()
        #: atom boolean variable -> (simplex variable, relation, bound)
        self._atom_handle: Dict[int, Tuple[str, str, object]] = {}
        #: atom boolean variable -> reusable Constraint (for integer checks)
        self._atom_constraint: Dict[int, Constraint] = {}
        self._clause_watermark = 0

        self.levels: List[_Level] = [_Level()]
        self.pending: List[Formula] = []
        self.eliminated: List[Tuple[str, LinExpr]] = []
        self._encoded_vars: Set[str] = set()
        self._var_list: List[str] = []
        self._var_set: Set[str] = set()

        self._feasible_sets: List[frozenset] = []
        self._partial_calls = 0
        self._gave_up = False
        #: integer-sensitive instance detected (a complete assignment was
        #: rationally feasible yet integer-infeasible): partial checks then
        #: additionally run the equality-elimination parity pass, which is
        #: what refutes gcd/divisibility conflicts long before the search
        #: completes an assignment
        self._int_prune = False
        #: active resource budget for the current ``check`` (shared with the
        #: SAT search and the integer core; ``None`` outside a check)
        self._budget: Optional[Budget] = None
        self._last_model: Dict[str, int] = {}
        self._int_pivots = 0
        self._cache_hits = 0
        #: boolean atom variables that appeared in theory conflict cores of
        #: the current ``check`` (reset per check, surfaced as
        #: ``LiaResult.conflict_vars``)
        self._conflict_participants: Set[int] = set()

    # ------------------------------------------------------------------
    # Assertion stack
    # ------------------------------------------------------------------
    def push(self) -> None:
        self._flush()
        self.levels.append(
            _Level(eliminated_mark=len(self.eliminated), var_mark=len(self._var_list))
        )

    def pop(self) -> None:
        if len(self.levels) == 1:
            raise IndexError("pop from the base assertion level")
        level = self.levels.pop()
        self.pending.clear()
        for literal in level.units:
            self.sat.remove_unit(literal)
        for key in level.strengthened:
            self.sat.retract_clause_key(key)
        del self.eliminated[level.eliminated_mark :]
        for name in self._var_list[level.var_mark :]:
            self._var_set.discard(name)
        del self._var_list[level.var_mark :]

    def add_assertion(self, formula: Formula) -> None:
        self.pending.append(formula)

    # ------------------------------------------------------------------
    # Encoding
    # ------------------------------------------------------------------
    def _apply_subst(self, formula: Formula) -> Formula:
        """Rewrite eliminated variables away (in elimination order)."""
        if not self.eliminated:
            return formula
        names = set(formula.variables())
        for name, definition in self.eliminated:
            if name in names:
                formula = substitute(formula, {name: definition})
                names.discard(name)
                names.update(definition.coeffs)
        return formula

    def _flush(self) -> None:
        """Encode the pending assertions of the current level."""
        if not self.pending:
            return
        level = self.levels[-1]
        batch_vars: Set[str] = set()
        for formula in self.pending:
            for name in formula.variables():
                batch_vars.add(name)
                if name not in self._var_set:
                    self._var_set.add(name)
                    self._var_list.append(name)
        combined = conj([self._apply_subst(formula) for formula in self.pending])

        if self.config.presolve and not isinstance(combined, BoolConst):
            # The elimination loop checkpoints against the ambient budget and
            # may abort; keep the flush transactional by clearing the pending
            # queue only once the fallible presolve work is behind us.
            combined, eliminated = eliminate_equalities(
                combined, protected=self._encoded_vars
            )
            self.eliminated.extend(eliminated)
        self.pending.clear()

        if isinstance(combined, BoolConst):
            if not combined.value:
                level.false = True
                level.false_vars = level.false_vars | batch_vars
            return

        try:
            nnf = to_nnf(combined)
        except TypeError as error:
            level.unsupported = f"unsupported formula: {error}"
            return
        if isinstance(nnf, BoolConst):
            if not nnf.value:
                level.false = True
                level.false_vars = level.false_vars | batch_vars
            return

        self._encoded_vars.update(combined.variables())
        root = self.cnf.add_formula(nnf)
        self._sync_sat()
        if root is not None and self.sat.add_clause((root,)):
            level.units.append(root)

    def _sync_sat(self) -> None:
        """Hand new clauses and atoms over to the SAT engine and the theory."""
        self.sat.ensure_vars(self.cnf.num_vars)
        clauses = self.cnf.clauses
        while self._clause_watermark < len(clauses):
            self.sat.add_clause(clauses[self._clause_watermark])
            self._clause_watermark += 1
        for var, atom in self.cnf.atom_of_var.items():
            if var in self._atom_handle:
                continue
            relation = "<=" if isinstance(atom, Le) else "=="
            constraint = Constraint(atom.expr, relation, tag=var)
            self._atom_constraint[var] = constraint
            self._atom_handle[var] = self.theory.prepare(constraint)
            self.theory_atoms.add(var)

    # ------------------------------------------------------------------
    # Theory hook
    # ------------------------------------------------------------------
    def _theory_callback(self, true_atoms: Set[int], final: bool):
        if self._budget is not None:
            self._budget.checkpoint("lia.theory")
        if not final:
            if not self.config.partial_theory_checks or not true_atoms:
                return None
            # Rational feasibility is monotone: a subset of a feasible set
            # of atoms is feasible, so cached supersets let us skip checks.
            if any(true_atoms <= cached for cached in self._feasible_sets):
                self._cache_hits += 1
                return None
            self._partial_calls += 1
            if self.config.partial_check_period > 1 and (
                self._partial_calls % self.config.partial_check_period
            ):
                return None
            self.theory.push()
            try:
                for var in true_atoms:
                    name, relation, value = self._atom_handle[var]
                    self.theory.assert_bound(name, relation, value, var)
                result = self.theory.check(want_model=False)
            finally:
                self.theory.pop()
            if result.feasible:
                if self._int_prune:
                    reduced, _defs, tags = _eliminate_equalities_over_z(
                        [self._atom_constraint[var] for var in sorted(true_atoms)]
                    )
                    if reduced is None:
                        conflict_vars = {
                            tag for tag in _flatten_tags(tags) if isinstance(tag, int)
                        } or set(true_atoms)
                        conflict_vars = self._minimize_core(conflict_vars)
                        # Record before strengthening: root-forced atoms are
                        # dropped from the learned clause but still belong to
                        # the refutation.
                        self._conflict_participants |= conflict_vars
                        self.sat.pending_conflict_participants = frozenset(conflict_vars)
                        conflict_vars = self._strengthen_core(conflict_vars)
                        return tuple(-var for var in sorted(conflict_vars))
                self._feasible_sets.append(frozenset(true_atoms))
                if len(self._feasible_sets) > self.config.feasible_cache_size:
                    self._feasible_sets.pop(0)
                return None
            conflict_vars = {tag for tag in result.conflict if isinstance(tag, int)}
            if not conflict_vars:
                conflict_vars = set(true_atoms)
            conflict_vars = self._minimize_core(conflict_vars)
            self._conflict_participants |= conflict_vars
            self.sat.pending_conflict_participants = frozenset(conflict_vars)
            conflict_vars = self._strengthen_core(conflict_vars)
            return tuple(-var for var in sorted(conflict_vars))

        constraints = [self._atom_constraint[var] for var in sorted(true_atoms)]
        try:
            outcome = check_integer_feasibility(
                constraints,
                integer_vars=None,
                max_nodes=self.config.branch_and_bound_nodes,
                budget=self._budget,
                cut_rounds=self.config.gomory_cut_rounds,
                max_cuts=self.config.max_gomory_cuts,
                omega=self.config.omega_elimination,
            )
        except ResourceLimit:
            # Branch-and-bound could not decide this boolean assignment.
            # Block it and remember that an UNSAT verdict is no longer
            # trustworthy (results become UNKNOWN from here on).
            self._gave_up = True
            if not true_atoms:
                return tuple()
            return tuple(-var for var in sorted(true_atoms))
        self._int_pivots += outcome.pivots
        if outcome.feasible:
            self._last_model = outcome.model or {}
            return None
        if not self._int_prune:
            # The complete assignment passed every rational check yet is
            # integer-infeasible: enable parity pruning at partial level,
            # drop the (rational-only) feasibility cache and flip the SAT
            # decision phase so future complete assignments assert as few
            # atoms as possible.
            self._int_prune = True
            self._feasible_sets.clear()
            self.sat.negative_atom_phase = True
            # Restarting (with all learned clauses kept) lets the new phase
            # take effect from the root instead of only below the current
            # decision prefix.
            self.sat.request_restart = True
        conflict_vars = {tag for tag in (outcome.conflict or set()) if isinstance(tag, int)}
        if not conflict_vars:
            conflict_vars = set(true_atoms)
        if not conflict_vars:
            # No true atoms at all yet the theory failed — cannot happen,
            # but guard against an empty (always-false) clause.
            return tuple()
        conflict_vars = self._minimize_core(conflict_vars)
        self._conflict_participants |= conflict_vars
        self.sat.pending_conflict_participants = frozenset(conflict_vars)
        conflict_vars = self._strengthen_core(conflict_vars)
        return tuple(-var for var in sorted(conflict_vars))

    def _strengthen_core(self, core: Set[int]) -> Set[int]:
        """Drop atoms from a conflict core that are forced true at the root.

        Tag-automaton encodings force a large share of their atoms (Kirchhoff
        flow equalities, fixed counters) through unit propagation alone, and
        such atoms bloat every theory conflict: a learned clause
        ``¬a ∨ ¬b`` with ``a`` root-forced is equivalent to ``¬b`` under the
        current assertions, but prunes exponentially less of the boolean
        search space.  The strengthened clause is only valid while the units
        that force those atoms are asserted, so when the current level is not
        the base level its canonical key is recorded for retraction on
        ``pop``.  An empty result means the root-forced atoms themselves are
        theory-inconsistent: the callback then returns the empty clause and
        the check correctly reports UNSAT for the current stack.
        """
        if not core:
            return core
        forced: Set[int] = set()
        for literal in self.sat.root_literals():
            if literal > 0 and literal in core:
                forced.add(literal)
        if not forced:
            return core
        strengthened = core - forced
        if len(self.levels) > 1:
            key = tuple(sorted(-var for var in strengthened))
            self.levels[-1].strengthened.append(key)
        return strengthened

    def _restrict_to_component(self, core: Set[int]) -> Set[int]:
        """Restrict a conflict core to one variable-connected component.

        A conjunction of constraint systems over disjoint variables is
        infeasible iff one of the systems is, so a core spanning several
        components carries pure noise (this happens when the elimination
        pre-pass unions tags across the whole assignment, or when a core is
        too large for deletion minimisation).  Each component is tested for
        infeasibility on its own — rationally first, then with a tightly
        budgeted branch-and-cut — and the first refuted one replaces the
        core.  When no component can be refuted within the budget the full
        core is kept (conservative, still sound).
        """
        atoms = sorted(core)
        component_of: Dict[str, int] = {}
        components: Dict[int, List[int]] = {}
        for atom in atoms:
            names = list(self._atom_constraint[atom].expr.coeffs)
            targets = sorted({component_of[n] for n in names if n in component_of})
            if not targets:
                component = atom
                components[component] = []
            else:
                component = targets[0]
                for other in targets[1:]:
                    for moved in components.pop(other):
                        components[component].append(moved)
                    for name, where in list(component_of.items()):
                        if where == other:
                            component_of[name] = component
            components[component].append(atom)
            for name in names:
                component_of[name] = component
        if len(components) <= 1:
            return core
        for key in sorted(components):
            member_atoms = components[key]
            constraints = [self._atom_constraint[a] for a in member_atoms]
            outcome = check_rational_feasibility(constraints)
            if not outcome.feasible:
                return set(member_atoms)
            if len(member_atoms) > 48:
                continue
            try:
                integral = check_integer_feasibility(
                    constraints,
                    max_nodes=60,
                    budget=self._budget,
                    cut_rounds=self.config.gomory_cut_rounds,
                    max_cuts=min(64, self.config.max_gomory_cuts),
                    omega=self.config.omega_elimination,
                )
            except ResourceLimit:
                continue
            if not integral.feasible:
                return set(member_atoms)
        return core

    def _minimize_core(self, core: Set[int]) -> Set[int]:
        """Greedily shrink a conflict core by deletion testing.

        A learned theory clause is exponentially more useful the fewer
        literals it has, and the cores reported by the warm-started simplex
        (whose tableau rows are arbitrary accumulated linear combinations)
        are sound but rarely minimal.  The core is first restricted to one
        variable-connected component; each remaining candidate atom is then
        dropped when the rest is still rationally infeasible on a fresh,
        small simplex; integer-only cores pass through unchanged (every
        rational test is feasible, so nothing is dropped).  The result is
        always a subset of ``core`` and still jointly infeasible, so the
        learned clause stays sound.
        """
        if len(core) <= 2:
            return core
        core = self._restrict_to_component(core)
        if len(core) <= 2 or len(core) > 64:
            return core
        atoms = sorted(core)
        refutation = check_rational_feasibility(
            [self._atom_constraint[var] for var in atoms]
        )
        if not refutation.feasible:
            # Rationally refutable: the refutation's own conflict narrows the
            # core for free; greedy deletion tests then polish, re-using each
            # failed test's conflict to jump over several atoms at once.  The
            # test budget keeps minimisation from dominating easy instances.
            narrowed = {tag for tag in refutation.conflict if isinstance(tag, int)}
            if narrowed and len(narrowed) < len(atoms):
                atoms = sorted(narrowed)

            def rational_test(rest):
                outcome = check_rational_feasibility(rest)
                return None if outcome.feasible else outcome.conflict

            return self._deletion_filter(atoms, rational_test, budget=12)
        # Integer-only conflict (divisibility/parity): deletion-test with a
        # tightly budgeted branch-and-cut check — Gomory cuts refute these
        # cores in a handful of pivots where plain branch-and-bound
        # deletion tests diverge.  A subset the budget cannot refute keeps
        # its atom (conservative), so the result stays a sound core.
        if len(atoms) > 24:
            return set(atoms)

        def integer_test(rest):
            try:
                outcome = check_integer_feasibility(
                    rest,
                    max_nodes=50,
                    budget=self._budget,
                    cut_rounds=self.config.gomory_cut_rounds,
                    max_cuts=min(64, self.config.max_gomory_cuts),
                    omega=self.config.omega_elimination,
                )
            except ResourceLimit:
                return None  # budget exhausted: conservatively keep the atom
            return None if outcome.feasible else (outcome.conflict or set())

        return self._deletion_filter(atoms, integer_test, budget=16)

    def _deletion_filter(self, atoms: List[int], test, budget: int) -> Set[int]:
        """Greedy deletion testing shared by both core-minimisation modes.

        ``test`` receives the constraints of a candidate subset and returns
        ``None`` when it cannot refute them (the dropped atom is kept) or a
        conflict tag set, which — when strictly smaller — re-narrows the
        whole core at once.
        """
        position = 0
        # repro: allow(checkpoint-coverage): iterations are capped by the shrink budget parameter, and every test() call is a fully checkpointed theory check
        while position < len(atoms) and budget > 0 and len(atoms) > 2:
            var = atoms[position]
            rest = [self._atom_constraint[other] for other in atoms if other != var]
            budget -= 1
            conflict = test(rest)
            if conflict is None:
                position += 1
                continue
            shrunk = {tag for tag in conflict if isinstance(tag, int)}
            if shrunk and len(shrunk) < len(atoms) - 1:
                atoms = sorted(shrunk)
                position = 0
            else:
                atoms.remove(var)
        return set(atoms)

    # ------------------------------------------------------------------
    # Checking
    # ------------------------------------------------------------------
    def _stats_snapshot(self) -> Dict[str, int]:
        sat = self.sat.stats
        return {
            "decisions": sat.decisions,
            "propagations": sat.propagations,
            "conflicts": sat.conflicts,
            "theory_checks": sat.theory_checks,
            "learned_clauses": sat.learned_clauses,
            "restarts": sat.restarts,
            "backjump_levels": sat.backjump_levels,
            "deleted_clauses": sat.deleted_clauses,
            "minimized_literals": sat.minimized_literals,
            "pivots": self.theory.pivots + self._int_pivots,
            "cache_hits": self._cache_hits + self.cnf.cache_hits,
            "duplicate_clauses": sat.duplicate_clauses + self.cnf.duplicate_clauses,
        }

    def _participant_names(self) -> FrozenSet[str]:
        """Variable names touched by this check's refutation.

        Prefers the SAT engine's proof-tracked support (the theory atoms
        the *final* conflict derivation transitively used) and falls back
        to the per-check accumulation of every theory conflict when the
        tracking overflowed.  The conflict atoms live in the substituted
        (post-presolve) variable space; the elimination chain is walked
        backwards so that an original assertion mentioning an eliminated
        variable is reconnected to the conflicts its definition
        participated in.
        """
        participants = self.sat.final_participants
        if participants is None:
            participants = self._conflict_participants
        names: Set[str] = set()
        for var in participants:
            atom = self.cnf.atom_of_var.get(var)
            if atom is not None:
                names.update(atom.expr.coeffs)
        for name, definition in reversed(self.eliminated):
            if name in names or names.intersection(definition.coeffs):
                names.add(name)
                names.update(definition.coeffs)
        return frozenset(names)

    def _encode_assumptions(
        self, assumptions: Sequence[Tuple[object, Formula]]
    ) -> Tuple[List[int], Dict[int, List[object]], Optional[object], str]:
        """Encode labelled assumption formulae as SAT assumption literals.

        Assumption formulae are rewritten through the current elimination
        chain but are *not* presolved (an elimination justified by a mere
        assumption would leak into later checks).  Each formula's root
        literal doubles as its assumption literal — asserting the root is
        asserting the formula under Plaisted–Greenbaum — so no guard
        variables are needed and failed-assumption analysis maps straight
        back to the labels.  Returns ``(literals, labels-per-literal,
        trivially-false-label, unsupported-reason)``.
        """
        literals: List[int] = []
        label_of: Dict[int, List[object]] = {}
        for label, formula in assumptions:
            rewritten = self._apply_subst(formula)
            try:
                nnf = to_nnf(rewritten)
            except TypeError as error:
                # Silently ignoring the assumption would answer as if it
                # were absent — a wrong SAT; report UNKNOWN like the
                # assertion path does.
                return [], {}, None, f"unsupported assumption formula: {error}"
            if isinstance(nnf, BoolConst):
                if nnf.value:
                    continue
                return [], {}, label, ""
            root = self.cnf.add_formula(nnf)
            self._sync_sat()
            if root is None:
                continue
            if root not in label_of:
                literals.append(root)
            label_of.setdefault(root, []).append(label)
        return literals, label_of, None, ""

    def check(
        self,
        deadline: Optional[float] = None,
        assumptions: Sequence[Tuple[object, Formula]] = (),
        budget: Optional[Budget] = None,
    ) -> LiaResult:
        # A caller-passed budget is *shared*: exceeding it must propagate as
        # BudgetExceeded so the owner (e.g. the string pipeline) sees one
        # consistent verdict.  An owned budget (built here from the legacy
        # ``deadline`` or ``config.timeout``) keeps the historical contract:
        # running out of time is an UNKNOWN result, not an exception.
        owned = budget is None
        if owned:
            if deadline is not None:
                budget = Budget(deadline=deadline)
            else:
                budget = Budget(self.config.timeout)
        before = self._stats_snapshot()

        def result(
            status: LiaStatus,
            model: Optional[LiaModel] = None,
            reason: str = "",
            conflict_vars: FrozenSet[str] = frozenset(),
            core_labels: Tuple = (),
        ) -> LiaResult:
            after = self._stats_snapshot()
            stats = {key: after[key] - before[key] for key in after}
            return LiaResult(
                status,
                model=model,
                decisions=stats["decisions"],
                theory_checks=stats["theory_checks"],
                reason=reason,
                stats=stats,
                conflict_vars=conflict_vars,
                core_labels=core_labels,
            )

        # The budget governs the whole check — including the presolve in
        # ``_flush``, whose substitution loop checkpoints against the
        # *ambient* budget, hence the ``activate()``.  An owned budget maps
        # exhaustion anywhere in the body to an UNKNOWN result.
        self._budget = budget
        self._conflict_participants = set()
        try:
            with budget.activate():
                return self._check_budgeted(budget, assumptions, result)
        except BudgetExceeded as limit:
            if not owned:
                raise
            return result(LiaStatus.UNKNOWN, reason=str(limit.reason))
        finally:
            self._budget = None

    def _check_budgeted(self, budget: Budget, assumptions, result) -> LiaResult:
        self._flush()
        false_vars: Set[str] = set()
        for level in self.levels:
            if level.false:
                false_vars.update(level.false_vars)
        if false_vars or any(level.false for level in self.levels):
            return result(LiaStatus.UNSAT, conflict_vars=frozenset(false_vars))
        for level in self.levels:
            if level.unsupported:
                return result(LiaStatus.UNKNOWN, reason=level.unsupported)

        assumption_lits, label_of, false_label, unsupported = self._encode_assumptions(
            assumptions
        )
        if unsupported:
            return result(LiaStatus.UNKNOWN, reason=unsupported)
        if false_label is not None:
            return result(LiaStatus.UNSAT, core_labels=(false_label,))

        try:
            verdict, _boolean_model = self.sat.solve(
                budget=budget,
                max_conflicts=self.config.max_conflicts,
                assumptions=assumption_lits,
            )
        except ResourceLimit as error:
            return result(LiaStatus.UNKNOWN, reason=str(error))

        if verdict == "unsat":
            if self._gave_up:
                return result(
                    LiaStatus.UNKNOWN,
                    reason="branch-and-bound budget exhausted on some boolean assignment",
                )
            failed = self.sat.failed_assumptions
            core_labels = tuple(
                label
                for literal in assumption_lits
                if literal in failed
                for label in label_of[literal]
            )
            return result(
                LiaStatus.UNSAT,
                conflict_vars=self._participant_names(),
                core_labels=core_labels,
            )

        model = LiaModel(dict(self._last_model))
        model.values = complete_model(model.values, self.eliminated)
        for name in self._var_set:
            model.values.setdefault(name, 0)
        return result(LiaStatus.SAT, model=model)


class LiaSolver:
    """Facade deciding quantifier-free LIA formulae over integer variables.

    Two usage styles are supported:

    * **one-shot** — ``LiaSolver().check(formula)`` decides a single formula
      (a fresh context per call, the historical behaviour), and
    * **incremental** — ``add_assertion`` / ``push`` / ``pop`` maintain an
      assertion stack; ``check()`` decides the conjunction of every active
      assertion while keeping the encoder, SAT engine and theory state warm
      across calls (see the module docstring).

    ``check(formula)`` on a solver that already holds assertions is a scoped
    convenience: the formula is checked together with the current stack
    inside an implicit ``push``/``pop``.
    """

    def __init__(self, config: Optional[LiaConfig] = None) -> None:
        self.config = config or LiaConfig()
        self._ctx: Optional[_Context] = None

    # ------------------------------------------------------------------
    def _context(self) -> _Context:
        if self._ctx is None:
            self._ctx = _Context(self.config)
        return self._ctx

    def push(self) -> None:
        """Open a new assertion-stack level."""
        self._context().push()

    def pop(self) -> None:
        """Drop the most recent assertion-stack level."""
        self._context().pop()

    def add_assertion(self, formula: Formula) -> None:
        """Assert ``formula`` at the current level (encoded lazily on check)."""
        self._context().add_assertion(formula)

    def reset(self) -> None:
        """Drop the whole assertion stack and every cached solver state."""
        self._ctx = None

    # ------------------------------------------------------------------
    def check(
        self,
        formula: Optional[Formula] = None,
        deadline: Optional[float] = None,
        assumptions: Sequence[Tuple[object, Formula]] = (),
        budget: Optional[Budget] = None,
    ) -> LiaResult:
        """Decide satisfiability of the assertion stack (plus ``formula``).

        ``deadline`` (an absolute :func:`time.monotonic` value) takes
        precedence over ``config.timeout``; a caller-passed ``budget``
        supersedes both, and exceeding it raises
        :class:`repro.budget.BudgetExceeded` instead of answering
        ``UNKNOWN`` (the budget's owner reports the verdict).
        ``assumptions`` is a sequence of ``(label, formula)`` pairs that
        hold for *this check only*: on an ``UNSAT`` answer,
        :attr:`LiaResult.core_labels` names exactly the assumptions the
        refutation needed (final-conflict analysis over their assumption
        literals — no deletion-test re-solving).
        """
        if formula is not None:
            if self._ctx is None and not assumptions:
                context = _Context(self.config)
                context.add_assertion(formula)
                return context.check(deadline, budget=budget)
            context = self._context()
            context.push()
            context.add_assertion(formula)
            try:
                return context.check(deadline, assumptions=assumptions, budget=budget)
            finally:
                context.pop()
        return self._context().check(deadline, assumptions=assumptions, budget=budget)


def is_satisfiable(formula: Formula, config: Optional[LiaConfig] = None) -> bool:
    """Convenience helper: ``True`` iff ``formula`` is satisfiable.

    Raises :class:`RuntimeError` when the solver cannot decide the formula
    within its budget (so callers never mistake ``UNKNOWN`` for a verdict).
    """
    result = LiaSolver(config).check(formula)
    if result.status is LiaStatus.UNKNOWN:
        raise RuntimeError(f"LIA solver returned unknown: {result.reason}")
    return result.is_sat


def check_model(formula: Formula, model: LiaModel) -> bool:
    """Evaluate ``formula`` under ``model`` (missing variables default to 0)."""
    assignment = {name: model.get(name, 0) for name in formula.variables()}
    return evaluate(formula, assignment)
