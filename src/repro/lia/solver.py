"""Satisfiability of quantifier-free LIA formulae (lazy SMT / DPLL(T)).

This is the reproduction's analogue of "Z3's internal LIA solver based on the
Simplex method extended with a branch-and-cut strategy" used by Z3-Noodler
(§8).  The pipeline is:

1. :func:`repro.lia.nnf.to_nnf` — negations are eliminated, the formula
   becomes monotone in its atoms,
2. :func:`repro.lia.cnf.to_cnf` — Tseitin/Plaisted-Greenbaum clauses,
3. :class:`repro.lia.sat.DpllSolver` — boolean search with a theory hook,
4. theory hook — rational simplex for pruning, branch-and-bound integer
   feasibility on complete assignments (:mod:`repro.lia.intsolver`).

All variables are interpreted over the integers.  Results are reported as
:class:`LiaStatus` (``SAT`` / ``UNSAT`` / ``UNKNOWN``); the model accompanying
a ``SAT`` verdict assigns an integer to every free variable of the formula.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, Optional, Sequence, Set, Tuple

from .cnf import to_cnf
from .intsolver import ResourceLimit, check_integer_feasibility, check_rational_feasibility
from .nnf import to_nnf
from .sat import DpllSolver
from .simplify import complete_model, eliminate_equalities
from .simplex import Constraint
from .terms import Eq, Formula, Le, evaluate


class LiaStatus(Enum):
    """Verdict of a satisfiability check."""

    SAT = "sat"
    UNSAT = "unsat"
    UNKNOWN = "unknown"


@dataclass
class LiaModel:
    """An integer model; unknown variables default to 0."""

    values: Dict[str, int] = field(default_factory=dict)

    def __getitem__(self, name: str) -> int:
        return self.values.get(name, 0)

    def get(self, name: str, default: int = 0) -> int:
        return self.values.get(name, default)

    def as_dict(self) -> Dict[str, int]:
        return dict(self.values)


@dataclass
class LiaResult:
    """Status plus (for SAT) a model and basic statistics."""

    status: LiaStatus
    model: Optional[LiaModel] = None
    decisions: int = 0
    theory_checks: int = 0
    reason: str = ""

    @property
    def is_sat(self) -> bool:
        return self.status is LiaStatus.SAT

    @property
    def is_unsat(self) -> bool:
        return self.status is LiaStatus.UNSAT


@dataclass
class LiaConfig:
    """Tunable limits of the LIA solver."""

    #: check the rational relaxation at every decision level (early pruning)
    partial_theory_checks: bool = True
    #: budget of branch-and-bound nodes per integer feasibility check
    branch_and_bound_nodes: int = 4000
    #: budget of boolean conflicts
    max_conflicts: int = 100000
    #: optional wall-clock limit in seconds
    timeout: Optional[float] = None
    #: eliminate defining equalities before the search (major speed-up on
    #: Parikh formulae; the model of the original formula is reconstructed)
    presolve: bool = True
    #: size of the cache of known-feasible atom sets used to skip redundant
    #: rational relaxation checks
    feasible_cache_size: int = 32
    #: run the (expensive) partial rational check only every N-th opportunity;
    #: completeness is unaffected because complete assignments are always
    #: checked with the full integer procedure.  1 = check at every decision
    #: level (strong pruning, the default); larger values trade pruning for
    #: fewer simplex calls.
    partial_check_period: int = 1


class LiaSolver:
    """Facade deciding quantifier-free LIA formulae over integer variables."""

    def __init__(self, config: Optional[LiaConfig] = None) -> None:
        self.config = config or LiaConfig()

    # ------------------------------------------------------------------
    def check(self, formula: Formula, deadline: Optional[float] = None) -> LiaResult:
        """Decide satisfiability of ``formula``.

        ``deadline`` (an absolute :func:`time.monotonic` value) takes
        precedence over ``config.timeout``.
        """
        if deadline is None and self.config.timeout is not None:
            deadline = time.monotonic() + self.config.timeout

        eliminated = []
        working = formula
        if self.config.presolve:
            working, eliminated = eliminate_equalities(working)

        try:
            nnf = to_nnf(working)
        except TypeError as error:
            return LiaResult(LiaStatus.UNKNOWN, reason=f"unsupported formula: {error}")

        cnf = to_cnf(nnf)
        if cnf.trivially_true:
            model = LiaModel()
            model.values = complete_model(model.values, eliminated)
            for name in formula.variables():
                model.values.setdefault(name, 0)
            return LiaResult(LiaStatus.SAT, model=model)
        if cnf.trivially_false:
            return LiaResult(LiaStatus.UNSAT)

        atom_vars = set(cnf.atom_of_var)
        last_model: Dict[str, int] = {}
        feasible_sets: list = []
        gave_up = [False]
        partial_calls = [0]

        def atoms_to_constraints(true_atoms: Set[int]) -> Sequence[Constraint]:
            constraints = []
            for var in true_atoms:
                atom = cnf.atom_of_var[var]
                relation = "<=" if isinstance(atom, Le) else "=="
                constraints.append(Constraint(atom.expr, relation, tag=var))
            return constraints

        def theory_callback(true_atoms: Set[int], final: bool):
            nonlocal last_model
            if deadline is not None and time.monotonic() > deadline:
                raise ResourceLimit("LIA solving exceeded the time budget")
            if not final:
                if not self.config.partial_theory_checks or not true_atoms:
                    return None
                # Rational feasibility is monotone: a subset of a feasible set
                # of atoms is feasible, so cached supersets let us skip checks.
                if any(true_atoms <= cached for cached in feasible_sets):
                    return None
                partial_calls[0] += 1
                if self.config.partial_check_period > 1 and (
                    partial_calls[0] % self.config.partial_check_period
                ):
                    return None
                result = check_rational_feasibility(atoms_to_constraints(true_atoms))
                if result.feasible:
                    frozen = frozenset(true_atoms)
                    feasible_sets.append(frozen)
                    if len(feasible_sets) > self.config.feasible_cache_size:
                        feasible_sets.pop(0)
                    return None
                conflict_vars = {tag for tag in result.conflict if isinstance(tag, int)}
                if not conflict_vars:
                    conflict_vars = set(true_atoms)
                return tuple(-var for var in sorted(conflict_vars))

            constraints = atoms_to_constraints(true_atoms)
            try:
                outcome = check_integer_feasibility(
                    constraints,
                    integer_vars=None,
                    max_nodes=self.config.branch_and_bound_nodes,
                    deadline=deadline,
                )
            except ResourceLimit:
                if deadline is not None and time.monotonic() > deadline:
                    raise
                # Branch-and-bound could not decide this boolean assignment.
                # Block it and remember that an UNSAT verdict is no longer
                # trustworthy (the final result becomes UNKNOWN in that case).
                gave_up[0] = True
                if not true_atoms:
                    return tuple()
                return tuple(-var for var in sorted(true_atoms))
            if outcome.feasible:
                last_model = outcome.model or {}
                return None
            conflict_vars = {tag for tag in (outcome.conflict or set()) if isinstance(tag, int)}
            if not conflict_vars:
                conflict_vars = set(true_atoms)
            if not conflict_vars:
                # No true atoms at all yet the theory failed — cannot happen,
                # but guard against an empty (always-false) clause.
                return tuple()
            return tuple(-var for var in sorted(conflict_vars))

        solver = DpllSolver(
            num_vars=cnf.num_vars,
            clauses=cnf.clauses,
            theory_atoms=atom_vars,
            theory_callback=theory_callback,
            deadline=deadline,
            max_conflicts=self.config.max_conflicts,
        )

        try:
            verdict, _boolean_model = solver.solve()
        except ResourceLimit as error:
            return LiaResult(
                LiaStatus.UNKNOWN,
                decisions=solver.stats.decisions,
                theory_checks=solver.stats.theory_checks,
                reason=str(error),
            )

        if verdict == "unsat":
            if gave_up[0]:
                return LiaResult(
                    LiaStatus.UNKNOWN,
                    decisions=solver.stats.decisions,
                    theory_checks=solver.stats.theory_checks,
                    reason="branch-and-bound budget exhausted on some boolean assignment",
                )
            return LiaResult(
                LiaStatus.UNSAT,
                decisions=solver.stats.decisions,
                theory_checks=solver.stats.theory_checks,
            )

        model = LiaModel(dict(last_model))
        # Default the remaining free variables of the reduced formula, then
        # recover the eliminated (substituted-away) variables.
        for name in working.variables():
            model.values.setdefault(name, 0)
        model.values = complete_model(model.values, eliminated)
        for name in formula.variables():
            model.values.setdefault(name, 0)
        return LiaResult(
            LiaStatus.SAT,
            model=model,
            decisions=solver.stats.decisions,
            theory_checks=solver.stats.theory_checks,
        )


def is_satisfiable(formula: Formula, config: Optional[LiaConfig] = None) -> bool:
    """Convenience helper: ``True`` iff ``formula`` is satisfiable.

    Raises :class:`RuntimeError` when the solver cannot decide the formula
    within its budget (so callers never mistake ``UNKNOWN`` for a verdict).
    """
    result = LiaSolver(config).check(formula)
    if result.status is LiaStatus.UNKNOWN:
        raise RuntimeError(f"LIA solver returned unknown: {result.reason}")
    return result.is_sat


def check_model(formula: Formula, model: LiaModel) -> bool:
    """Evaluate ``formula`` under ``model`` (missing variables default to 0)."""
    assignment = {name: model.get(name, 0) for name in formula.variables()}
    return evaluate(formula, assignment)
