"""An exact-rational general simplex for conjunctions of linear constraints.

This is the theory core of the reproduction's LIA solver and follows the
general simplex of Dutertre and de Moura ("A Fast Linear-Arithmetic Solver
for DPLL(T)", CAV 2006): every input constraint ``Σ c_i·x_i ⋈ b`` is turned
into a *slack variable* ``s = Σ c_i·x_i`` with a bound on ``s``; the tableau
keeps basic variables expressed as linear combinations of non-basic ones and
the ``check`` procedure repairs bound violations by pivoting (Bland's rule
guarantees termination).

The solver is *incremental* in the DPLL(T) discipline of the paper: bound
assertions are backtrackable via :meth:`Simplex.push` / :meth:`Simplex.pop`
while the tableau rows, the slack-variable cache and the current (last
feasible) basis survive — asserting and retracting bounds never rebuilds the
tableau, and a re-``check`` after small bound changes starts from the warm
basis.  :meth:`Simplex.prepare` registers a constraint's linear form (row
creation only) and returns a bound handle that can be asserted cheaply with
:meth:`Simplex.assert_bound` on every theory check.

All arithmetic uses :class:`fractions.Fraction`, so results are exact.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

from .terms import LinExpr


@dataclass
class Constraint:
    """A linear constraint ``expr ⋈ 0`` with ``⋈`` in ``{"<=", ">=", "=="}``.

    ``tag`` is an opaque label used to report which constraints participate
    in an infeasibility (the conflict "core").
    """

    expr: LinExpr
    relation: str
    tag: object = None

    def __post_init__(self) -> None:
        if self.relation not in ("<=", ">=", "=="):
            raise ValueError(f"unsupported relation {self.relation!r}")


class SimplexResult:
    """Outcome of a feasibility check."""

    def __init__(self, feasible: bool, model: Optional[Dict[str, Fraction]] = None,
                 conflict: Optional[Set[object]] = None) -> None:
        self.feasible = feasible
        self.model = model or {}
        self.conflict = conflict or set()

    def __bool__(self) -> bool:  # pragma: no cover - convenience
        return self.feasible


_NEG_INF = None  # represented by None in lower bounds
_POS_INF = None  # represented by None in upper bounds


class Simplex:
    """Feasibility checker for a conjunction of linear constraints over Q.

    Usage::

        simplex = Simplex()
        simplex.add_constraint(Constraint(expr, "<=", tag))
        result = simplex.check()
    """

    def __init__(self) -> None:
        # Variable bookkeeping.  Variables are identified by strings; slack
        # variables get fresh names "__s<k>".
        self._order: Dict[str, int] = {}
        self._lower: Dict[str, Optional[Fraction]] = {}
        self._upper: Dict[str, Optional[Fraction]] = {}
        self._lower_tag: Dict[str, object] = {}
        self._upper_tag: Dict[str, object] = {}
        self._assignment: Dict[str, Fraction] = {}
        # Tableau: basic variable -> {nonbasic variable -> coefficient}.
        self._rows: Dict[str, Dict[str, Fraction]] = {}
        self._basic: Set[str] = set()
        #: column index: non-basic variable -> basic rows whose row mentions
        #: it (keeps pivoting and assignment updates proportional to the
        #: column size instead of the whole tableau)
        self._cols: Dict[str, Set[str]] = {}
        self._slack_index = 0
        # Reuse slack variables for syntactically identical linear forms.
        self._slack_cache: Dict[Tuple, str] = {}
        # Backtracking: scope markers into the bound-restoration trail.
        self._scopes: List[int] = []
        self._undo: List[Tuple[str, str, Optional[Fraction], object]] = []
        #: number of pivot operations performed (benchmark statistic)
        self.pivots = 0
        #: non-zero tableau entries (fill-in tracking; see _maybe_reset_basis)
        self._nnz = 0
        #: non-zeros right after the last basis reset (the "fresh" density)
        self._nnz_fresh = 0

    # ------------------------------------------------------------------
    # Backtrackable scopes
    # ------------------------------------------------------------------
    def push(self) -> None:
        """Open a scope; bounds asserted after this call are retractable."""
        self._scopes.append(len(self._undo))

    def pop(self) -> None:
        """Retract every bound asserted since the matching :meth:`push`.

        Tableau rows, the slack cache and the current assignment (the warm
        basis) are deliberately kept — a row without bounds is unconstrained,
        so retracting the bounds alone restores the pre-push constraint set.
        """
        mark = self._scopes.pop()
        while len(self._undo) > mark:
            name, which, value, tag = self._undo.pop()
            if which == "lower":
                self._lower[name] = value
                self._lower_tag[name] = tag
            else:
                self._upper[name] = value
                self._upper_tag[name] = tag

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _ensure_var(self, name: str) -> None:
        if name not in self._order:
            self._order[name] = len(self._order)
            self._lower[name] = None
            self._upper[name] = None
            self._assignment[name] = Fraction(0)

    def _fresh_slack(self) -> str:
        name = f"__s{self._slack_index}"
        self._slack_index += 1
        return name

    def prepare(self, constraint: Constraint) -> Tuple[str, str, Fraction]:
        """Register the linear form of ``constraint`` without asserting it.

        Creates (at most once per distinct linear form, via the slack cache)
        the tableau row and returns a handle ``(variable, relation, value)``
        that can be asserted later — and repeatedly — with
        :meth:`assert_bound`.  This is the row-registration half of the
        DPLL(T) simplex discipline: the theory solver registers every atom
        once and then only toggles bounds per SAT-search state.
        """
        expr = constraint.expr
        linear = LinExpr(expr.coeffs, 0)
        bound = Fraction(-expr.const)

        for name in linear.coeffs:
            self._ensure_var(name)

        if len(linear.coeffs) == 1:
            # Simple bound on a single variable: avoid creating a slack.
            ((name, coeff),) = linear.coeffs.items()
            coeff = Fraction(coeff)
            value = bound / coeff
            relation = constraint.relation
            if coeff < 0 and relation in ("<=", ">="):
                relation = ">=" if relation == "<=" else "<="
            return name, relation, value

        key = tuple(sorted((name, Fraction(coeff)) for name, coeff in linear.coeffs.items()))
        slack = self._slack_cache.get(key)
        if slack is None:
            slack = self._fresh_slack()
            self._slack_cache[key] = slack
            self._ensure_var(slack)
            row = {name: Fraction(coeff) for name, coeff in linear.coeffs.items()}
            # Express the slack in terms of current *non-basic* variables.
            resolved: Dict[str, Fraction] = {}
            for name, coeff in row.items():
                if name in self._basic:
                    for inner_name, inner_coeff in self._rows[name].items():
                        resolved[inner_name] = resolved.get(inner_name, Fraction(0)) + coeff * inner_coeff
                else:
                    resolved[name] = resolved.get(name, Fraction(0)) + coeff
            resolved = {name: coeff for name, coeff in resolved.items() if coeff != 0}
            self._rows[slack] = resolved
            for name in resolved:
                self._cols.setdefault(name, set()).add(slack)
            self._basic.add(slack)
            self._nnz += len(resolved)
            self._nnz_fresh += len(key)
            self._assignment[slack] = sum(
                (
                    coeff * self._assignment[name]
                    for name, coeff in resolved.items()
                    if self._assignment[name]
                ),
                Fraction(0),
            )
        return slack, constraint.relation, bound

    def add_constraint(self, constraint: Constraint) -> None:
        """Register a constraint and assert its bound; then call :meth:`check`."""
        name, relation, value = self.prepare(constraint)
        self.assert_bound(name, relation, value, constraint.tag)

    def assert_bound(self, name: str, relation: str, value: Fraction, tag: object) -> None:
        """Assert a (prepared) bound; retractable when inside a scope."""
        self._assert_bound(name, relation, value, tag)

    def _assert_bound(self, name: str, relation: str, value: Fraction, tag: object) -> None:
        value = Fraction(value)
        record = bool(self._scopes)
        if relation in ("<=", "=="):
            current = self._upper[name]
            if current is None or value < current:
                if record:
                    self._undo.append((name, "upper", current, self._upper_tag.get(name)))
                self._upper[name] = value
                self._upper_tag[name] = tag
        if relation in (">=", "=="):
            current = self._lower[name]
            if current is None or value > current:
                if record:
                    self._undo.append((name, "lower", current, self._lower_tag.get(name)))
                self._lower[name] = value
                self._lower_tag[name] = tag

    # ------------------------------------------------------------------
    # Solving
    # ------------------------------------------------------------------
    def _violates_lower(self, name: str) -> bool:
        low = self._lower[name]
        return low is not None and self._assignment[name] < low

    def _violates_upper(self, name: str) -> bool:
        up = self._upper[name]
        return up is not None and self._assignment[name] > up

    def _update_nonbasic(self, name: str, value: Fraction) -> None:
        delta = value - self._assignment[name]
        if delta == 0:
            return
        self._assignment[name] = value
        for basic in self._cols.get(name, ()):
            self._assignment[basic] += self._rows[basic][name] * delta

    def _pivot(self, basic: str, nonbasic: str) -> None:
        self.pivots += 1
        row = self._rows.pop(basic)
        self._nnz -= len(row)
        for name in row:
            self._cols[name].discard(basic)
        self._basic.discard(basic)
        coeff = row[nonbasic]
        # nonbasic = (basic - sum_{k != nonbasic} a_k x_k) / coeff
        new_row: Dict[str, Fraction] = {basic: Fraction(1) / coeff}
        for name, a in row.items():
            if name != nonbasic and a:
                new_row[name] = -a / coeff
        self._rows[nonbasic] = new_row
        self._nnz += len(new_row)
        for name in new_row:
            self._cols.setdefault(name, set()).add(nonbasic)
        self._basic.add(nonbasic)
        # Substitute into the remaining rows that mention ``nonbasic``.
        for other in list(self._cols.get(nonbasic, ())):
            if other == nonbasic:
                continue
            other_row = self._rows[other]
            a = other_row.pop(nonbasic, None)
            self._cols[nonbasic].discard(other)
            if not a:
                continue
            self._nnz -= 1
            for name, b in new_row.items():
                updated = other_row.get(name, 0) + a * b
                if updated:
                    if name not in other_row:
                        self._cols.setdefault(name, set()).add(other)
                        self._nnz += 1
                    other_row[name] = updated
                else:
                    if name in other_row:
                        del other_row[name]
                        self._cols[name].discard(other)
                        self._nnz -= 1

    def _pivot_and_update(self, basic: str, nonbasic: str, target: Fraction) -> None:
        coeff = self._rows[basic][nonbasic]
        theta = (target - self._assignment[basic]) / coeff
        self._assignment[basic] = target
        self._assignment[nonbasic] += theta
        for other in self._cols.get(nonbasic, ()):
            if other != basic:
                self._assignment[other] += self._rows[other][nonbasic] * theta
        self._pivot(basic, nonbasic)

    def _maybe_reset_basis(self) -> None:
        """Rebuild the tableau from the original slack definitions on fill-in.

        A long-lived basis accumulates dense rows (every pivot substitutes
        one row into many); once the tableau holds several times the
        non-zeros of the original constraint rows, pivoting costs more than
        the warm basis saves.  Resetting makes every slack basic again with
        its original (sparse) defining row — the constraint system is
        unchanged, only the feasible-point search restarts from zero.
        """
        if self._nnz <= max(2000, 4 * self._nnz_fresh):
            return
        self._rows = {}
        self._cols = {}
        self._basic = set()
        for name in self._assignment:
            self._assignment[name] = Fraction(0)
        for key, slack in self._slack_cache.items():
            row = {name: Fraction(coeff) for name, coeff in key}
            self._rows[slack] = row
            for name in row:
                self._cols.setdefault(name, set()).add(slack)
            self._basic.add(slack)
        self._nnz = sum(len(row) for row in self._rows.values())
        self._nnz_fresh = self._nnz

    def _check_fixed_bounds(self) -> Optional[SimplexResult]:
        """Detect immediately contradictory bounds ``lower > upper``."""
        for name in self._order:
            low, up = self._lower[name], self._upper[name]
            if low is not None and up is not None and low > up:
                conflict = {self._lower_tag.get(name), self._upper_tag.get(name)}
                return SimplexResult(False, conflict={tag for tag in conflict if tag is not None})
        return None

    def check(self, max_pivots: int = 100000, want_model: bool = True) -> SimplexResult:
        """Decide feasibility over the rationals.

        Returns a :class:`SimplexResult`; when infeasible, ``conflict``
        contains the tags of constraints participating in the conflict (a
        superset of a minimal core).  ``want_model=False`` skips building
        the model dictionary — callers that only need the verdict (the
        DPLL(T) partial checks) save a full pass over the variables.
        """
        self._maybe_reset_basis()
        contradiction = self._check_fixed_bounds()
        if contradiction is not None:
            return contradiction

        # Repair non-basic variables that violate their own bounds.
        for name in self._order:
            if name in self._basic:
                continue
            low, up = self._lower[name], self._upper[name]
            value = self._assignment[name]
            if low is not None and value < low:
                self._update_nonbasic(name, low)
            elif up is not None and value > up:
                self._update_nonbasic(name, up)

        def var_index(name: str) -> int:
            return self._order[name]

        for _ in range(max_pivots):
            violating: Optional[str] = None
            for name in sorted(self._basic, key=var_index):
                if self._violates_lower(name) or self._violates_upper(name):
                    violating = name
                    break
            if violating is None:
                if not want_model:
                    return SimplexResult(True)
                model = {name: self._assignment[name] for name in self._order}
                return SimplexResult(True, model=model)

            row = self._rows[violating]
            if self._violates_lower(violating):
                target = self._lower[violating]
                candidates = [
                    name
                    for name, coeff in row.items()
                    if (coeff > 0 and (self._upper[name] is None or self._assignment[name] < self._upper[name]))
                    or (coeff < 0 and (self._lower[name] is None or self._assignment[name] > self._lower[name]))
                ]
                if not candidates:
                    return SimplexResult(False, conflict=self._conflict_for(violating, lower=True))
                pivot_var = min(candidates, key=var_index)
                self._pivot_and_update(violating, pivot_var, target)
            else:
                target = self._upper[violating]
                candidates = [
                    name
                    for name, coeff in row.items()
                    if (coeff < 0 and (self._upper[name] is None or self._assignment[name] < self._upper[name]))
                    or (coeff > 0 and (self._lower[name] is None or self._assignment[name] > self._lower[name]))
                ]
                if not candidates:
                    return SimplexResult(False, conflict=self._conflict_for(violating, lower=False))
                pivot_var = min(candidates, key=var_index)
                self._pivot_and_update(violating, pivot_var, target)
        raise RuntimeError("simplex exceeded the pivot limit")

    def _conflict_for(self, basic: str, lower: bool) -> Set[object]:
        """Collect constraint tags explaining why ``basic`` cannot be repaired."""
        tags: Set[object] = set()
        own_tag = self._lower_tag.get(basic) if lower else self._upper_tag.get(basic)
        if own_tag is not None:
            tags.add(own_tag)
        for name, coeff in self._rows[basic].items():
            if lower:
                tag = self._upper_tag.get(name) if coeff > 0 else self._lower_tag.get(name)
            else:
                tag = self._lower_tag.get(name) if coeff > 0 else self._upper_tag.get(name)
            if tag is not None:
                tags.add(tag)
        return tags


def check_constraints(constraints: Sequence[Constraint]) -> SimplexResult:
    """Convenience wrapper: check feasibility of ``constraints`` over Q."""
    simplex = Simplex()
    for constraint in constraints:
        simplex.add_constraint(constraint)
    return simplex.check()


def rational_model_to_int(model: Mapping[str, Fraction]) -> Optional[Dict[str, int]]:
    """Return the model as integers when every value is integral, else ``None``."""
    result: Dict[str, int] = {}
    for name, value in model.items():
        if value.denominator != 1:
            return None
        result[name] = int(value)
    return result
