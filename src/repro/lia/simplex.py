"""An exact-rational general simplex for conjunctions of linear constraints.

This is the theory core of the reproduction's LIA solver and follows the
general simplex of Dutertre and de Moura ("A Fast Linear-Arithmetic Solver
for DPLL(T)", CAV 2006): every input constraint ``Σ c_i·x_i ⋈ b`` is turned
into a *slack variable* ``s = Σ c_i·x_i`` with a bound on ``s``; the tableau
keeps basic variables expressed as linear combinations of non-basic ones and
the ``check`` procedure repairs bound violations by pivoting (Bland's rule
guarantees termination).

All arithmetic uses :class:`fractions.Fraction`, so results are exact.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

from .terms import LinExpr


@dataclass
class Constraint:
    """A linear constraint ``expr ⋈ 0`` with ``⋈`` in ``{"<=", ">=", "=="}``.

    ``tag`` is an opaque label used to report which constraints participate
    in an infeasibility (the conflict "core").
    """

    expr: LinExpr
    relation: str
    tag: object = None

    def __post_init__(self) -> None:
        if self.relation not in ("<=", ">=", "=="):
            raise ValueError(f"unsupported relation {self.relation!r}")


class SimplexResult:
    """Outcome of a feasibility check."""

    def __init__(self, feasible: bool, model: Optional[Dict[str, Fraction]] = None,
                 conflict: Optional[Set[object]] = None) -> None:
        self.feasible = feasible
        self.model = model or {}
        self.conflict = conflict or set()

    def __bool__(self) -> bool:  # pragma: no cover - convenience
        return self.feasible


_NEG_INF = None  # represented by None in lower bounds
_POS_INF = None  # represented by None in upper bounds


class Simplex:
    """Feasibility checker for a conjunction of linear constraints over Q.

    Usage::

        simplex = Simplex()
        simplex.add_constraint(Constraint(expr, "<=", tag))
        result = simplex.check()
    """

    def __init__(self) -> None:
        # Variable bookkeeping.  Variables are identified by strings; slack
        # variables get fresh names "__s<k>".
        self._order: Dict[str, int] = {}
        self._lower: Dict[str, Optional[Fraction]] = {}
        self._upper: Dict[str, Optional[Fraction]] = {}
        self._lower_tag: Dict[str, object] = {}
        self._upper_tag: Dict[str, object] = {}
        self._assignment: Dict[str, Fraction] = {}
        # Tableau: basic variable -> {nonbasic variable -> coefficient}.
        self._rows: Dict[str, Dict[str, Fraction]] = {}
        self._basic: Set[str] = set()
        self._slack_index = 0
        # Reuse slack variables for syntactically identical linear forms.
        self._slack_cache: Dict[Tuple, str] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _ensure_var(self, name: str) -> None:
        if name not in self._order:
            self._order[name] = len(self._order)
            self._lower[name] = None
            self._upper[name] = None
            self._assignment[name] = Fraction(0)

    def _fresh_slack(self) -> str:
        name = f"__s{self._slack_index}"
        self._slack_index += 1
        return name

    def add_constraint(self, constraint: Constraint) -> None:
        """Register a constraint; call :meth:`check` afterwards."""
        expr = constraint.expr
        linear = LinExpr(expr.coeffs, 0)
        bound = Fraction(-expr.const)

        for name in linear.coeffs:
            self._ensure_var(name)

        if len(linear.coeffs) == 1:
            # Simple bound on a single variable: avoid creating a slack.
            ((name, coeff),) = linear.coeffs.items()
            coeff = Fraction(coeff)
            value = bound / coeff
            relation = constraint.relation
            if coeff < 0 and relation in ("<=", ">="):
                relation = ">=" if relation == "<=" else "<="
            self._assert_bound(name, relation, value, constraint.tag)
            return

        key = tuple(sorted((name, Fraction(coeff)) for name, coeff in linear.coeffs.items()))
        slack = self._slack_cache.get(key)
        if slack is None:
            slack = self._fresh_slack()
            self._slack_cache[key] = slack
            self._ensure_var(slack)
            row = {name: Fraction(coeff) for name, coeff in linear.coeffs.items()}
            # Express the slack in terms of current *non-basic* variables.
            resolved: Dict[str, Fraction] = {}
            for name, coeff in row.items():
                if name in self._basic:
                    for inner_name, inner_coeff in self._rows[name].items():
                        resolved[inner_name] = resolved.get(inner_name, Fraction(0)) + coeff * inner_coeff
                else:
                    resolved[name] = resolved.get(name, Fraction(0)) + coeff
            resolved = {name: coeff for name, coeff in resolved.items() if coeff != 0}
            self._rows[slack] = resolved
            self._basic.add(slack)
            self._assignment[slack] = sum(
                (
                    coeff * self._assignment[name]
                    for name, coeff in resolved.items()
                    if self._assignment[name]
                ),
                Fraction(0),
            )
        self._assert_bound(slack, constraint.relation, bound, constraint.tag)

    def _assert_bound(self, name: str, relation: str, value: Fraction, tag: object) -> None:
        value = Fraction(value)
        if relation in ("<=", "=="):
            current = self._upper[name]
            if current is None or value < current:
                self._upper[name] = value
                self._upper_tag[name] = tag
        if relation in (">=", "=="):
            current = self._lower[name]
            if current is None or value > current:
                self._lower[name] = value
                self._lower_tag[name] = tag

    # ------------------------------------------------------------------
    # Solving
    # ------------------------------------------------------------------
    def _violates_lower(self, name: str) -> bool:
        low = self._lower[name]
        return low is not None and self._assignment[name] < low

    def _violates_upper(self, name: str) -> bool:
        up = self._upper[name]
        return up is not None and self._assignment[name] > up

    def _update_nonbasic(self, name: str, value: Fraction) -> None:
        delta = value - self._assignment[name]
        if delta == 0:
            return
        self._assignment[name] = value
        for basic, row in self._rows.items():
            coeff = row.get(name)
            if coeff:
                self._assignment[basic] += coeff * delta

    def _pivot(self, basic: str, nonbasic: str) -> None:
        row = self._rows.pop(basic)
        self._basic.discard(basic)
        coeff = row[nonbasic]
        # nonbasic = (basic - sum_{k != nonbasic} a_k x_k) / coeff
        new_row: Dict[str, Fraction] = {basic: Fraction(1) / coeff}
        for name, a in row.items():
            if name != nonbasic:
                new_row[name] = -a / coeff
        self._rows[nonbasic] = {k: v for k, v in new_row.items() if v != 0}
        self._basic.add(nonbasic)
        # Substitute into the remaining rows.
        for other, other_row in self._rows.items():
            if other == nonbasic:
                continue
            a = other_row.pop(nonbasic, None)
            if a:
                for name, b in self._rows[nonbasic].items():
                    other_row[name] = other_row.get(name, Fraction(0)) + a * b
                self._rows[other] = {k: v for k, v in other_row.items() if v != 0}

    def _pivot_and_update(self, basic: str, nonbasic: str, target: Fraction) -> None:
        coeff = self._rows[basic][nonbasic]
        theta = (target - self._assignment[basic]) / coeff
        self._assignment[basic] = target
        self._assignment[nonbasic] += theta
        for other, row in self._rows.items():
            if other != basic:
                a = row.get(nonbasic)
                if a:
                    self._assignment[other] += a * theta
        self._pivot(basic, nonbasic)

    def _check_fixed_bounds(self) -> Optional[SimplexResult]:
        """Detect immediately contradictory bounds ``lower > upper``."""
        for name in self._order:
            low, up = self._lower[name], self._upper[name]
            if low is not None and up is not None and low > up:
                conflict = {self._lower_tag.get(name), self._upper_tag.get(name)}
                return SimplexResult(False, conflict={tag for tag in conflict if tag is not None})
        return None

    def check(self, max_pivots: int = 100000) -> SimplexResult:
        """Decide feasibility over the rationals.

        Returns a :class:`SimplexResult`; when infeasible, ``conflict``
        contains the tags of constraints participating in the conflict (a
        superset of a minimal core).
        """
        contradiction = self._check_fixed_bounds()
        if contradiction is not None:
            return contradiction

        # Repair non-basic variables that violate their own bounds.
        for name in self._order:
            if name in self._basic:
                continue
            low, up = self._lower[name], self._upper[name]
            value = self._assignment[name]
            if low is not None and value < low:
                self._update_nonbasic(name, low)
            elif up is not None and value > up:
                self._update_nonbasic(name, up)

        def var_index(name: str) -> int:
            return self._order[name]

        for _ in range(max_pivots):
            violating: Optional[str] = None
            for name in sorted(self._basic, key=var_index):
                if self._violates_lower(name) or self._violates_upper(name):
                    violating = name
                    break
            if violating is None:
                model = {name: self._assignment[name] for name in self._order}
                return SimplexResult(True, model=model)

            row = self._rows[violating]
            if self._violates_lower(violating):
                target = self._lower[violating]
                candidates = [
                    name
                    for name, coeff in row.items()
                    if (coeff > 0 and (self._upper[name] is None or self._assignment[name] < self._upper[name]))
                    or (coeff < 0 and (self._lower[name] is None or self._assignment[name] > self._lower[name]))
                ]
                if not candidates:
                    return SimplexResult(False, conflict=self._conflict_for(violating, lower=True))
                pivot_var = min(candidates, key=var_index)
                self._pivot_and_update(violating, pivot_var, target)
            else:
                target = self._upper[violating]
                candidates = [
                    name
                    for name, coeff in row.items()
                    if (coeff < 0 and (self._upper[name] is None or self._assignment[name] < self._upper[name]))
                    or (coeff > 0 and (self._lower[name] is None or self._assignment[name] > self._lower[name]))
                ]
                if not candidates:
                    return SimplexResult(False, conflict=self._conflict_for(violating, lower=False))
                pivot_var = min(candidates, key=var_index)
                self._pivot_and_update(violating, pivot_var, target)
        raise RuntimeError("simplex exceeded the pivot limit")

    def _conflict_for(self, basic: str, lower: bool) -> Set[object]:
        """Collect constraint tags explaining why ``basic`` cannot be repaired."""
        tags: Set[object] = set()
        own_tag = self._lower_tag.get(basic) if lower else self._upper_tag.get(basic)
        if own_tag is not None:
            tags.add(own_tag)
        for name, coeff in self._rows[basic].items():
            if lower:
                tag = self._upper_tag.get(name) if coeff > 0 else self._lower_tag.get(name)
            else:
                tag = self._lower_tag.get(name) if coeff > 0 else self._upper_tag.get(name)
            if tag is not None:
                tags.add(tag)
        return tags


def check_constraints(constraints: Sequence[Constraint]) -> SimplexResult:
    """Convenience wrapper: check feasibility of ``constraints`` over Q."""
    simplex = Simplex()
    for constraint in constraints:
        simplex.add_constraint(constraint)
    return simplex.check()


def rational_model_to_int(model: Mapping[str, Fraction]) -> Optional[Dict[str, int]]:
    """Return the model as integers when every value is integral, else ``None``."""
    result: Dict[str, int] = {}
    for name, value in model.items():
        if value.denominator != 1:
            return None
        result[name] = int(value)
    return result
