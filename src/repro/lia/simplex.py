"""An exact-rational general simplex for conjunctions of linear constraints.

This is the theory core of the reproduction's LIA solver and follows the
general simplex of Dutertre and de Moura ("A Fast Linear-Arithmetic Solver
for DPLL(T)", CAV 2006): every input constraint ``Σ c_i·x_i ⋈ b`` is turned
into a *slack variable* ``s = Σ c_i·x_i`` with a bound on ``s``; the tableau
keeps basic variables expressed as linear combinations of non-basic ones and
the ``check`` procedure repairs bound violations by pivoting (Bland's rule
guarantees termination).

The solver is *incremental* in the DPLL(T) discipline of the paper: bound
assertions are backtrackable via :meth:`Simplex.push` / :meth:`Simplex.pop`
while the tableau rows, the slack-variable cache and the current (last
feasible) basis survive — asserting and retracting bounds never rebuilds the
tableau, and a re-``check`` after small bound changes starts from the warm
basis.  :meth:`Simplex.prepare` registers a constraint's linear form (row
creation only) and returns a bound handle that can be asserted cheaply with
:meth:`Simplex.assert_bound` on every theory check.

All arithmetic is exact.  Numbers are kept as plain :class:`int` for as long
as every division is exact and are promoted to :class:`fractions.Fraction`
only on the first non-integral division (see :func:`_div`): most LIA
tableaus stay integral through long pivot sequences, and native ``int``
arithmetic is several times faster than ``Fraction`` — which profiling shows
dominating pivot time otherwise.  ``int`` and ``Fraction`` mix freely in
comparisons and arithmetic, so rows, bounds and assignments may hold either.

:meth:`Simplex.gomory_cuts` derives Gomory mixed-integer cutting planes from
the fractional basic rows of a feasible tableau (the "branch-and-cut"
extension of §8); see :mod:`repro.lia.intsolver` for how they are used.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from math import gcd
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

from .terms import LinExpr

#: exact numbers in the tableau: ``int`` on the fast path, ``Fraction``
#: after promotion
Num = object


def _norm(value):
    """Collapse an integral :class:`Fraction` back to ``int`` (fast path)."""
    if isinstance(value, int):
        return value
    if value.denominator == 1:
        return value.numerator
    return value


def _div(a, b):
    """Exact ``a / b``: ``int`` when the division is exact, else ``Fraction``.

    This is the single promotion point of the dual int/Fraction tableau —
    every other operation (addition, multiplication, comparison) keeps
    ``int`` operands ``int``.
    """
    if isinstance(a, int) and isinstance(b, int):
        quotient, remainder = divmod(a, b)
        if not remainder:
            return quotient
        return Fraction(a, b)
    return _norm(Fraction(a) / Fraction(b))


def _frac(value) -> Fraction:
    """The fractional part ``value - floor(value)`` (0 for every ``int``)."""
    if isinstance(value, int):
        return Fraction(0)
    return value - (value.numerator // value.denominator)


@dataclass
class Constraint:
    """A linear constraint ``expr ⋈ 0`` with ``⋈`` in ``{"<=", ">=", "=="}``.

    ``tag`` is an opaque label used to report which constraints participate
    in an infeasibility (the conflict "core").
    """

    expr: LinExpr
    relation: str
    tag: object = None

    def __post_init__(self) -> None:
        if self.relation not in ("<=", ">=", "=="):
            raise ValueError(f"unsupported relation {self.relation!r}")


class SimplexResult:
    """Outcome of a feasibility check."""

    def __init__(self, feasible: bool, model: Optional[Dict[str, Fraction]] = None,
                 conflict: Optional[Set[object]] = None) -> None:
        self.feasible = feasible
        self.model = model or {}
        self.conflict = conflict or set()

    def __bool__(self) -> bool:  # pragma: no cover - convenience
        return self.feasible


_NEG_INF = None  # represented by None in lower bounds
_POS_INF = None  # represented by None in upper bounds


class Simplex:
    """Feasibility checker for a conjunction of linear constraints over Q.

    Usage::

        simplex = Simplex()
        simplex.add_constraint(Constraint(expr, "<=", tag))
        result = simplex.check()
    """

    def __init__(self) -> None:
        # Variable bookkeeping.  Variables are identified by strings; slack
        # variables get fresh names "__s<k>".
        self._order: Dict[str, int] = {}
        self._lower: Dict[str, Optional[Fraction]] = {}
        self._upper: Dict[str, Optional[Fraction]] = {}
        self._lower_tag: Dict[str, object] = {}
        self._upper_tag: Dict[str, object] = {}
        self._assignment: Dict[str, Fraction] = {}
        # Tableau: basic variable -> {nonbasic variable -> coefficient}.
        self._rows: Dict[str, Dict[str, Fraction]] = {}
        self._basic: Set[str] = set()
        #: column index: non-basic variable -> basic rows whose row mentions
        #: it (keeps pivoting and assignment updates proportional to the
        #: column size instead of the whole tableau)
        self._cols: Dict[str, Set[str]] = {}
        self._slack_index = 0
        # Reuse slack variables for syntactically identical linear forms.
        self._slack_cache: Dict[Tuple, str] = {}
        #: slack variable -> its defining linear form over original variables
        #: (needed to translate Gomory cuts back into constraint space)
        self._slack_def: Dict[str, Tuple] = {}
        # Backtracking: scope markers into the bound-restoration trail.
        self._scopes: List[int] = []
        self._undo: List[Tuple[str, str, Optional[Fraction], object]] = []
        #: number of pivot operations performed (benchmark statistic)
        self.pivots = 0
        #: non-zero tableau entries (fill-in tracking; see _maybe_reset_basis)
        self._nnz = 0
        #: non-zeros right after the last basis reset (the "fresh" density)
        self._nnz_fresh = 0

    # ------------------------------------------------------------------
    # Backtrackable scopes
    # ------------------------------------------------------------------
    def push(self) -> None:
        """Open a scope; bounds asserted after this call are retractable."""
        self._scopes.append(len(self._undo))

    def pop(self) -> None:
        """Retract every bound asserted since the matching :meth:`push`.

        Tableau rows, the slack cache and the current assignment (the warm
        basis) are deliberately kept — a row without bounds is unconstrained,
        so retracting the bounds alone restores the pre-push constraint set.
        """
        mark = self._scopes.pop()
        while len(self._undo) > mark:
            name, which, value, tag = self._undo.pop()
            if which == "lower":
                self._lower[name] = value
                self._lower_tag[name] = tag
            else:
                self._upper[name] = value
                self._upper_tag[name] = tag

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _ensure_var(self, name: str) -> None:
        if name not in self._order:
            self._order[name] = len(self._order)
            self._lower[name] = None
            self._upper[name] = None
            self._assignment[name] = 0

    def _fresh_slack(self) -> str:
        name = f"__s{self._slack_index}"
        self._slack_index += 1
        return name

    def prepare(self, constraint: Constraint) -> Tuple[str, str, Fraction]:
        """Register the linear form of ``constraint`` without asserting it.

        Creates (at most once per distinct linear form, via the slack cache)
        the tableau row and returns a handle ``(variable, relation, value)``
        that can be asserted later — and repeatedly — with
        :meth:`assert_bound`.  This is the row-registration half of the
        DPLL(T) simplex discipline: the theory solver registers every atom
        once and then only toggles bounds per SAT-search state.
        """
        expr = constraint.expr
        linear = LinExpr(expr.coeffs, 0)
        bound = _norm(-expr.const)

        for name in linear.coeffs:
            self._ensure_var(name)

        if len(linear.coeffs) == 1:
            # Simple bound on a single variable: avoid creating a slack.
            ((name, coeff),) = linear.coeffs.items()
            coeff = _norm(coeff)
            value = _div(bound, coeff)
            relation = constraint.relation
            if coeff < 0 and relation in ("<=", ">="):
                relation = ">=" if relation == "<=" else "<="
            return name, relation, value

        key = tuple(sorted((name, _norm(coeff)) for name, coeff in linear.coeffs.items()))
        slack = self._slack_cache.get(key)
        if slack is None:
            slack = self._fresh_slack()
            self._slack_cache[key] = slack
            self._slack_def[slack] = key
            self._ensure_var(slack)
            row = dict(key)
            # Express the slack in terms of current *non-basic* variables.
            resolved: Dict[str, Num] = {}
            for name, coeff in row.items():
                if name in self._basic:
                    for inner_name, inner_coeff in self._rows[name].items():
                        resolved[inner_name] = resolved.get(inner_name, 0) + coeff * inner_coeff
                else:
                    resolved[name] = resolved.get(name, 0) + coeff
            resolved = {name: coeff for name, coeff in resolved.items() if coeff != 0}
            self._rows[slack] = resolved
            for name in resolved:
                self._cols.setdefault(name, set()).add(slack)
            self._basic.add(slack)
            self._nnz += len(resolved)
            self._nnz_fresh += len(key)
            self._assignment[slack] = sum(
                coeff * self._assignment[name]
                for name, coeff in resolved.items()
                if self._assignment[name]
            )
        return slack, constraint.relation, bound

    def add_constraint(self, constraint: Constraint) -> None:
        """Register a constraint and assert its bound; then call :meth:`check`."""
        name, relation, value = self.prepare(constraint)
        self.assert_bound(name, relation, value, constraint.tag)

    def assert_bound(self, name: str, relation: str, value: Fraction, tag: object) -> None:
        """Assert a (prepared) bound; retractable when inside a scope."""
        self._assert_bound(name, relation, value, tag)

    def _assert_bound(self, name: str, relation: str, value: Fraction, tag: object) -> None:
        value = _norm(value)
        record = bool(self._scopes)
        if relation in ("<=", "=="):
            current = self._upper[name]
            if current is None or value < current:
                if record:
                    self._undo.append((name, "upper", current, self._upper_tag.get(name)))
                self._upper[name] = value
                self._upper_tag[name] = tag
        if relation in (">=", "=="):
            current = self._lower[name]
            if current is None or value > current:
                if record:
                    self._undo.append((name, "lower", current, self._lower_tag.get(name)))
                self._lower[name] = value
                self._lower_tag[name] = tag

    # ------------------------------------------------------------------
    # Solving
    # ------------------------------------------------------------------
    def _violates_lower(self, name: str) -> bool:
        low = self._lower[name]
        return low is not None and self._assignment[name] < low

    def _violates_upper(self, name: str) -> bool:
        up = self._upper[name]
        return up is not None and self._assignment[name] > up

    def _update_nonbasic(self, name: str, value: Fraction) -> None:
        delta = value - self._assignment[name]
        if delta == 0:
            return
        self._assignment[name] = value
        for basic in self._cols.get(name, ()):
            self._assignment[basic] += self._rows[basic][name] * delta

    def _pivot(self, basic: str, nonbasic: str) -> None:
        self.pivots += 1
        row = self._rows.pop(basic)
        self._nnz -= len(row)
        for name in row:
            self._cols[name].discard(basic)
        self._basic.discard(basic)
        coeff = row[nonbasic]
        # nonbasic = (basic - sum_{k != nonbasic} a_k x_k) / coeff
        new_row: Dict[str, Num] = {basic: _div(1, coeff)}
        for name, a in row.items():
            if name != nonbasic and a:
                new_row[name] = _div(-a, coeff)
        self._rows[nonbasic] = new_row
        self._nnz += len(new_row)
        for name in new_row:
            self._cols.setdefault(name, set()).add(nonbasic)
        self._basic.add(nonbasic)
        # Substitute into the remaining rows that mention ``nonbasic``.
        for other in list(self._cols.get(nonbasic, ())):
            if other == nonbasic:
                continue
            other_row = self._rows[other]
            a = other_row.pop(nonbasic, None)
            self._cols[nonbasic].discard(other)
            if not a:
                continue
            self._nnz -= 1
            for name, b in new_row.items():
                updated = other_row.get(name, 0) + a * b
                if updated:
                    if name not in other_row:
                        self._cols.setdefault(name, set()).add(other)
                        self._nnz += 1
                    other_row[name] = updated
                else:
                    if name in other_row:
                        del other_row[name]
                        self._cols[name].discard(other)
                        self._nnz -= 1

    def _pivot_and_update(self, basic: str, nonbasic: str, target: Fraction) -> None:
        coeff = self._rows[basic][nonbasic]
        theta = _div(target - self._assignment[basic], coeff)
        self._assignment[basic] = target
        self._assignment[nonbasic] += theta
        for other in self._cols.get(nonbasic, ()):
            if other != basic:
                self._assignment[other] += self._rows[other][nonbasic] * theta
        self._pivot(basic, nonbasic)

    def _maybe_reset_basis(self) -> None:
        """Rebuild the tableau from the original slack definitions on fill-in.

        A long-lived basis accumulates dense rows (every pivot substitutes
        one row into many); once the tableau holds several times the
        non-zeros of the original constraint rows, pivoting costs more than
        the warm basis saves.  Resetting makes every slack basic again with
        its original (sparse) defining row — the constraint system is
        unchanged, only the feasible-point search restarts from zero.
        """
        if self._nnz <= max(2000, 4 * self._nnz_fresh):
            return
        self._rows = {}
        self._cols = {}
        self._basic = set()
        for name in self._assignment:
            self._assignment[name] = 0
        for key, slack in self._slack_cache.items():
            row = dict(key)
            self._rows[slack] = row
            for name in row:
                self._cols.setdefault(name, set()).add(slack)
            self._basic.add(slack)
        self._nnz = sum(len(row) for row in self._rows.values())
        self._nnz_fresh = self._nnz

    def _check_fixed_bounds(self) -> Optional[SimplexResult]:
        """Detect immediately contradictory bounds ``lower > upper``."""
        for name in self._order:
            low, up = self._lower[name], self._upper[name]
            if low is not None and up is not None and low > up:
                conflict = {self._lower_tag.get(name), self._upper_tag.get(name)}
                return SimplexResult(False, conflict={tag for tag in conflict if tag is not None})
        return None

    def check(self, max_pivots: int = 100000, want_model: bool = True) -> SimplexResult:
        """Decide feasibility over the rationals.

        Returns a :class:`SimplexResult`; when infeasible, ``conflict``
        contains the tags of constraints participating in the conflict (a
        superset of a minimal core).  ``want_model=False`` skips building
        the model dictionary — callers that only need the verdict (the
        DPLL(T) partial checks) save a full pass over the variables.
        """
        self._maybe_reset_basis()
        contradiction = self._check_fixed_bounds()
        if contradiction is not None:
            return contradiction

        # Repair non-basic variables that violate their own bounds.
        for name in self._order:
            if name in self._basic:
                continue
            low, up = self._lower[name], self._upper[name]
            value = self._assignment[name]
            if low is not None and value < low:
                self._update_nonbasic(name, low)
            elif up is not None and value > up:
                self._update_nonbasic(name, up)

        def var_index(name: str) -> int:
            return self._order[name]

        for _ in range(max_pivots):
            # Bland's rule: repair the violating basic variable of smallest
            # index (a single min-scan; sorting every round dominated checks).
            violating: Optional[str] = None
            violating_index = -1
            for name in self._basic:
                if self._violates_lower(name) or self._violates_upper(name):
                    index = self._order[name]
                    if violating is None or index < violating_index:
                        violating = name
                        violating_index = index
            if violating is None:
                if not want_model:
                    return SimplexResult(True)
                model = {name: self._assignment[name] for name in self._order}
                return SimplexResult(True, model=model)

            row = self._rows[violating]
            if self._violates_lower(violating):
                target = self._lower[violating]
                candidates = [
                    name
                    for name, coeff in row.items()
                    if (coeff > 0 and (self._upper[name] is None or self._assignment[name] < self._upper[name]))
                    or (coeff < 0 and (self._lower[name] is None or self._assignment[name] > self._lower[name]))
                ]
                if not candidates:
                    return SimplexResult(False, conflict=self._conflict_for(violating, lower=True))
                pivot_var = min(candidates, key=var_index)
                self._pivot_and_update(violating, pivot_var, target)
            else:
                target = self._upper[violating]
                candidates = [
                    name
                    for name, coeff in row.items()
                    if (coeff < 0 and (self._upper[name] is None or self._assignment[name] < self._upper[name]))
                    or (coeff > 0 and (self._lower[name] is None or self._assignment[name] > self._lower[name]))
                ]
                if not candidates:
                    return SimplexResult(False, conflict=self._conflict_for(violating, lower=False))
                pivot_var = min(candidates, key=var_index)
                self._pivot_and_update(violating, pivot_var, target)
        raise RuntimeError("simplex exceeded the pivot limit")

    def _conflict_for(self, basic: str, lower: bool) -> Set[object]:
        """Collect constraint tags explaining why ``basic`` cannot be repaired."""
        tags: Set[object] = set()
        own_tag = self._lower_tag.get(basic) if lower else self._upper_tag.get(basic)
        if own_tag is not None:
            tags.add(own_tag)
        for name, coeff in self._rows[basic].items():
            if lower:
                tag = self._upper_tag.get(name) if coeff > 0 else self._lower_tag.get(name)
            else:
                tag = self._lower_tag.get(name) if coeff > 0 else self._upper_tag.get(name)
            if tag is not None:
                tags.add(tag)
        return tags

    # ------------------------------------------------------------------
    # Cutting planes
    # ------------------------------------------------------------------
    def _is_integer_var(self, name: str, integer_vars: Optional[Set[str]]) -> bool:
        """Is ``name`` forced integral?  Slacks inherit from their definition."""
        definition = self._slack_def.get(name)
        if definition is not None:
            return all(
                not _frac(coeff) and self._is_integer_var(var, integer_vars)
                for var, coeff in definition
            )
        return integer_vars is None or name in integer_vars

    def gomory_cuts(
        self,
        integer_vars: Optional[Set[str]] = None,
        max_cuts: int = 8,
        max_coefficient: int = 10**12,
    ) -> List[Constraint]:
        """Derive Gomory mixed-integer cuts from fractional basic rows.

        Must be called directly after a *feasible* :meth:`check` (the cuts
        are read off the current assignment/basis).  Each returned constraint
        is expressed over the original (non-slack) variables with integer
        coefficients and relation ``>=``; it is violated by the current
        fractional vertex but satisfied by **every** integer solution of the
        asserted bounds, so adding it and re-checking makes progress without
        cutting off any integer point.

        Derivation per fractional basic variable ``x_i`` (standard GMI, cf.
        the branch-and-cut strategy of §8): the tableau row gives the
        identity ``x_i = β + Σ_L a_j (x_j − l_j) − Σ_U a_j (u_j − x_j)`` over
        the non-basic variables sitting at their lower/upper bounds.  Terms
        with integral coefficient, integral bound and integer variable drop
        out modulo 1; the remaining slack distances ``w_j ≥ 0`` satisfy
        ``Σ f(c_j) w_j ≡ −f0 (mod 1)`` with ``f0 = frac(β) > 0``, which
        yields the rounded cut ``Σ α_j w_j ≥ 1``.  Rows mentioning a
        fractional-coefficient variable *not* at a bound are skipped.

        The ``tag`` of a cut is the frozenset union of the tags of every
        bound actually used in the derivation — the provenance needed for
        sound conflict cores: any later conflict involving the cut reports
        exactly the original constraints the cut descended from.
        """
        cuts: List[Constraint] = []
        for basic in sorted(self._basic, key=self._order.__getitem__):
            if len(cuts) >= max_cuts:
                break
            if not self._is_integer_var(basic, integer_vars):
                continue
            f0 = _frac(self._assignment[basic])
            if not f0:
                continue
            terms: List[Tuple[str, Fraction, bool, Fraction]] = []
            tags: Set[object] = set()
            usable = True
            for name, a in self._rows[basic].items():
                value = self._assignment[name]
                is_int = self._is_integer_var(name, integer_vars)
                if not _frac(a) and is_int and not _frac(value):
                    # integral coefficient × integral integer variable:
                    # contributes an integer regardless of bounds — drop.
                    continue
                low, up = self._lower[name], self._upper[name]
                if low is not None and value == low:
                    at_lower, bound, tag = True, low, self._lower_tag.get(name)
                elif up is not None and value == up:
                    at_lower, bound, tag = False, up, self._upper_tag.get(name)
                else:
                    usable = False
                    break
                # coefficient of the distance w = (x−l) resp. (u−x), w ≥ 0.
                # The distances satisfy t = Σ c_k w_k with t + f0 ∈ ℤ, i.e.
                # frac(t) = 1 − f0, which is the "f0" of the textbook GMI
                # formula — hence the 1−f0 thresholds below.
                c = a if at_lower else -a
                if is_int and not _frac(bound):
                    g = _frac(c)
                    alpha = g / (1 - f0) if g <= 1 - f0 else (1 - g) / f0
                else:
                    # continuous (or fractionally-bounded) term of the GMI cut
                    alpha = Fraction(c) / (1 - f0) if c > 0 else Fraction(-c) / f0
                terms.append((name, alpha, at_lower, bound))
                if tag is not None:
                    tags.add(tag)
            if not usable or not terms:
                continue
            # Σ α_j w_j ≥ 1, expanded to "expr >= 0" over the tableau vars...
            coeffs: Dict[str, Fraction] = {}
            const: Fraction = Fraction(-1)
            for name, alpha, at_lower, bound in terms:
                sign = 1 if at_lower else -1
                coeffs[name] = coeffs.get(name, 0) + sign * alpha
                const -= sign * alpha * bound
            # ... then over the original variables (slacks are definitional,
            # so expanding them adds no provenance).
            expanded: Dict[str, Fraction] = {}
            for name, coeff in coeffs.items():
                definition = self._slack_def.get(name)
                if definition is None:
                    expanded[name] = expanded.get(name, 0) + coeff
                else:
                    for inner, inner_coeff in definition:
                        expanded[inner] = expanded.get(inner, 0) + coeff * inner_coeff
            expanded = {name: coeff for name, coeff in expanded.items() if coeff}
            if not expanded:
                continue
            denominator = 1
            for value in list(expanded.values()) + [const]:
                d = value.denominator if isinstance(value, Fraction) else 1
                denominator = denominator * d // gcd(denominator, d)
            scaled = {name: _norm(coeff * denominator) for name, coeff in expanded.items()}
            if max(abs(coeff) for coeff in scaled.values()) > max_coefficient:
                continue
            flat: Set[object] = set()
            for tag in tags:
                if isinstance(tag, frozenset):
                    flat |= tag
                else:
                    flat.add(tag)
            cuts.append(
                Constraint(LinExpr(scaled, _norm(const * denominator)), ">=", frozenset(flat))
            )
        return cuts


def check_constraints(constraints: Sequence[Constraint]) -> SimplexResult:
    """Convenience wrapper: check feasibility of ``constraints`` over Q."""
    simplex = Simplex()
    for constraint in constraints:
        simplex.add_constraint(constraint)
    return simplex.check()


def rational_model_to_int(model: Mapping[str, Fraction]) -> Optional[Dict[str, int]]:
    """Return the model as integers when every value is integral, else ``None``."""
    result: Dict[str, int] = {}
    for name, value in model.items():
        if value.denominator != 1:
            return None
        result[name] = int(value)
    return result
