"""Linear integer arithmetic (LIA) terms and formulae.

The decision procedure of the paper reduces position constraints to LIA
formulae over Parikh variables.  This module provides the formula
representation consumed by :mod:`repro.lia.solver`:

* :class:`LinExpr` — a linear expression ``c0 + c1*x1 + ... + cn*xn`` with
  integer coefficients, represented as a mapping from variable names to
  coefficients plus a constant,
* atoms — ``expr <= 0`` (:class:`Le`) and ``expr = 0`` (:class:`Eq`),
* boolean structure — :class:`And`, :class:`Or`, :class:`Not`,
  :class:`Implies`, :class:`Iff`, :class:`BoolConst`,
* quantifiers — :class:`Exists` and :class:`ForAll` (used by the ¬contains
  reduction of §6.4).

Construction helpers (``le``, ``lt``, ``eq_expr``, ``ne``, ``conj``, ...) are
provided at the bottom of the module; they perform light-weight
normalisation so that trivially true/false subformulae collapse early.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple, Union

Number = Union[int, Fraction]


# ----------------------------------------------------------------------
# Linear expressions
# ----------------------------------------------------------------------
class LinExpr:
    """An immutable linear expression with integer (or rational) coefficients."""

    __slots__ = ("coeffs", "const", "_key")

    def __init__(self, coeffs: Optional[Mapping[str, Number]] = None, const: Number = 0) -> None:
        cleaned: Dict[str, Number] = {}
        if coeffs:
            for name, coeff in coeffs.items():
                if coeff != 0:
                    cleaned[name] = coeff
        self.coeffs: Dict[str, Number] = cleaned
        self.const: Number = const
        self._key: Optional[Tuple] = None

    # -- constructors ---------------------------------------------------
    @staticmethod
    def var(name: str) -> "LinExpr":
        """Return the expression consisting of a single variable."""
        return LinExpr({name: 1}, 0)

    @staticmethod
    def constant(value: Number) -> "LinExpr":
        """Return a constant expression."""
        return LinExpr({}, value)

    @staticmethod
    def sum_of(exprs: Iterable["LinExpr"]) -> "LinExpr":
        """Return the sum of the given expressions."""
        total = LinExpr()
        for expr in exprs:
            total = total + expr
        return total

    # -- arithmetic -----------------------------------------------------
    def _coerce(self, other: Union["LinExpr", Number]) -> "LinExpr":
        if isinstance(other, LinExpr):
            return other
        return LinExpr.constant(other)

    def __add__(self, other: Union["LinExpr", Number]) -> "LinExpr":
        other = self._coerce(other)
        coeffs = dict(self.coeffs)
        for name, coeff in other.coeffs.items():
            coeffs[name] = coeffs.get(name, 0) + coeff
        return LinExpr(coeffs, self.const + other.const)

    __radd__ = __add__

    def __sub__(self, other: Union["LinExpr", Number]) -> "LinExpr":
        return self + (self._coerce(other) * -1)

    def __rsub__(self, other: Union["LinExpr", Number]) -> "LinExpr":
        return self._coerce(other) - self

    def __mul__(self, scalar: Number) -> "LinExpr":
        if isinstance(scalar, LinExpr):
            raise TypeError("LinExpr supports only multiplication by constants")
        return LinExpr({name: coeff * scalar for name, coeff in self.coeffs.items()}, self.const * scalar)

    __rmul__ = __mul__

    def __neg__(self) -> "LinExpr":
        return self * -1

    # -- queries ---------------------------------------------------------
    def variables(self) -> Tuple[str, ...]:
        """Return the variables occurring with a non-zero coefficient."""
        return tuple(sorted(self.coeffs))

    def is_constant(self) -> bool:
        return not self.coeffs

    def evaluate(self, assignment: Mapping[str, Number]) -> Number:
        """Evaluate the expression under a (total) variable assignment."""
        value: Number = self.const
        for name, coeff in self.coeffs.items():
            value += coeff * assignment[name]
        return value

    def substitute(self, mapping: Mapping[str, "LinExpr"]) -> "LinExpr":
        """Substitute variables by expressions.

        Single-pass dict merge: this is the inner loop of the equality
        elimination passes (thousands of calls per theory check), where the
        naive ``result + term`` chain allocates one intermediate expression
        per variable.
        """
        coeffs: Dict[str, Number] = {}
        const = self.const
        for name, coeff in self.coeffs.items():
            replacement = mapping.get(name)
            if replacement is None:
                coeffs[name] = coeffs.get(name, 0) + coeff
            else:
                const += replacement.const * coeff
                for inner, inner_coeff in replacement.coeffs.items():
                    coeffs[inner] = coeffs.get(inner, 0) + inner_coeff * coeff
        return LinExpr(coeffs, const)

    # -- misc -------------------------------------------------------------
    def key(self) -> Tuple:
        """A hashable canonical key (used for atom deduplication).

        The key is computed once and cached: atom deduplication in the
        incremental CNF builder and slack-row reuse in the simplex hash the
        same expressions over and over.
        """
        if self._key is None:
            self._key = (tuple(sorted(self.coeffs.items())), self.const)
        return self._key

    def __eq__(self, other: object) -> bool:
        return isinstance(other, LinExpr) and self.key() == other.key()

    def __hash__(self) -> int:
        return hash(self.key())

    def __repr__(self) -> str:
        parts: List[str] = []
        for name in sorted(self.coeffs):
            coeff = self.coeffs[name]
            parts.append(f"{coeff}*{name}" if coeff != 1 else name)
        if self.const or not parts:
            parts.append(str(self.const))
        return " + ".join(parts)


# ----------------------------------------------------------------------
# Formulae
# ----------------------------------------------------------------------
class Formula:
    """Base class of LIA formulae."""

    def variables(self) -> Tuple[str, ...]:  # pragma: no cover - overridden
        raise NotImplementedError

    def __and__(self, other: "Formula") -> "Formula":
        return conj([self, other])

    def __or__(self, other: "Formula") -> "Formula":
        return disj([self, other])

    def __invert__(self) -> "Formula":
        return neg(self)


@dataclass(frozen=True)
class BoolConst(Formula):
    """The constants ``true`` / ``false``."""

    value: bool

    def variables(self) -> Tuple[str, ...]:
        return ()

    def __repr__(self) -> str:
        return "true" if self.value else "false"


TRUE = BoolConst(True)
FALSE = BoolConst(False)


@dataclass(frozen=True)
class Le(Formula):
    """The atom ``expr <= 0``."""

    expr: LinExpr

    def variables(self) -> Tuple[str, ...]:
        return self.expr.variables()

    def __repr__(self) -> str:
        return f"({self.expr} <= 0)"


@dataclass(frozen=True)
class Eq(Formula):
    """The atom ``expr = 0``."""

    expr: LinExpr

    def variables(self) -> Tuple[str, ...]:
        return self.expr.variables()

    def __repr__(self) -> str:
        return f"({self.expr} = 0)"


@dataclass(frozen=True)
class And(Formula):
    """Conjunction."""

    args: Tuple[Formula, ...]

    def variables(self) -> Tuple[str, ...]:
        seen = set()
        for arg in self.args:
            seen.update(arg.variables())
        return tuple(sorted(seen))

    def __repr__(self) -> str:
        return "(and " + " ".join(map(repr, self.args)) + ")"


@dataclass(frozen=True)
class Or(Formula):
    """Disjunction."""

    args: Tuple[Formula, ...]

    def variables(self) -> Tuple[str, ...]:
        seen = set()
        for arg in self.args:
            seen.update(arg.variables())
        return tuple(sorted(seen))

    def __repr__(self) -> str:
        return "(or " + " ".join(map(repr, self.args)) + ")"


@dataclass(frozen=True)
class Not(Formula):
    """Negation."""

    arg: Formula

    def variables(self) -> Tuple[str, ...]:
        return self.arg.variables()

    def __repr__(self) -> str:
        return f"(not {self.arg!r})"


@dataclass(frozen=True)
class Implies(Formula):
    """Implication ``antecedent -> consequent``."""

    antecedent: Formula
    consequent: Formula

    def variables(self) -> Tuple[str, ...]:
        return tuple(sorted(set(self.antecedent.variables()) | set(self.consequent.variables())))

    def __repr__(self) -> str:
        return f"(=> {self.antecedent!r} {self.consequent!r})"


@dataclass(frozen=True)
class Iff(Formula):
    """Bi-implication."""

    left: Formula
    right: Formula

    def variables(self) -> Tuple[str, ...]:
        return tuple(sorted(set(self.left.variables()) | set(self.right.variables())))

    def __repr__(self) -> str:
        return f"(= {self.left!r} {self.right!r})"


@dataclass(frozen=True)
class Exists(Formula):
    """Existential quantification over integer variables."""

    bound: Tuple[str, ...]
    body: Formula

    def variables(self) -> Tuple[str, ...]:
        return tuple(sorted(set(self.body.variables()) - set(self.bound)))

    def __repr__(self) -> str:
        return f"(exists ({' '.join(self.bound)}) {self.body!r})"


@dataclass(frozen=True)
class ForAll(Formula):
    """Universal quantification over integer variables."""

    bound: Tuple[str, ...]
    body: Formula

    def variables(self) -> Tuple[str, ...]:
        return tuple(sorted(set(self.body.variables()) - set(self.bound)))

    def __repr__(self) -> str:
        return f"(forall ({' '.join(self.bound)}) {self.body!r})"


# ----------------------------------------------------------------------
# Construction helpers
# ----------------------------------------------------------------------
def _as_expr(value: Union[LinExpr, Number, str]) -> LinExpr:
    if isinstance(value, LinExpr):
        return value
    if isinstance(value, str):
        return LinExpr.var(value)
    return LinExpr.constant(value)


def var(name: str) -> LinExpr:
    """Return the linear expression for the integer variable ``name``."""
    return LinExpr.var(name)


def const(value: Number) -> LinExpr:
    """Return a constant linear expression."""
    return LinExpr.constant(value)


def le(left: Union[LinExpr, Number, str], right: Union[LinExpr, Number, str]) -> Formula:
    """The atom ``left <= right``."""
    expr = _as_expr(left) - _as_expr(right)
    if expr.is_constant():
        return TRUE if expr.const <= 0 else FALSE
    return Le(expr)


def ge(left: Union[LinExpr, Number, str], right: Union[LinExpr, Number, str]) -> Formula:
    """The atom ``left >= right``."""
    return le(right, left)


def lt(left: Union[LinExpr, Number, str], right: Union[LinExpr, Number, str]) -> Formula:
    """The atom ``left < right`` (over the integers: ``left <= right - 1``)."""
    return le(_as_expr(left) + 1, right)


def gt(left: Union[LinExpr, Number, str], right: Union[LinExpr, Number, str]) -> Formula:
    """The atom ``left > right``."""
    return lt(right, left)


def eq(left: Union[LinExpr, Number, str], right: Union[LinExpr, Number, str]) -> Formula:
    """The atom ``left = right``."""
    expr = _as_expr(left) - _as_expr(right)
    if expr.is_constant():
        return TRUE if expr.const == 0 else FALSE
    return Eq(expr)


def ne(left: Union[LinExpr, Number, str], right: Union[LinExpr, Number, str]) -> Formula:
    """The formula ``left != right`` (expanded to a disjunction of strict inequalities)."""
    expr = _as_expr(left) - _as_expr(right)
    if expr.is_constant():
        return TRUE if expr.const != 0 else FALSE
    return disj([lt(expr, 0), gt(expr, 0)])


def conj(args: Sequence[Formula]) -> Formula:
    """N-ary conjunction with constant folding and flattening."""
    flattened: List[Formula] = []
    for arg in args:
        if isinstance(arg, BoolConst):
            if not arg.value:
                return FALSE
            continue
        if isinstance(arg, And):
            flattened.extend(arg.args)
        else:
            flattened.append(arg)
    if not flattened:
        return TRUE
    if len(flattened) == 1:
        return flattened[0]
    return And(tuple(flattened))


def disj(args: Sequence[Formula]) -> Formula:
    """N-ary disjunction with constant folding and flattening."""
    flattened: List[Formula] = []
    for arg in args:
        if isinstance(arg, BoolConst):
            if arg.value:
                return TRUE
            continue
        if isinstance(arg, Or):
            flattened.extend(arg.args)
        else:
            flattened.append(arg)
    if not flattened:
        return FALSE
    if len(flattened) == 1:
        return flattened[0]
    return Or(tuple(flattened))


def neg(arg: Formula) -> Formula:
    """Negation with constant folding and double-negation elimination."""
    if isinstance(arg, BoolConst):
        return FALSE if arg.value else TRUE
    if isinstance(arg, Not):
        return arg.arg
    return Not(arg)


def implies(antecedent: Formula, consequent: Formula) -> Formula:
    """Implication with constant folding."""
    if isinstance(antecedent, BoolConst):
        return consequent if antecedent.value else TRUE
    if isinstance(consequent, BoolConst):
        return TRUE if consequent.value else neg(antecedent)
    return Implies(antecedent, consequent)


def iff(left: Formula, right: Formula) -> Formula:
    """Bi-implication with constant folding."""
    if isinstance(left, BoolConst):
        return right if left.value else neg(right)
    if isinstance(right, BoolConst):
        return left if right.value else neg(left)
    return Iff(left, right)


def exists(names: Sequence[str], body: Formula) -> Formula:
    """Existential quantification (skipped when no variable is bound)."""
    names = tuple(names)
    if not names:
        return body
    return Exists(names, body)


def forall(names: Sequence[str], body: Formula) -> Formula:
    """Universal quantification (skipped when no variable is bound)."""
    names = tuple(names)
    if not names:
        return body
    return ForAll(names, body)


def evaluate(formula: Formula, assignment: Mapping[str, Number]) -> bool:
    """Evaluate a quantifier-free formula under a total assignment."""
    if isinstance(formula, BoolConst):
        return formula.value
    if isinstance(formula, Le):
        return formula.expr.evaluate(assignment) <= 0
    if isinstance(formula, Eq):
        return formula.expr.evaluate(assignment) == 0
    if isinstance(formula, And):
        return all(evaluate(arg, assignment) for arg in formula.args)
    if isinstance(formula, Or):
        return any(evaluate(arg, assignment) for arg in formula.args)
    if isinstance(formula, Not):
        return not evaluate(formula.arg, assignment)
    if isinstance(formula, Implies):
        return (not evaluate(formula.antecedent, assignment)) or evaluate(formula.consequent, assignment)
    if isinstance(formula, Iff):
        return evaluate(formula.left, assignment) == evaluate(formula.right, assignment)
    raise TypeError(f"cannot evaluate quantified formula {formula!r}")


def substitute(formula: Formula, mapping: Mapping[str, LinExpr]) -> Formula:
    """Substitute variables by linear expressions throughout a formula."""
    if isinstance(formula, BoolConst):
        return formula
    if isinstance(formula, Le):
        expr = formula.expr.substitute(mapping)
        if expr.is_constant():
            return TRUE if expr.const <= 0 else FALSE
        return Le(expr)
    if isinstance(formula, Eq):
        expr = formula.expr.substitute(mapping)
        if expr.is_constant():
            return TRUE if expr.const == 0 else FALSE
        return Eq(expr)
    if isinstance(formula, And):
        return conj([substitute(arg, mapping) for arg in formula.args])
    if isinstance(formula, Or):
        return disj([substitute(arg, mapping) for arg in formula.args])
    if isinstance(formula, Not):
        return neg(substitute(formula.arg, mapping))
    if isinstance(formula, Implies):
        return implies(substitute(formula.antecedent, mapping), substitute(formula.consequent, mapping))
    if isinstance(formula, Iff):
        return iff(substitute(formula.left, mapping), substitute(formula.right, mapping))
    if isinstance(formula, Exists):
        inner = {k: v for k, v in mapping.items() if k not in formula.bound}
        return Exists(formula.bound, substitute(formula.body, inner))
    if isinstance(formula, ForAll):
        inner = {k: v for k, v in mapping.items() if k not in formula.bound}
        return ForAll(formula.bound, substitute(formula.body, inner))
    raise TypeError(f"unsupported formula {formula!r}")


def formula_size(formula: Formula) -> int:
    """Return the number of AST nodes (used for the size claims in tests)."""
    if isinstance(formula, (BoolConst, Le, Eq)):
        return 1
    if isinstance(formula, And) or isinstance(formula, Or):
        return 1 + sum(formula_size(arg) for arg in formula.args)
    if isinstance(formula, Not):
        return 1 + formula_size(formula.arg)
    if isinstance(formula, Implies):
        return 1 + formula_size(formula.antecedent) + formula_size(formula.consequent)
    if isinstance(formula, Iff):
        return 1 + formula_size(formula.left) + formula_size(formula.right)
    if isinstance(formula, (Exists, ForAll)):
        return 1 + formula_size(formula.body)
    raise TypeError(f"unsupported formula {formula!r}")
