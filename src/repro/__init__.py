"""repro — reproduction of "A Uniform Framework for Handling Position
Constraints in String Solving" (PLDI 2025).

Public API highlights:

* :class:`repro.solver.PositionSolver` — the string solver with the paper's
  position-constraint decision procedure (the Z3-Noodler-pos analogue),
* :class:`repro.solver.EagerReductionSolver` and
  :class:`repro.solver.EnumerativeSolver` — the comparison baselines,
* :mod:`repro.strings` — the constraint AST (``Problem``, ``WordEquation``,
  ``Contains``, ...),
* :mod:`repro.core` — the tag-automaton encodings themselves,
* :mod:`repro.automata` and :mod:`repro.lia` — the NFA and LIA substrates,
* :mod:`repro.benchgen` — benchmark generators and the evaluation harness.

Quick start::

    from repro import Problem, PositionSolver, RegexMembership, WordEquation, term

    problem = Problem(alphabet=tuple("ab"))
    problem.add(RegexMembership("x", "(ab)*"))
    problem.add(RegexMembership("y", "(a|b)*b"))
    problem.add(WordEquation(term("x"), term("y"), positive=False))  # x != y
    result = PositionSolver().check(problem)
    print(result.status, result.model.strings if result.model else None)
"""

from .solver import (
    EagerReductionSolver,
    EnumerativeSolver,
    PositionSolver,
    SolveResult,
    SolverConfig,
    Status,
    StringModel,
    brute_force_check,
)
from .strings import (
    Contains,
    LengthConstraint,
    PrefixOf,
    Problem,
    RegexMembership,
    StrAtAtom,
    StringLiteral,
    StringVar,
    SuffixOf,
    WordEquation,
    lit,
    str_len,
    term,
)

__version__ = "1.0.0"

__all__ = [
    "PositionSolver",
    "EagerReductionSolver",
    "EnumerativeSolver",
    "SolverConfig",
    "SolveResult",
    "Status",
    "StringModel",
    "brute_force_check",
    "Problem",
    "WordEquation",
    "RegexMembership",
    "PrefixOf",
    "SuffixOf",
    "Contains",
    "StrAtAtom",
    "LengthConstraint",
    "StringVar",
    "StringLiteral",
    "term",
    "lit",
    "str_len",
    "__version__",
]
