"""repro — reproduction of "A Uniform Framework for Handling Position
Constraints in String Solving" (PLDI 2025).

Public API highlights:

* :class:`repro.Session` — the incremental session API
  (``add``/``push``/``pop``/``check``/``model``/``unsat_core``), the
  recommended driver for chains of related checks,
* :class:`repro.solver.PositionSolver` — the classic one-shot interface to
  the paper's position-constraint decision procedure (the Z3-Noodler-pos
  analogue; a thin wrapper over a throwaway session),
* :class:`repro.solver.EagerReductionSolver` and
  :class:`repro.solver.EnumerativeSolver` — the comparison baselines,
* :mod:`repro.strings` — the constraint AST (``Problem``, ``WordEquation``,
  ``Contains``, ..., plus the extended ``SubstrAtom`` / ``IndexOfAtom`` /
  ``ReplaceAtom`` compiled away by :mod:`repro.strings.reductions`),
* :mod:`repro.smtlib` — the SMT-LIB 2.6 QF_SLIA frontend
  (``parse_script``/``parse_problem``/``problem_to_smtlib`` and the
  ``python -m repro.smtlib`` command-line runner; ``str.substr`` /
  ``str.indexof`` / ``str.replace`` and ``re.inter`` / ``re.comp`` are
  covered),
* :mod:`repro.core` — the tag-automaton encodings themselves,
* :mod:`repro.automata` and :mod:`repro.lia` — the NFA and LIA substrates,
* :mod:`repro.benchgen` — benchmark generators and the evaluation harness.

Quick start::

    from repro import RegexMembership, Session, WordEquation, term

    session = Session(alphabet=tuple("ab"))
    session.add(RegexMembership("x", "(ab)*"))
    session.add(RegexMembership("y", "(a|b)*b"))
    session.push()
    session.add(WordEquation(term("x"), term("y"), positive=False))  # x != y
    result = session.check()
    print(result.status, session.model().strings if result.is_sat else None)
    session.pop()  # back to the memberships alone
"""

from .budget import Budget, BudgetExceeded, UnknownKind, UnknownReason
from .solver import (
    EagerReductionSolver,
    EnumerativeSolver,
    PositionSolver,
    Session,
    SolveResult,
    SolverConfig,
    Status,
    StringModel,
    brute_force_check,
)
from .strings import (
    Contains,
    IndexOfAtom,
    LengthConstraint,
    PrefixOf,
    Problem,
    RegexMembership,
    ReplaceAtom,
    StrAtAtom,
    StringLiteral,
    StringVar,
    SubstrAtom,
    SuffixOf,
    WordEquation,
    lit,
    str_len,
    term,
)

__version__ = "1.0.0"

__all__ = [
    "Budget",
    "BudgetExceeded",
    "UnknownKind",
    "UnknownReason",
    "Session",
    "PositionSolver",
    "EagerReductionSolver",
    "EnumerativeSolver",
    "SolverConfig",
    "SolveResult",
    "Status",
    "StringModel",
    "brute_force_check",
    "Problem",
    "WordEquation",
    "RegexMembership",
    "PrefixOf",
    "SuffixOf",
    "Contains",
    "StrAtAtom",
    "SubstrAtom",
    "IndexOfAtom",
    "ReplaceAtom",
    "LengthConstraint",
    "StringVar",
    "StringLiteral",
    "term",
    "lit",
    "str_len",
    "__version__",
]
