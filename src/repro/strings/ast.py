"""Abstract syntax of string constraints (the input language of the solver).

The fragment follows §2 of the paper: string terms are concatenations of
variables and literals; atomic constraints are word equations, regular
memberships, integer (length) constraints and the predicates ``prefixof``,
``suffixof``, ``contains`` and ``str.at`` — each possibly negated.  A
*problem* is a conjunction of such atoms (the DPLL(T) integration of a full
Boolean structure is out of scope; the benchmark generators emit
conjunctions, as the paper's normal form does).

On top of the core sit the *extended* atoms for the SMT-LIB 2.6
extraction functions — :class:`SubstrAtom`, :class:`IndexOfAtom`,
:class:`ReplaceAtom` (see :data:`EXTENDED_ATOMS`).  They are definitional
(``target = f(args)``, possibly negated) and are compiled into the core
by :mod:`repro.strings.reductions` before solving.

Integer constraints are ordinary :mod:`repro.lia` formulae; the length of a
string variable ``x`` is referred to through the reserved LIA variable
returned by :func:`str_len`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from ..automata.nfa import Nfa
from ..lia import Formula as LiaFormula
from ..lia import LinExpr


# ----------------------------------------------------------------------
# String terms
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class StringVar:
    """A string variable occurrence."""

    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class StringLiteral:
    """A constant word."""

    value: str

    def __str__(self) -> str:
        return f'"{self.value}"'


TermElement = Union[StringVar, StringLiteral]
#: A string term is a concatenation of variables and literals.
StringTerm = Tuple[TermElement, ...]


def term(*elements: Union[str, TermElement]) -> StringTerm:
    """Build a string term; bare ``str`` arguments are variables."""
    result: List[TermElement] = []
    for element in elements:
        if isinstance(element, (StringVar, StringLiteral)):
            result.append(element)
        else:
            result.append(StringVar(element))
    return tuple(result)


def lit(value: str) -> StringLiteral:
    """A string literal element."""
    return StringLiteral(value)


def term_variables(string_term: StringTerm) -> Tuple[str, ...]:
    """The variables occurring in a term, in order, without duplicates."""
    seen: Dict[str, None] = {}
    for element in string_term:
        if isinstance(element, StringVar):
            seen.setdefault(element.name, None)
    return tuple(seen)


def term_to_str(string_term: StringTerm) -> str:
    return " . ".join(str(e) for e in string_term) if string_term else '""'


def str_len(name: str) -> LinExpr:
    """The LIA expression standing for ``len(name)`` in integer constraints."""
    return LinExpr.var(length_variable(name))


def length_variable(name: str) -> str:
    """The reserved LIA variable name carrying the length of string variable ``name``."""
    return f"@len.{name}"


# ----------------------------------------------------------------------
# Atoms
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class WordEquation:
    """``lhs = rhs`` (or ``lhs ≠ rhs`` when ``positive`` is false)."""

    lhs: StringTerm
    rhs: StringTerm
    positive: bool = True

    def __str__(self) -> str:
        op = "=" if self.positive else "≠"
        return f"{term_to_str(self.lhs)} {op} {term_to_str(self.rhs)}"


@dataclass(frozen=True)
class RegexMembership:
    """``x ∈ L`` (or ``x ∉ L``); the language is given as a regex or an NFA."""

    var: str
    language: Union[str, Nfa]
    positive: bool = True

    def __str__(self) -> str:
        op = "∈" if self.positive else "∉"
        language = self.language if isinstance(self.language, str) else "<nfa>"
        return f"{self.var} {op} {language}"


@dataclass(frozen=True)
class PrefixOf:
    """``prefixof(lhs, rhs)`` (or its negation)."""

    lhs: StringTerm
    rhs: StringTerm
    positive: bool = True

    def __str__(self) -> str:
        sign = "" if self.positive else "¬"
        return f"{sign}prefixof({term_to_str(self.lhs)}, {term_to_str(self.rhs)})"


@dataclass(frozen=True)
class SuffixOf:
    """``suffixof(lhs, rhs)`` (or its negation)."""

    lhs: StringTerm
    rhs: StringTerm
    positive: bool = True

    def __str__(self) -> str:
        sign = "" if self.positive else "¬"
        return f"{sign}suffixof({term_to_str(self.lhs)}, {term_to_str(self.rhs)})"


@dataclass(frozen=True)
class Contains:
    """``contains(needle, haystack)`` (or its negation).

    Note the argument order follows the paper (Fig. 1): the first argument is
    the needle that occurs (or not) inside the second argument.  The SMT-LIB
    operator ``str.contains`` has the opposite order; the parser swaps it.
    """

    needle: StringTerm
    haystack: StringTerm
    positive: bool = True

    def __str__(self) -> str:
        sign = "" if self.positive else "¬"
        return f"{sign}contains({term_to_str(self.needle)}, {term_to_str(self.haystack)})"


@dataclass(frozen=True)
class StrAtAtom:
    """``target = str.at(haystack, index)`` (or its negation)."""

    target: TermElement
    haystack: StringTerm
    index: LinExpr
    positive: bool = True

    def __str__(self) -> str:
        op = "=" if self.positive else "≠"
        return f"{self.target} {op} str.at({term_to_str(self.haystack)}, {self.index})"


@dataclass(frozen=True)
class SubstrAtom:
    """``target = str.substr(haystack, offset, length)`` (or its negation).

    Semantics follow SMT-LIB 2.6: when ``0 <= offset < |haystack|`` and
    ``length > 0`` the right-hand side is the word of length
    ``min(length, |haystack| - offset)`` starting at ``offset``; otherwise
    it is the empty word.  The atom is *extended* — the solver pipeline
    compiles it away via :mod:`repro.strings.reductions` before the
    conjunctive core ever sees it.
    """

    target: StringTerm
    haystack: StringTerm
    offset: LinExpr
    length: LinExpr
    positive: bool = True

    def __str__(self) -> str:
        op = "=" if self.positive else "≠"
        return (
            f"{term_to_str(self.target)} {op} "
            f"str.substr({term_to_str(self.haystack)}, {self.offset}, {self.length})"
        )


@dataclass(frozen=True)
class IndexOfAtom:
    """``result = str.indexof(haystack, needle, offset)`` (or its negation).

    Semantics follow SMT-LIB 2.6: when ``0 <= offset <= |haystack|`` and the
    needle occurs in the haystack at or after ``offset``, the right-hand
    side is the smallest such occurrence position (the empty needle occurs
    at every position, so its index is ``offset``); otherwise it is ``-1``.
    ``result`` is an arbitrary linear integer expression.  Extended atom —
    reduced away by :mod:`repro.strings.reductions`.
    """

    result: LinExpr
    haystack: StringTerm
    needle: StringTerm
    offset: LinExpr
    positive: bool = True

    def __str__(self) -> str:
        op = "=" if self.positive else "≠"
        return (
            f"{self.result} {op} str.indexof({term_to_str(self.haystack)}, "
            f"{term_to_str(self.needle)}, {self.offset})"
        )


@dataclass(frozen=True)
class ReplaceAtom:
    """``target = str.replace(haystack, needle, replacement)`` (or its negation).

    Semantics follow SMT-LIB 2.6: the first occurrence of the needle in the
    haystack is replaced by the replacement; if the needle does not occur
    the haystack is returned unchanged (the empty needle occurs at position
    0, so the result is then ``replacement ++ haystack``).  Extended atom —
    reduced away by :mod:`repro.strings.reductions`.
    """

    target: StringTerm
    haystack: StringTerm
    needle: StringTerm
    replacement: StringTerm
    positive: bool = True

    def __str__(self) -> str:
        op = "=" if self.positive else "≠"
        return (
            f"{term_to_str(self.target)} {op} str.replace({term_to_str(self.haystack)}, "
            f"{term_to_str(self.needle)}, {term_to_str(self.replacement)})"
        )


@dataclass(frozen=True)
class LengthConstraint:
    """An integer-arithmetic constraint (a :mod:`repro.lia` formula).

    Lengths of string variables are referred to via :func:`str_len`.
    """

    formula: LiaFormula

    def __str__(self) -> str:
        return f"lia[{self.formula!r}]"


Atom = Union[
    WordEquation,
    RegexMembership,
    PrefixOf,
    SuffixOf,
    Contains,
    StrAtAtom,
    SubstrAtom,
    IndexOfAtom,
    ReplaceAtom,
    LengthConstraint,
]

#: atoms outside the conjunctive core; :mod:`repro.strings.reductions`
#: compiles them into word equations, LIA guards and ¬contains side
#: conditions before the solver pipeline runs
EXTENDED_ATOMS = (SubstrAtom, IndexOfAtom, ReplaceAtom)


def term_length(string_term: StringTerm) -> LinExpr:
    """The length of a string term as a LIA expression (``@len`` variables
    for the variables, constants for the literals)."""
    total = LinExpr.constant(0)
    for element in string_term:
        if isinstance(element, StringVar):
            total = total + str_len(element.name)
        else:
            total = total + len(element.value)
    return total


# ----------------------------------------------------------------------
# Problems (conjunctions of atoms)
# ----------------------------------------------------------------------
@dataclass
class Problem:
    """A conjunction of string-constraint atoms together with its alphabet."""

    atoms: List[Atom] = field(default_factory=list)
    alphabet: Tuple[str, ...] = tuple("ab")
    name: str = ""

    def add(self, atom: Atom) -> "Problem":
        self.atoms.append(atom)
        return self

    def string_variables(self) -> Tuple[str, ...]:
        seen: Dict[str, None] = {}
        for atom in self.atoms:
            for name in atom_string_variables(atom):
                seen.setdefault(name, None)
        return tuple(seen)

    def integer_variables(self) -> Tuple[str, ...]:
        seen: Dict[str, None] = {}
        for atom in self.atoms:
            for name in atom_integer_variables(atom):
                seen.setdefault(name, None)
        return tuple(seen)

    def __str__(self) -> str:
        return " ∧ ".join(str(atom) for atom in self.atoms)


def _length_referenced(expr: LinExpr) -> Tuple[str, ...]:
    """String variables an integer expression refers to via ``@len.``."""
    return tuple(
        name[len("@len.") :] for name in expr.variables() if name.startswith("@len.")
    )


def atom_string_variables(atom: Atom) -> Tuple[str, ...]:
    """String variables of one atom."""
    if isinstance(atom, WordEquation):
        return tuple(dict.fromkeys(term_variables(atom.lhs) + term_variables(atom.rhs)))
    if isinstance(atom, RegexMembership):
        return (atom.var,)
    if isinstance(atom, (PrefixOf, SuffixOf)):
        return tuple(dict.fromkeys(term_variables(atom.lhs) + term_variables(atom.rhs)))
    if isinstance(atom, Contains):
        return tuple(dict.fromkeys(term_variables(atom.needle) + term_variables(atom.haystack)))
    if isinstance(atom, StrAtAtom):
        target = (atom.target.name,) if isinstance(atom.target, StringVar) else ()
        return tuple(dict.fromkeys(target + term_variables(atom.haystack)))
    if isinstance(atom, SubstrAtom):
        names = term_variables(atom.target) + term_variables(atom.haystack)
        names += _length_referenced(atom.offset) + _length_referenced(atom.length)
        return tuple(dict.fromkeys(names))
    if isinstance(atom, IndexOfAtom):
        names = term_variables(atom.haystack) + term_variables(atom.needle)
        names += _length_referenced(atom.result) + _length_referenced(atom.offset)
        return tuple(dict.fromkeys(names))
    if isinstance(atom, ReplaceAtom):
        return tuple(
            dict.fromkeys(
                term_variables(atom.target)
                + term_variables(atom.haystack)
                + term_variables(atom.needle)
                + term_variables(atom.replacement)
            )
        )
    if isinstance(atom, LengthConstraint):
        names = []
        for variable in atom.formula.variables():
            if variable.startswith("@len."):
                names.append(variable[len("@len.") :])
        return tuple(dict.fromkeys(names))
    raise TypeError(f"unknown atom {atom!r}")


def atom_integer_variables(atom: Atom) -> Tuple[str, ...]:
    """Integer variables of one atom (excluding reserved length variables)."""
    if isinstance(atom, StrAtAtom):
        return atom.index.variables()
    if isinstance(atom, SubstrAtom):
        names = atom.offset.variables() + atom.length.variables()
        return tuple(dict.fromkeys(v for v in names if not v.startswith("@len.")))
    if isinstance(atom, IndexOfAtom):
        names = atom.result.variables() + atom.offset.variables()
        return tuple(dict.fromkeys(v for v in names if not v.startswith("@len.")))
    if isinstance(atom, ReplaceAtom):
        return ()
    if isinstance(atom, LengthConstraint):
        return tuple(v for v in atom.formula.variables() if not v.startswith("@len."))
    return ()
