"""Reduction of the extended string functions to the conjunctive core.

The solver's conjunctive fragment (word equations, regular memberships,
LIA length constraints, position predicates) does not contain
``str.substr``, ``str.indexof`` or ``str.replace``.  This module compiles
the extended atoms of :mod:`repro.strings.ast` away *before* the pipeline
runs, following the classical definitional reductions:

* ``t = str.substr(s, i, n)`` introduces fresh variables ``p r q`` with
  ``s = p ++ r ++ q`` and links ``t`` to ``r``; a pure-LIA guard encodes
  the SMT-LIB 2.6 range analysis — inside the range ``|p| = i`` and
  ``|r| = min(n, |s| - i)`` (the ``min`` is a LIA disjunction), outside it
  ``|r| = 0``.  One case, because the equation ``s = p ++ r ++ q`` holds in
  every situation and only the lengths move.
* ``k = str.indexof(s, t, i)`` genuinely changes the *string* structure
  between its situations, which a single conjunction cannot express; the
  reduction therefore emits **alternative case conjunctions** whose
  semantic situations partition all models: needle empty and offset valid
  (``k = i``), first occurrence found (``s = a ++ x ++ t ++ y`` with
  ``|a| = i``, ``k = i + |x|`` and the first-occurrence side condition
  ``¬contains(t, x ++ u)`` where ``t = u ++ c``, ``|c| = 1``), no
  occurrence at or after a valid offset (``s = a ++ w``, ``|a| = i``,
  ``¬contains(t, w)``, ``k = -1``), and an out-of-range offset
  (``k = -1``).
* ``r = str.replace(s, t, t')`` composes the same ideas: needle empty
  (``r = t' ++ s``), first occurrence replaced (``s = x ++ t ++ y``,
  ``r = x ++ t' ++ y``, ``¬contains(t, x ++ u)``), or needle absent
  (``¬contains(t, s)``, ``r = s``).

Every case *forces* the defined value in any of its models (the reduction
is definitional), so occurrences under negative polarity are handled by
flipping only the linking atom.  For **literal** needles the
(non-)containment side conditions become regular constraints
(``window ∉ Σ*·t·Σ*``) — exact for any haystack language; variable
needles keep the ``¬contains`` predicate and inherit the MBQI procedure's
flat-language limit (beyond it the solver answers ``unknown``).  A
syntactically empty needle collapses the case split outright.  A problem with several extended atoms
expands into the product of their cases; :func:`reduce_problem` returns
one :class:`ReducedCase` per member of the product, each carrying
provenance (reduced-atom index → input-atom index) so unsat cores map back
to the user's assertions, plus the set of fresh variables to strip from
reported models.

The expansion is exact: the input problem is satisfiable iff at least one
case is, and every model of a case restricted to the input variables is a
model of the input problem (the pipeline still re-verifies reported models
against the original atoms through :mod:`repro.strings.semantics`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, List, Set, Tuple

from ..automata.regex import escape as regex_escape
from ..budget import checkpoint
from ..lia import FALSE, BoolConst, conj, disj, eq, ge, gt, implies, le, lt, ne, neg
from .ast import (
    Atom,
    Contains,
    EXTENDED_ATOMS,
    IndexOfAtom,
    LengthConstraint,
    Problem,
    RegexMembership,
    ReplaceAtom,
    StringLiteral,
    StringTerm,
    StringVar,
    SubstrAtom,
    WordEquation,
    str_len,
    term_length,
)


class ReductionError(ValueError):
    """Raised when a problem's case expansion exceeds the configured cap."""


@dataclass
class ReducedCase:
    """One case conjunction of the expansion, over core atoms only."""

    problem: Problem
    #: per atom of ``problem``: the index of the input atom it came from
    provenance: Tuple[int, ...]
    #: variables introduced by the reduction (strip them from models)
    fresh_variables: FrozenSet[str]


def needs_reduction(problem: Problem) -> bool:
    """Does the problem contain extended atoms the core cannot take?"""
    return any(isinstance(atom, EXTENDED_ATOMS) for atom in problem.atoms)


def _sv(name: str) -> Tuple[StringVar]:
    return (StringVar(name),)


def _literal_word(string_term: StringTerm) -> "str | None":
    """The constant word a variable-free term denotes, ``None`` otherwise."""
    parts: List[str] = []
    for element in string_term:
        if isinstance(element, StringVar):
            return None
        parts.append(element.value)
    return "".join(parts)


class _Reducer:
    def __init__(self, problem: Problem) -> None:
        self._used: Set[str] = set(problem.string_variables())
        self._used.update(problem.integer_variables())
        self._counter = 0
        self.fresh_names: Set[str] = set()

    def fresh(self, *roles: str) -> List[str]:
        """Fresh string variables for one occurrence (collision-checked)."""
        while True:
            names = [f".r{self._counter}.{role}" for role in roles]
            self._counter += 1
            if all(name not in self._used for name in names):
                break
        self._used.update(names)
        self.fresh_names.update(names)
        return names

    def not_containing(
        self,
        needle: StringTerm,
        needle_word: "str | None",
        haystack: StringTerm,
    ) -> List[Atom]:
        """Atoms asserting the needle does not occur in the haystack term.

        A *literal* needle ``w`` is encoded as the regular constraint
        ``haystack ∉ Σ*·w·Σ*`` (through a fresh variable when the haystack
        is a concatenation) — exact and MBQI-free for any haystack
        language.  A needle with variables falls back to the ``¬contains``
        position predicate, whose model-based instantiation procedure is
        exact on flat languages only (the pipeline answers ``unknown``
        rather than guessing beyond them).
        """
        if needle_word is None:
            return [Contains(needle, haystack, positive=False)]
        pattern = f".*{regex_escape(needle_word)}.*"
        if len(haystack) == 1 and isinstance(haystack[0], StringVar):
            return [RegexMembership(haystack[0].name, pattern, positive=False)]
        (z,) = self.fresh("z")
        return [
            WordEquation(_sv(z), haystack),
            RegexMembership(z, pattern, positive=False),
        ]

    # -- per-atom case alternatives ------------------------------------
    def alternatives(self, atom: Atom) -> List[List[Atom]]:
        """The case conjunctions (each a list of core atoms) of one atom."""
        if isinstance(atom, SubstrAtom):
            return [self._substr(atom)]
        if isinstance(atom, IndexOfAtom):
            return self._indexof(atom)
        if isinstance(atom, ReplaceAtom):
            return self._replace(atom)
        if isinstance(atom, Contains) and not atom.positive:
            # Reduced problems put their extraction variables in *universal*
            # languages, where the core's ¬contains instantiation procedure
            # is inexact (flat languages only).  A literal needle has the
            # exact regular encoding instead; rewriting it here keeps the
            # core path untouched for problems without extended atoms.
            word = _literal_word(atom.needle)
            if word == "":
                return [[LengthConstraint(FALSE)]]
            if word is not None:
                return [self.not_containing(atom.needle, word, atom.haystack)]
        return [[atom]]

    def _substr(self, atom: SubstrAtom) -> List[Atom]:
        p, r, q = self.fresh("p", "r", "q")
        haystack_len = term_length(atom.haystack)
        offset, length = atom.offset, atom.length
        in_range = conj([ge(offset, 0), lt(offset, haystack_len), ge(length, 1)])
        # |r| = min(length, |s| - offset) as a disjunction of the two arms
        taken = disj(
            [
                conj([eq(str_len(r), length), le(offset + length, haystack_len)]),
                conj([eq(str_len(r), haystack_len - offset), le(haystack_len, offset + length)]),
            ]
        )
        guard = conj(
            [
                implies(in_range, conj([eq(str_len(p), offset), taken])),
                implies(neg(in_range), eq(str_len(r), 0)),
            ]
        )
        return [
            WordEquation(atom.haystack, _sv(p) + _sv(r) + _sv(q)),
            LengthConstraint(guard),
            WordEquation(atom.target, _sv(r), positive=atom.positive),
        ]

    def _indexof(self, atom: IndexOfAtom) -> List[List[Atom]]:
        haystack_len = term_length(atom.haystack)
        needle_len = term_length(atom.needle)
        offset, result = atom.offset, atom.result

        def link(value) -> Atom:
            relation = eq if atom.positive else ne
            return LengthConstraint(relation(result, value))

        # Case 1 — empty needle, valid offset: the index is the offset.
        empty_found: List[Atom] = [
            LengthConstraint(
                conj([eq(needle_len, 0), ge(offset, 0), le(offset, haystack_len)])
            ),
            link(offset),
        ]

        # Case 4 — offset outside [0, |s|].
        out_of_range: List[Atom] = [
            LengthConstraint(disj([lt(offset, 0), gt(offset, haystack_len)])),
            link(-1),
        ]

        needle_word = _literal_word(atom.needle)
        if needle_word == "":
            # The occurrence cases below are infeasible for the empty word
            # (it occurs everywhere), so the case split collapses.
            return [empty_found, out_of_range]

        # Case 2 — non-empty needle, first occurrence at offset + |x|.
        # The first-occurrence side condition says the needle starts nowhere
        # in [offset, offset + |x|): every such occurrence lies inside the
        # window ``x ++ u`` where ``u`` drops the needle's last character.
        found: List[Atom]
        if needle_word is None:
            a, x, y, u, c = self.fresh("a", "x", "y", "u", "c")
            found = [
                WordEquation(atom.haystack, _sv(a) + _sv(x) + atom.needle + _sv(y)),
                WordEquation(atom.needle, _sv(u) + _sv(c)),
                Contains(atom.needle, _sv(x) + _sv(u), positive=False),
                LengthConstraint(
                    conj([ge(offset, 0), eq(str_len(a), offset), eq(str_len(c), 1)])
                ),
                link(offset + str_len(x)),
            ]
        else:
            a, x, y = self.fresh("a", "x", "y")
            dropped_last = needle_word[:-1]
            window = _sv(x) + ((StringLiteral(dropped_last),) if dropped_last else ())
            found = (
                [WordEquation(atom.haystack, _sv(a) + _sv(x) + atom.needle + _sv(y))]
                + self.not_containing(atom.needle, needle_word, window)
                + [
                    LengthConstraint(conj([ge(offset, 0), eq(str_len(a), offset)])),
                    link(offset + str_len(x)),
                ]
            )

        # Case 3 — valid offset but no occurrence at or after it.
        a2, w = self.fresh("a", "w")
        not_found: List[Atom] = (
            [WordEquation(atom.haystack, _sv(a2) + _sv(w))]
            + self.not_containing(atom.needle, needle_word, _sv(w))
            + [
                LengthConstraint(conj([ge(offset, 0), eq(str_len(a2), offset)])),
                link(-1),
            ]
        )
        return [empty_found, found, not_found, out_of_range]

    def _replace(self, atom: ReplaceAtom) -> List[List[Atom]]:
        # Case 1 — empty needle: prepend the replacement.
        empty_needle: List[Atom] = [
            LengthConstraint(eq(term_length(atom.needle), 0)),
            WordEquation(
                atom.target, atom.replacement + atom.haystack, positive=atom.positive
            ),
        ]
        needle_word = _literal_word(atom.needle)
        if needle_word == "":
            return [empty_needle]

        # Case 2 — the first occurrence is replaced.
        occurs: List[Atom]
        if needle_word is None:
            x, y, u, c = self.fresh("x", "y", "u", "c")
            occurs = [
                WordEquation(atom.haystack, _sv(x) + atom.needle + _sv(y)),
                WordEquation(atom.needle, _sv(u) + _sv(c)),
                Contains(atom.needle, _sv(x) + _sv(u), positive=False),
                LengthConstraint(eq(str_len(c), 1)),
                WordEquation(
                    atom.target,
                    _sv(x) + atom.replacement + _sv(y),
                    positive=atom.positive,
                ),
            ]
        else:
            x, y = self.fresh("x", "y")
            dropped_last = needle_word[:-1]
            window = _sv(x) + ((StringLiteral(dropped_last),) if dropped_last else ())
            occurs = (
                [WordEquation(atom.haystack, _sv(x) + atom.needle + _sv(y))]
                + self.not_containing(atom.needle, needle_word, window)
                + [
                    WordEquation(
                        atom.target,
                        _sv(x) + atom.replacement + _sv(y),
                        positive=atom.positive,
                    ),
                ]
            )

        # Case 3 — the needle does not occur: the haystack is unchanged.
        absent: List[Atom] = self.not_containing(
            atom.needle, needle_word, atom.haystack
        ) + [WordEquation(atom.target, atom.haystack, positive=atom.positive)]
        return [empty_needle, occurs, absent]


def _statically_false(atom: Atom) -> bool:
    """Did a case guard constant-fold to ``false``?  (Such a case is
    infeasible on its own and would otherwise still cost a decomposition —
    or even an ``unknown``, e.g. when its linking equation is periodic.)"""
    return (
        isinstance(atom, LengthConstraint)
        and isinstance(atom.formula, BoolConst)
        and not atom.formula.value
    )


def reduce_problem(problem: Problem, max_cases: int = 64) -> List[ReducedCase]:
    """Expand a problem with extended atoms into core-only case problems.

    Returns one :class:`ReducedCase` per member of the case product (a
    problem without extended atoms is returned as a single case unchanged).
    Raises :class:`ReductionError` when the product exceeds ``max_cases``.
    """
    reducer = _Reducer(problem)
    #: list of (atoms, provenance) pairs, one per case built so far
    cases: List[Tuple[List[Atom], List[int]]] = [([], [])]
    for index, atom in enumerate(problem.atoms):
        alternatives = [
            alternative
            for alternative in reducer.alternatives(atom)
            if not any(_statically_false(entry) for entry in alternative)
        ]
        if not alternatives:
            # Every case of this atom is infeasible on its own (constant
            # guards folded to false): the whole problem is unsatisfiable
            # because of this one atom — collapse to a single false case.
            return [
                ReducedCase(
                    problem=Problem(
                        atoms=[LengthConstraint(FALSE)],
                        alphabet=problem.alphabet,
                        name=problem.name,
                    ),
                    provenance=(index,),
                    fresh_variables=frozenset(reducer.fresh_names),
                )
            ]
        if len(alternatives) * len(cases) > max_cases:
            raise ReductionError(
                f"extended-atom case expansion exceeds {max_cases} cases "
                f"({len(cases)} cases before atom {index})"
            )
        if len(alternatives) == 1:
            for atoms, provenance in cases:
                atoms.extend(alternatives[0])
                provenance.extend([index] * len(alternatives[0]))
        else:
            expanded: List[Tuple[List[Atom], List[int]]] = []
            for atoms, provenance in cases:
                for alternative in alternatives:
                    checkpoint("reduce.cases")
                    expanded.append(
                        (
                            atoms + alternative,
                            provenance + [index] * len(alternative),
                        )
                    )
            cases = expanded
    fresh = frozenset(reducer.fresh_names)
    return [
        ReducedCase(
            problem=Problem(atoms=atoms, alphabet=problem.alphabet, name=problem.name),
            provenance=tuple(provenance),
            fresh_variables=fresh,
        )
        for atoms, provenance in cases
    ]
