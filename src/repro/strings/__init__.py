"""String-constraint frontend: AST, normal form, semantics, SMT-LIB I/O."""

from .ast import (
    Atom,
    Contains,
    LengthConstraint,
    PrefixOf,
    Problem,
    RegexMembership,
    StrAtAtom,
    StringLiteral,
    StringVar,
    SuffixOf,
    WordEquation,
    length_variable,
    lit,
    str_len,
    term,
)
from .normal_form import NormalForm, normalize
from .semantics import eval_atom, eval_problem, eval_term

__all__ = [
    "Problem",
    "Atom",
    "WordEquation",
    "RegexMembership",
    "PrefixOf",
    "SuffixOf",
    "Contains",
    "StrAtAtom",
    "LengthConstraint",
    "StringVar",
    "StringLiteral",
    "term",
    "lit",
    "str_len",
    "length_variable",
    "NormalForm",
    "normalize",
    "eval_atom",
    "eval_problem",
    "eval_term",
]
