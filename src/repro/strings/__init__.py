"""String-constraint frontend: AST, normal form, semantics, SMT-LIB I/O.

The SMT-LIB half lives in :mod:`repro.smtlib` (lexer/parser, printer and
the ``python -m repro.smtlib`` runner); its problem-level entry points —
:func:`parse_problem`, :func:`parse_script`, :func:`problem_to_smtlib` and
:func:`atom_to_sexpr` — are re-exported here lazily (the two packages
import each other's halves, so the binding resolves on first use).
"""

from .ast import (
    Atom,
    Contains,
    EXTENDED_ATOMS,
    IndexOfAtom,
    LengthConstraint,
    PrefixOf,
    Problem,
    RegexMembership,
    ReplaceAtom,
    StrAtAtom,
    StringLiteral,
    StringVar,
    SubstrAtom,
    SuffixOf,
    WordEquation,
    length_variable,
    lit,
    str_len,
    term,
    term_length,
)
from .normal_form import NormalForm, NormalizationCache, normalize
from .reductions import ReducedCase, ReductionError, needs_reduction, reduce_problem
from .semantics import eval_atom, eval_problem, eval_term

#: SMT-LIB entry points re-exported lazily from :mod:`repro.smtlib`
_SMTLIB_EXPORTS = ("parse_problem", "parse_script", "problem_to_smtlib", "atom_to_sexpr")


def __getattr__(name: str):
    if name in _SMTLIB_EXPORTS:
        from .. import smtlib

        return getattr(smtlib, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "Problem",
    "Atom",
    "WordEquation",
    "RegexMembership",
    "PrefixOf",
    "SuffixOf",
    "Contains",
    "StrAtAtom",
    "LengthConstraint",
    "StringVar",
    "StringLiteral",
    "term",
    "lit",
    "str_len",
    "length_variable",
    "NormalForm",
    "NormalizationCache",
    "normalize",
    "eval_atom",
    "eval_problem",
    "eval_term",
    "parse_problem",
    "parse_script",
    "problem_to_smtlib",
    "atom_to_sexpr",
]
