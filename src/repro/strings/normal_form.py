"""Normalisation of problems into the form ``E ∧ R ∧ I ∧ P`` (§2).

The transformation follows the paper:

1. string literals inside terms are replaced by fresh variables constrained
   to the singleton language of the literal,
2. *positive* ``prefixof`` / ``suffixof`` / ``contains`` atoms are rewritten
   into word equations with fresh variables (``v = u·z``, ``v = z·u``,
   ``v = z·u·z'``),
3. regular memberships are collected per variable and intersected; negated
   memberships are complemented over the problem alphabet; unconstrained
   variables get the universal language,
4. the remaining negated predicates and disequalities become the position
   constraints ``P`` (as :mod:`repro.core.predicates` objects),
5. integer constraints are collected into one LIA formula ``I`` that refers
   to string lengths through the reserved ``@len.<var>`` variables.

Two facilities added for the incremental :class:`repro.Session` pipeline:

* **provenance** — the normal form records, per input atom, the set of
  normal-form variables its translation touched (``atom_variables``), and
  keeps the integer constraints as separate per-atom conjuncts
  (``integer_parts``).  Unsat-core extraction uses this to map refutation
  participants back to the asserted atoms.
* **caching** — :func:`normalize` accepts a :class:`NormalizationCache`
  that memoizes regex compilation, complementation and the per-variable
  membership intersections.  Besides saving the automata work on repeated
  calls, the cache keeps the resulting :class:`~repro.automata.nfa.Nfa`
  objects *identity-stable* across calls with a common assertion prefix,
  which is what lets the downstream decomposition and encoding caches key
  on object identity.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..automata import (
    compile_regex,
    complement,
    intern_nfa,
    intersection,
    intersection_empty,
    remove_epsilon,
)
from ..automata.nfa import Nfa
from ..budget import checkpoint
from ..core.predicates import (
    Disequality,
    NotContains,
    NotPrefixOf,
    NotSuffixOf,
    PositionPredicate,
    StrAt,
)
from ..lia import Formula as LiaFormula
from ..lia import LinExpr, TRUE, conj
from .ast import (
    Atom,
    Contains,
    LengthConstraint,
    PrefixOf,
    Problem,
    RegexMembership,
    StrAtAtom,
    StringLiteral,
    StringTerm,
    StringVar,
    SuffixOf,
    WordEquation,
)

#: A word equation over variables only (literals already removed).
VarEquation = Tuple[Tuple[str, ...], Tuple[str, ...]]


@dataclass
class NormalForm:
    """The normal form ``E ∧ R ∧ I ∧ P`` of a problem."""

    equations: List[VarEquation] = field(default_factory=list)
    automata: Dict[str, Nfa] = field(default_factory=dict)
    integer_formula: LiaFormula = TRUE
    predicates: List[PositionPredicate] = field(default_factory=list)
    alphabet: Tuple[str, ...] = ()
    #: variables introduced by the normalisation (literals, prefix/suffix/contains witnesses)
    fresh_variables: List[str] = field(default_factory=list)
    #: the integer constraints as separate conjuncts, one entry per
    #: contributing input atom: ``(formula, atom_index)``
    integer_parts: List[Tuple[LiaFormula, int]] = field(default_factory=list)
    #: per input atom (aligned with ``Problem.atoms``): the normal-form
    #: variables (string and integer) the atom's translation touched
    atom_variables: List[Tuple[str, ...]] = field(default_factory=list)

    def string_variables(self) -> Tuple[str, ...]:
        return tuple(self.automata)

    def atoms_touching(self, names) -> Tuple[int, ...]:
        """Indices of input atoms whose translation touched any of ``names``.

        This is the provenance step of unsat-core extraction: refutation
        participants (normal-form variable names) are mapped back to the
        asserted atoms that could have put them into play.
        """
        wanted = set(names)
        hits = []
        for index, touched in enumerate(self.atom_variables):
            if wanted.intersection(touched):
                hits.append(index)
        return tuple(hits)


class NormalizationCache:
    """Memo tables shared by repeated :func:`normalize` calls.

    Caches regex compilation, complementation, literal-word automata, the
    universal automaton and the per-variable membership intersections.  The
    cache is *content-addressed* (patterns, literal values, polarities), so
    two calls sharing an assertion prefix receive the **same** ``Nfa``
    objects back — downstream incremental caches rely on that identity.
    ``Nfa``-valued languages are addressed by object identity and kept alive
    by the cache so their ids stay unambiguous.
    """

    def __init__(self, capacity: int = 2048) -> None:
        #: per-table entry cap: a long-lived session must not grow memory
        #: monotonically, so each memo evicts its oldest entries (FIFO)
        #: beyond this bound — an eviction only costs a later re-compute
        #: (and the downstream identity-keyed cache misses that follow)
        self.capacity = capacity
        self.languages: Dict[Tuple, Nfa] = {}
        self.words: Dict[str, Nfa] = {}
        self.universal: Dict[Tuple[str, ...], Nfa] = {}
        self.intersections: Dict[Tuple, Nfa] = {}
        self._keepalive: List[Nfa] = []
        self._kept_ids: set = set()
        self.hits = 0
        self.misses = 0
        #: hits on entries that predate the current job (see
        #: :meth:`mark_all_warm`) — the serve worker's proof that sharing
        #: one cache across jobs actually pays
        self.warm_hits = 0
        self._warm: set = set()

    def keep(self, nfa: Nfa) -> int:
        """Pin an externally-supplied automaton and return its stable id."""
        if id(nfa) not in self._kept_ids:
            self._kept_ids.add(id(nfa))
            self._keepalive.append(nfa)
        return id(nfa)

    def tables(self) -> Tuple[Dict, ...]:
        """Every memo table, for bulk operations like warm-marking."""
        return (self.languages, self.words, self.universal, self.intersections)

    def record_hit(self, table: Dict, key) -> None:
        """Count a lookup hit; warm entries (pre-job) count twice over."""
        self.hits += 1
        if (id(table), key) in self._warm:
            self.warm_hits += 1

    def mark_all_warm(self) -> None:
        """Stamp every current entry as *warm* (carried over from earlier
        work).  A serve worker calls this between jobs so subsequent hits on
        carried-over entries surface as ``normalization_warm_hits``."""
        self._warm = {
            (id(table), key) for table in self.tables() for key in table
        }

    def store(self, table: Dict, key, value) -> None:
        """Insert into one memo table, evicting oldest entries over capacity."""
        table[key] = value
        while len(table) > self.capacity:
            evicted = next(iter(table))
            table.pop(evicted)
            self._warm.discard((id(table), evicted))


#: membership key: content-addressed description of one membership constraint
_MemberKey = Tuple


class _Normalizer:
    def __init__(self, problem: Problem, cache: Optional[NormalizationCache] = None) -> None:
        self.problem = problem
        self.cache = cache
        self.alphabet = tuple(problem.alphabet)
        self.fresh_counter = 0
        self.fresh_variables: List[str] = []
        #: per variable: list of (content key, automaton) membership pairs
        self.memberships: Dict[str, List[Tuple[_MemberKey, Nfa]]] = {}
        self.equations: List[VarEquation] = []
        self.predicates: List[PositionPredicate] = []
        self.integer_parts: List[Tuple[LiaFormula, int]] = []
        #: provenance: normal-form variables touched per input atom
        self.atom_variables: List[Tuple[str, ...]] = []
        self._touched: Dict[str, None] = {}

    # -- helpers ---------------------------------------------------------
    def touch(self, *names: str) -> None:
        for name in names:
            self._touched.setdefault(name, None)

    def fresh_var(self, hint: str = "z") -> str:
        name = f"_{hint}{self.fresh_counter}"
        self.fresh_counter += 1
        self.fresh_variables.append(name)
        self.touch(name)
        return name

    def add_membership(self, variable: str, key: _MemberKey, nfa: Nfa) -> None:
        self.touch(variable)
        self.memberships.setdefault(variable, []).append((key, nfa))

    def word_nfa(self, value: str) -> Nfa:
        if self.cache is None:
            return Nfa.from_word(value)
        nfa = self.cache.words.get(value)
        if nfa is None:
            self.cache.misses += 1
            nfa = intern_nfa(Nfa.from_word(value))
            self.cache.store(self.cache.words, value, nfa)
        else:
            self.cache.record_hit(self.cache.words, value)
        return nfa

    def literal_var(self, value: str) -> str:
        name = self.fresh_var("lit")
        self.add_membership(name, ("word", value), self.word_nfa(value))
        return name

    def flatten_term(self, string_term: StringTerm) -> Tuple[str, ...]:
        """Replace literals by fresh constrained variables."""
        names: List[str] = []
        for element in string_term:
            if isinstance(element, StringVar):
                names.append(element.name)
            else:
                if element.value == "":
                    continue
                names.append(self.literal_var(element.value))
        self.touch(*names)
        return tuple(names)

    def language_to_nfa(self, language, positive: bool) -> Tuple[_MemberKey, Nfa]:
        if isinstance(language, Nfa):
            key: _MemberKey = (
                "nfa",
                self.cache.keep(language) if self.cache is not None else id(language),
                positive,
                self.alphabet,
            )
        else:
            key = ("re", language, positive, self.alphabet)
        if self.cache is not None:
            cached = self.cache.languages.get(key)
            if cached is not None:
                self.cache.record_hit(self.cache.languages, key)
                return key, cached
            self.cache.misses += 1
        nfa = language if isinstance(language, Nfa) else compile_regex(language, self.alphabet)
        if not positive:
            nfa = complement(nfa, self.alphabet)
        if not (isinstance(language, Nfa) and positive):
            # Hash-cons the automata we build ourselves (compiled regexes,
            # complements); user-supplied Nfa objects keep their identity.
            nfa = intern_nfa(nfa)
        if self.cache is not None:
            self.cache.store(self.cache.languages, key, nfa)
        return key, nfa

    # -- atom dispatch ----------------------------------------------------
    def visit(self, atom: Atom) -> None:
        self._touched = {}
        self._dispatch(atom)
        self.atom_variables.append(tuple(self._touched))

    def _touch_formula(self, formula: LiaFormula) -> None:
        for name in formula.variables():
            if name.startswith("@len."):
                self.touch(name[len("@len.") :])
            else:
                self.touch(name)

    def _dispatch(self, atom: Atom) -> None:
        index = len(self.atom_variables)
        if isinstance(atom, RegexMembership):
            key, nfa = self.language_to_nfa(atom.language, atom.positive)
            self.add_membership(atom.var, key, nfa)
            return
        if isinstance(atom, WordEquation):
            lhs, rhs = self.flatten_term(atom.lhs), self.flatten_term(atom.rhs)
            if atom.positive:
                self.equations.append((lhs, rhs))
            else:
                self.predicates.append(Disequality(lhs, rhs))
            return
        if isinstance(atom, PrefixOf):
            lhs, rhs = self.flatten_term(atom.lhs), self.flatten_term(atom.rhs)
            if atom.positive:
                # prefixof(u, v)  ~>  v = u · z
                suffix = self.fresh_var()
                self.equations.append((rhs, lhs + (suffix,)))
            else:
                self.predicates.append(NotPrefixOf(lhs, rhs))
            return
        if isinstance(atom, SuffixOf):
            lhs, rhs = self.flatten_term(atom.lhs), self.flatten_term(atom.rhs)
            if atom.positive:
                prefix = self.fresh_var()
                self.equations.append((rhs, (prefix,) + lhs))
            else:
                self.predicates.append(NotSuffixOf(lhs, rhs))
            return
        if isinstance(atom, Contains):
            needle, haystack = self.flatten_term(atom.needle), self.flatten_term(atom.haystack)
            if atom.positive:
                before, after = self.fresh_var(), self.fresh_var()
                self.equations.append((haystack, (before,) + needle + (after,)))
            else:
                self.predicates.append(NotContains(needle, haystack))
            return
        if isinstance(atom, StrAtAtom):
            haystack = self.flatten_term(atom.haystack)
            if isinstance(atom.target, StringVar):
                target = atom.target.name
                self.touch(target)
            else:
                target = self.literal_var(atom.target.value)
            if isinstance(atom.index, LinExpr):
                for name in atom.index.variables():
                    self.touch(name)
            self.predicates.append(StrAt(target, haystack, atom.index, negated=not atom.positive))
            return
        if isinstance(atom, LengthConstraint):
            self._touch_formula(atom.formula)
            self.integer_parts.append((atom.formula, index))
            return
        raise TypeError(f"unknown atom {atom!r}")

    # -- assembling --------------------------------------------------------
    def result(self) -> NormalForm:
        variables: Dict[str, None] = {}
        for name in self.problem.string_variables():
            variables.setdefault(name, None)
        for name in self.memberships:
            variables.setdefault(name, None)
        for lhs, rhs in self.equations:
            for name in lhs + rhs:
                variables.setdefault(name, None)
        for predicate in self.predicates:
            for name in predicate.string_variables():
                variables.setdefault(name, None)

        automata: Dict[str, Nfa] = {}
        for name in variables:
            constraints = self.memberships.get(name)
            if not constraints:
                if self.cache is not None:
                    universal = self.cache.universal.get(self.alphabet)
                    if universal is None:
                        universal = intern_nfa(Nfa.universal(self.alphabet))
                        self.cache.universal[self.alphabet] = universal
                    automata[name] = universal
                else:
                    automata[name] = intern_nfa(Nfa.universal(self.alphabet))
                continue
            automata[name] = self._intersect([key for key, _ in constraints],
                                             [nfa for _, nfa in constraints])

        return NormalForm(
            equations=self.equations,
            automata=automata,
            integer_formula=conj([part for part, _ in self.integer_parts])
            if self.integer_parts
            else TRUE,
            predicates=self.predicates,
            alphabet=self.alphabet,
            fresh_variables=self.fresh_variables,
            integer_parts=self.integer_parts,
            atom_variables=self.atom_variables,
        )

    def _intersect(self, keys: List[_MemberKey], nfas: List[Nfa]) -> Nfa:
        """Intersect one variable's memberships (cached by content keys).

        The key is order-insensitive (intersection is commutative) so a
        variable reaches the same automaton object no matter in which order
        its memberships were asserted.
        """
        cache_key = (self.alphabet,) + tuple(sorted(map(repr, keys)))
        if self.cache is not None:
            cached = self.cache.intersections.get(cache_key)
            if cached is not None:
                self.cache.record_hit(self.cache.intersections, cache_key)
                return cached
            self.cache.misses += 1
        combined = nfas[0]
        for extra in nfas[1:]:
            # Guard pruning: decide emptiness lazily (first-accepting-pair
            # walk) before materialising the product — an empty chain never
            # allocates a single product state.
            if intersection_empty(combined, extra):
                combined = None
                break
            combined = intersection(combined, extra)
        if combined is None:
            combined = Nfa.empty_language()
        else:
            combined = (
                remove_epsilon(combined).trim() if combined.has_epsilon() else combined.trim()
            )
            if not combined.states:
                combined = Nfa.empty_language()
        combined = intern_nfa(combined)
        if self.cache is not None:
            self.cache.store(self.cache.intersections, cache_key, combined)
        return combined


def normalize(problem: Problem, cache: Optional[NormalizationCache] = None) -> NormalForm:
    """Normalise a problem into ``E ∧ R ∧ I ∧ P``.

    ``cache`` (a :class:`NormalizationCache`) makes repeated calls cheap and
    keeps the produced automata identity-stable across calls — the contract
    the incremental :class:`repro.Session` pipeline builds on.
    """
    normalizer = _Normalizer(problem, cache=cache)
    for atom in problem.atoms:
        # Per-atom checkpoint; the heavy per-atom work (complementation,
        # membership intersections) checkpoints inside the automata layer.
        checkpoint("normalize")
        normalizer.visit(atom)
    return normalizer.result()
