"""Normalisation of problems into the form ``E ∧ R ∧ I ∧ P`` (§2).

The transformation follows the paper:

1. string literals inside terms are replaced by fresh variables constrained
   to the singleton language of the literal,
2. *positive* ``prefixof`` / ``suffixof`` / ``contains`` atoms are rewritten
   into word equations with fresh variables (``v = u·z``, ``v = z·u``,
   ``v = z·u·z'``),
3. regular memberships are collected per variable and intersected; negated
   memberships are complemented over the problem alphabet; unconstrained
   variables get the universal language,
4. the remaining negated predicates and disequalities become the position
   constraints ``P`` (as :mod:`repro.core.predicates` objects),
5. integer constraints are collected into one LIA formula ``I`` that refers
   to string lengths through the reserved ``@len.<var>`` variables.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..automata import compile_regex, complement, intersection, remove_epsilon
from ..automata.nfa import Nfa
from ..core.predicates import (
    Disequality,
    NotContains,
    NotPrefixOf,
    NotSuffixOf,
    PositionPredicate,
    StrAt,
)
from ..lia import Formula as LiaFormula
from ..lia import TRUE, conj
from .ast import (
    Atom,
    Contains,
    LengthConstraint,
    PrefixOf,
    Problem,
    RegexMembership,
    StrAtAtom,
    StringLiteral,
    StringTerm,
    StringVar,
    SuffixOf,
    WordEquation,
)

#: A word equation over variables only (literals already removed).
VarEquation = Tuple[Tuple[str, ...], Tuple[str, ...]]


@dataclass
class NormalForm:
    """The normal form ``E ∧ R ∧ I ∧ P`` of a problem."""

    equations: List[VarEquation] = field(default_factory=list)
    automata: Dict[str, Nfa] = field(default_factory=dict)
    integer_formula: LiaFormula = TRUE
    predicates: List[PositionPredicate] = field(default_factory=list)
    alphabet: Tuple[str, ...] = ()
    #: variables introduced by the normalisation (literals, prefix/suffix/contains witnesses)
    fresh_variables: List[str] = field(default_factory=list)

    def string_variables(self) -> Tuple[str, ...]:
        return tuple(self.automata)


class _Normalizer:
    def __init__(self, problem: Problem) -> None:
        self.problem = problem
        self.alphabet = tuple(problem.alphabet)
        self.fresh_counter = 0
        self.fresh_variables: List[str] = []
        self.memberships: Dict[str, List[Nfa]] = {}
        self.equations: List[VarEquation] = []
        self.predicates: List[PositionPredicate] = []
        self.integer_parts: List[LiaFormula] = []

    # -- helpers ---------------------------------------------------------
    def fresh_var(self, hint: str = "z") -> str:
        name = f"_{hint}{self.fresh_counter}"
        self.fresh_counter += 1
        self.fresh_variables.append(name)
        return name

    def add_membership(self, variable: str, nfa: Nfa) -> None:
        self.memberships.setdefault(variable, []).append(nfa)

    def literal_var(self, value: str) -> str:
        name = self.fresh_var("lit")
        self.add_membership(name, Nfa.from_word(value))
        return name

    def flatten_term(self, string_term: StringTerm) -> Tuple[str, ...]:
        """Replace literals by fresh constrained variables."""
        names: List[str] = []
        for element in string_term:
            if isinstance(element, StringVar):
                names.append(element.name)
            else:
                if element.value == "":
                    continue
                names.append(self.literal_var(element.value))
        return tuple(names)

    def language_to_nfa(self, language, positive: bool) -> Nfa:
        nfa = language if isinstance(language, Nfa) else compile_regex(language, self.alphabet)
        if not positive:
            nfa = complement(nfa, self.alphabet)
        return nfa

    # -- atom dispatch ----------------------------------------------------
    def visit(self, atom: Atom) -> None:
        if isinstance(atom, RegexMembership):
            self.add_membership(atom.var, self.language_to_nfa(atom.language, atom.positive))
            return
        if isinstance(atom, WordEquation):
            lhs, rhs = self.flatten_term(atom.lhs), self.flatten_term(atom.rhs)
            if atom.positive:
                self.equations.append((lhs, rhs))
            else:
                self.predicates.append(Disequality(lhs, rhs))
            return
        if isinstance(atom, PrefixOf):
            lhs, rhs = self.flatten_term(atom.lhs), self.flatten_term(atom.rhs)
            if atom.positive:
                # prefixof(u, v)  ~>  v = u · z
                suffix = self.fresh_var()
                self.equations.append((rhs, lhs + (suffix,)))
            else:
                self.predicates.append(NotPrefixOf(lhs, rhs))
            return
        if isinstance(atom, SuffixOf):
            lhs, rhs = self.flatten_term(atom.lhs), self.flatten_term(atom.rhs)
            if atom.positive:
                prefix = self.fresh_var()
                self.equations.append((rhs, (prefix,) + lhs))
            else:
                self.predicates.append(NotSuffixOf(lhs, rhs))
            return
        if isinstance(atom, Contains):
            needle, haystack = self.flatten_term(atom.needle), self.flatten_term(atom.haystack)
            if atom.positive:
                before, after = self.fresh_var(), self.fresh_var()
                self.equations.append((haystack, (before,) + needle + (after,)))
            else:
                self.predicates.append(NotContains(needle, haystack))
            return
        if isinstance(atom, StrAtAtom):
            haystack = self.flatten_term(atom.haystack)
            if isinstance(atom.target, StringVar):
                target = atom.target.name
            else:
                target = self.literal_var(atom.target.value)
            self.predicates.append(StrAt(target, haystack, atom.index, negated=not atom.positive))
            return
        if isinstance(atom, LengthConstraint):
            self.integer_parts.append(atom.formula)
            return
        raise TypeError(f"unknown atom {atom!r}")

    # -- assembling --------------------------------------------------------
    def result(self) -> NormalForm:
        variables: Dict[str, None] = {}
        for name in self.problem.string_variables():
            variables.setdefault(name, None)
        for name in self.memberships:
            variables.setdefault(name, None)
        for lhs, rhs in self.equations:
            for name in lhs + rhs:
                variables.setdefault(name, None)
        for predicate in self.predicates:
            for name in predicate.string_variables():
                variables.setdefault(name, None)

        automata: Dict[str, Nfa] = {}
        for name in variables:
            constraints = self.memberships.get(name)
            if not constraints:
                automata[name] = Nfa.universal(self.alphabet)
                continue
            combined = constraints[0]
            for extra in constraints[1:]:
                combined = intersection(combined, extra)
            combined = remove_epsilon(combined).trim() if combined.has_epsilon() else combined.trim()
            if not combined.states:
                combined = Nfa.empty_language()
            automata[name] = combined

        return NormalForm(
            equations=self.equations,
            automata=automata,
            integer_formula=conj(self.integer_parts) if self.integer_parts else TRUE,
            predicates=self.predicates,
            alphabet=self.alphabet,
            fresh_variables=self.fresh_variables,
        )


def normalize(problem: Problem) -> NormalForm:
    """Normalise a problem into ``E ∧ R ∧ I ∧ P``."""
    normalizer = _Normalizer(problem)
    for atom in problem.atoms:
        normalizer.visit(atom)
    return normalizer.result()
