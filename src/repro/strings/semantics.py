"""Direct evaluation of string-constraint atoms on concrete assignments.

Used as the ground-truth oracle: the brute-force solver enumerates
assignments and evaluates them here, and the main solver re-validates every
model it produces against the original problem before reporting SAT.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Optional

from ..automata.nfa import Nfa
from ..automata.regex import compile_regex
from ..lia import evaluate as lia_evaluate
from .ast import (
    Atom,
    Contains,
    IndexOfAtom,
    LengthConstraint,
    PrefixOf,
    Problem,
    RegexMembership,
    ReplaceAtom,
    StrAtAtom,
    StringLiteral,
    StringTerm,
    StringVar,
    SubstrAtom,
    SuffixOf,
    WordEquation,
    length_variable,
)


def _eval_int(expr, integers: Mapping[str, int], strings: Mapping[str, str]) -> int:
    """Evaluate a LIA expression, resolving ``@len.x`` through the strings."""
    assignment: Dict[str, int] = {}
    for name in expr.variables():
        if name.startswith("@len."):
            assignment[name] = len(strings[name[len("@len.") :]])
        else:
            assignment[name] = integers.get(name, 0)
    return int(expr.evaluate(assignment))


def str_substr(word: str, offset: int, length: int) -> str:
    """SMT-LIB 2.6 ``str.substr`` on concrete values."""
    if 0 <= offset < len(word) and length > 0:
        return word[offset : offset + length]
    return ""


def str_indexof(word: str, needle: str, offset: int) -> int:
    """SMT-LIB 2.6 ``str.indexof`` on concrete values."""
    if 0 <= offset <= len(word):
        return word.find(needle, offset)
    return -1


def str_replace(word: str, needle: str, replacement: str) -> str:
    """SMT-LIB 2.6 ``str.replace`` on concrete values (first occurrence;
    an empty needle prepends the replacement)."""
    return word.replace(needle, replacement, 1)


def eval_term(string_term: StringTerm, strings: Mapping[str, str]) -> str:
    """Concatenate the value of a string term under an assignment."""
    parts = []
    for element in string_term:
        if isinstance(element, StringVar):
            parts.append(strings[element.name])
        else:
            parts.append(element.value)
    return "".join(parts)


def _language_accepts(language, word: str, alphabet: Iterable[str]) -> bool:
    if isinstance(language, Nfa):
        return language.accepts(word)
    return compile_regex(language, alphabet).accepts(word)


def eval_atom(
    atom: Atom,
    strings: Mapping[str, str],
    integers: Optional[Mapping[str, int]] = None,
    alphabet: Iterable[str] = ("a", "b"),
) -> bool:
    """Evaluate one atom under a concrete assignment."""
    integers = integers or {}
    if isinstance(atom, WordEquation):
        result = eval_term(atom.lhs, strings) == eval_term(atom.rhs, strings)
        return result if atom.positive else not result
    if isinstance(atom, RegexMembership):
        result = _language_accepts(atom.language, strings[atom.var], alphabet)
        return result if atom.positive else not result
    if isinstance(atom, PrefixOf):
        result = eval_term(atom.rhs, strings).startswith(eval_term(atom.lhs, strings))
        return result if atom.positive else not result
    if isinstance(atom, SuffixOf):
        result = eval_term(atom.rhs, strings).endswith(eval_term(atom.lhs, strings))
        return result if atom.positive else not result
    if isinstance(atom, Contains):
        result = eval_term(atom.needle, strings) in eval_term(atom.haystack, strings)
        return result if atom.positive else not result
    if isinstance(atom, StrAtAtom):
        haystack = eval_term(atom.haystack, strings)
        index_value = int(
            atom.index.evaluate({name: integers.get(name, 0) for name in atom.index.variables()})
        )
        expected = haystack[index_value] if 0 <= index_value < len(haystack) else ""
        target = (
            strings[atom.target.name]
            if isinstance(atom.target, StringVar)
            else atom.target.value
        )
        result = target == expected
        return result if atom.positive else not result
    if isinstance(atom, SubstrAtom):
        value = str_substr(
            eval_term(atom.haystack, strings),
            _eval_int(atom.offset, integers, strings),
            _eval_int(atom.length, integers, strings),
        )
        result = eval_term(atom.target, strings) == value
        return result if atom.positive else not result
    if isinstance(atom, IndexOfAtom):
        value = str_indexof(
            eval_term(atom.haystack, strings),
            eval_term(atom.needle, strings),
            _eval_int(atom.offset, integers, strings),
        )
        result = _eval_int(atom.result, integers, strings) == value
        return result if atom.positive else not result
    if isinstance(atom, ReplaceAtom):
        value = str_replace(
            eval_term(atom.haystack, strings),
            eval_term(atom.needle, strings),
            eval_term(atom.replacement, strings),
        )
        result = eval_term(atom.target, strings) == value
        return result if atom.positive else not result
    if isinstance(atom, LengthConstraint):
        assignment: Dict[str, int] = {}
        for name in atom.formula.variables():
            if name.startswith("@len."):
                assignment[name] = len(strings[name[len("@len.") :]])
            else:
                assignment[name] = integers.get(name, 0)
        return lia_evaluate(atom.formula, assignment)
    raise TypeError(f"unknown atom {atom!r}")


def eval_problem(
    problem: Problem,
    strings: Mapping[str, str],
    integers: Optional[Mapping[str, int]] = None,
) -> bool:
    """Evaluate a whole problem (conjunction of atoms)."""
    return all(eval_atom(atom, strings, integers, problem.alphabet) for atom in problem.atoms)
