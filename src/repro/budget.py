"""Cooperative resource governance: budgets, checkpoints, structured reasons.

The paper's experiments run every instance under a hard 120 s timeout; this
module is the substrate that makes that operating mode possible across the
whole engine.  A :class:`Budget` bundles **one** wall-clock deadline with
step/expansion counters and per-stage accounting, and every potentially
exploding loop in the pipeline — subset construction, automata products,
noodlification, the reduction case product, the CDCL search — calls
:meth:`Budget.checkpoint` from inside its hot loop.  Exceeding the budget
raises :class:`BudgetExceeded`, which carries a typed
:class:`UnknownReason` (kind + stage + counter snapshot) that the solver
pipeline converts into a structured ``unknown``/``timeout`` verdict.

Threading the budget explicitly through nine layers would contaminate every
signature, so the *active* budget travels in a :mod:`contextvars` context
variable: :func:`repro.solver.solver.IncrementalPipeline.check` activates
its budget for the duration of the check and deep engine loops consult it
through the module-level :func:`checkpoint` helper (a no-op when no budget
is active, so library users of e.g. :func:`repro.automata.determinize` pay
one context-variable read per loop iteration and nothing else).

Checkpoints are designed to be cheap: the clock is only consulted every
``check_interval`` accumulated steps.  Tests inject a fake ``clock`` for
deterministic timeout behaviour, and the fault-injection harness
(:mod:`repro.testing.faults`) attaches a ``hook`` observing every
checkpoint and stage entry — the deterministic "Nth entry into stage S"
coordinates that chaos tests schedule faults on.

This module has no intra-package dependencies; every layer may import it.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass
from enum import Enum
from typing import Callable, Dict, Optional


class UnknownKind(Enum):
    """Why a check could not produce a ``sat``/``unsat`` verdict."""

    #: the wall-clock deadline passed
    TIMEOUT = "timeout"
    #: the cooperative step/expansion counter cap was reached
    STEP_LIMIT = "step_limit"
    #: a completeness budget (branches, noodles, cases, MBQI rounds, SAT
    #: conflicts, branch-and-bound nodes) was exhausted — more resources
    #: might decide the instance
    INCOMPLETE = "incomplete"
    #: the instance falls outside the decidable fragment the engine
    #: implements — more resources would not help
    FRAGMENT = "fragment"
    #: an engine stage raised an unexpected exception (soundness is
    #: preserved by answering unknown; the error is counted, not swallowed)
    INTERNAL_ERROR = "internal_error"
    #: the check was interrupted (``KeyboardInterrupt`` / client cancel)
    INTERRUPTED = "interrupted"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class UnknownReason:
    """A typed, stage-accurate explanation of a non-verdict.

    Renders as e.g. ``timeout@automata.determinize after 1900000 steps
    (1.95s)`` — machine-readable fields first, human string on demand.
    """

    kind: UnknownKind
    #: engine stage that hit the limit (``automata.determinize``,
    #: ``eqsolver.noodlify``, ``lia.sat``, ``reduce.cases``, ...)
    stage: str = ""
    #: free-text elaboration (exception text, which cap, ...)
    detail: str = ""
    #: checkpoint-step counter at the moment the limit hit
    steps: Optional[int] = None
    #: wall-clock seconds into the check at the moment the limit hit
    elapsed: Optional[float] = None

    def __str__(self) -> str:
        head = self.kind.value + (f"@{self.stage}" if self.stage else "")
        bits = []
        if self.steps is not None:
            bits.append(f"after {self.steps} steps")
        if self.elapsed is not None:
            bits.append(f"({self.elapsed:.2f}s)")
        if self.detail:
            bits.append(f"[{self.detail}]")
        return " ".join([head] + bits)

    @property
    def is_timeout(self) -> bool:
        return self.kind in (UnknownKind.TIMEOUT, UnknownKind.STEP_LIMIT)


def as_reason(reason, default_kind: UnknownKind = UnknownKind.INCOMPLETE,
              stage: str = "") -> UnknownReason:
    """Coerce a legacy free-text reason into an :class:`UnknownReason`."""
    if isinstance(reason, UnknownReason):
        return reason
    return UnknownReason(default_kind, stage=stage, detail=str(reason))


class BudgetExceeded(Exception):
    """Raised by :meth:`Budget.checkpoint` when a limit is hit.

    Deliberately *not* a subclass of the LIA layer's ``ResourceLimit``:
    completeness-budget exhaustion there is a recoverable per-assignment
    event, while a ``BudgetExceeded`` must unwind the whole check.
    """

    def __init__(self, reason: UnknownReason) -> None:
        super().__init__(str(reason))
        self.reason = reason


class Budget:
    """Wall-clock deadline plus cooperative step counters for one check.

    The first positional argument is a relative ``timeout`` in seconds so
    that ``Budget(timeout)`` is a drop-in for the historical ``Stopwatch``;
    an absolute ``deadline`` (a :func:`time.monotonic` value) may be given
    instead, e.g. when a caller subdivides its own budget.  ``max_steps``
    caps the total checkpoint steps — a deterministic, machine-independent
    way to bound work (useful for reproducible tests and differential
    runs).  ``clock`` is injectable for deterministic timeout tests, and
    ``hook(stage, count)`` observes every checkpoint/stage entry (the
    fault-injection attachment point; exceptions raised by the hook
    propagate to the caller on purpose).
    """

    __slots__ = (
        "start", "timeout", "max_steps", "steps", "check_interval", "hook",
        "current_stage", "_deadline", "_clock", "_until_check",
        "_stage_steps", "_stage_entries", "_stage_ms",
    )

    def __init__(
        self,
        timeout: Optional[float] = None,
        *,
        deadline: Optional[float] = None,
        max_steps: Optional[int] = None,
        clock: Callable[[], float] = time.monotonic,
        check_interval: int = 64,
        hook: Optional[Callable[[str, int], None]] = None,
    ) -> None:
        self._clock = clock
        self.start = clock()
        self.timeout = timeout
        self.max_steps = max_steps
        self.steps = 0
        self.check_interval = check_interval
        self.hook = hook
        self.current_stage = ""
        self._until_check = check_interval
        self._stage_steps: Dict[str, int] = {}
        self._stage_entries: Dict[str, int] = {}
        self._stage_ms: Dict[str, int] = {}
        explicit = deadline
        derived = None if timeout is None else self.start + timeout
        if explicit is None:
            self._deadline = derived
        elif derived is None:
            self._deadline = explicit
        else:
            self._deadline = min(explicit, derived)

    # ------------------------------------------------------------------
    # Stopwatch-compatible surface
    # ------------------------------------------------------------------
    @property
    def deadline(self) -> Optional[float]:
        """Absolute :func:`time.monotonic` deadline (``None`` = unlimited)."""
        return self._deadline

    def elapsed(self) -> float:
        return self._clock() - self.start

    def expired(self) -> bool:
        return self._deadline is not None and self._clock() > self._deadline

    def remaining(self) -> Optional[float]:
        if self._deadline is None:
            return None
        return self._deadline - self._clock()

    # ------------------------------------------------------------------
    # Cooperative cancellation
    # ------------------------------------------------------------------
    def _exceeded(self, kind: UnknownKind, stage: str) -> BudgetExceeded:
        return BudgetExceeded(
            UnknownReason(
                kind, stage=stage, steps=self.steps, elapsed=self.elapsed()
            )
        )

    def checkpoint(self, stage: str, cost: int = 1) -> None:
        """Account ``cost`` steps against ``stage``; raise when over budget.

        The wall clock is consulted only every ``check_interval``
        accumulated steps, so calling this from a hot loop costs a few
        dict/int operations per iteration.
        """
        self.steps += cost
        counts = self._stage_steps
        counts[stage] = counts.get(stage, 0) + cost
        if self.hook is not None:
            self.hook(stage, counts[stage])
        if self.max_steps is not None and self.steps > self.max_steps:
            raise self._exceeded(UnknownKind.STEP_LIMIT, stage)
        self._until_check -= cost
        if self._until_check <= 0:
            self._until_check = self.check_interval
            if self._deadline is not None and self._clock() > self._deadline:
                raise self._exceeded(UnknownKind.TIMEOUT, stage)

    def check_now(self, stage: str) -> None:
        """An interval-free checkpoint: consult the clock unconditionally.

        Used at coarse boundaries (per reduction case, per branch) where an
        immediate, accurate cut-off matters more than per-call cost.
        """
        self.steps += 1
        counts = self._stage_steps
        counts[stage] = counts.get(stage, 0) + 1
        if self.hook is not None:
            self.hook(stage, counts[stage])
        if self.max_steps is not None and self.steps > self.max_steps:
            raise self._exceeded(UnknownKind.STEP_LIMIT, stage)
        if self._deadline is not None and self._clock() > self._deadline:
            raise self._exceeded(UnknownKind.TIMEOUT, stage)

    @contextmanager
    def stage(self, name: str):
        """Scope a coarse pipeline stage: entry hook + elapsed accounting."""
        previous = self.current_stage
        self.current_stage = name
        self._stage_entries[name] = self._stage_entries.get(name, 0) + 1
        if self.hook is not None:
            self.hook(f"enter:{name}", self._stage_entries[name])
        begun = self._clock()
        try:
            yield self
        finally:
            self._stage_ms[name] = self._stage_ms.get(name, 0) + int(
                1000 * (self._clock() - begun)
            )
            self.current_stage = previous

    def stats_snapshot(self) -> Dict[str, int]:
        """Per-stage counters for ``SolveResult.stats`` (all-int values)."""
        stats: Dict[str, int] = {"budget_steps": self.steps}
        for name, steps in self._stage_steps.items():
            stats[f"steps.{name}"] = steps
        for name, ms in self._stage_ms.items():
            stats[f"ms.{name}"] = ms
        return stats

    # ------------------------------------------------------------------
    # Context activation
    # ------------------------------------------------------------------
    @contextmanager
    def activate(self):
        """Make this budget the ambient one for the enclosed work."""
        token = _ACTIVE.set(self)
        try:
            yield self
        finally:
            _ACTIVE.reset(token)


#: the ambient budget deep engine loops consult (None = unbudgeted)
_ACTIVE: ContextVar[Optional[Budget]] = ContextVar("repro_budget", default=None)


def current_budget() -> Optional[Budget]:
    """The budget activated by the innermost enclosing check, if any."""
    return _ACTIVE.get()


def checkpoint(stage: str, cost: int = 1) -> None:
    """Checkpoint against the ambient budget (no-op when none is active).

    This is the one-liner engine loops call; see the module docstring.
    """
    budget = _ACTIVE.get()
    if budget is not None:
        budget.checkpoint(stage, cost)
