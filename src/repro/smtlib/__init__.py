"""SMT-LIB 2.6 frontend for the QF_S / QF_SLIA fragment the solver covers.

* :func:`parse_script` / :func:`parse_problem` — concrete syntax → commands
  / one :class:`~repro.strings.ast.Problem`,
* :func:`problem_to_smtlib` / :func:`atom_to_sexpr` — the printer half of
  the round trip,
* :class:`ScriptRunner` / :func:`run_script` — stream a script into a
  :class:`repro.Session` (the engine of ``python -m repro.smtlib``).
"""

from .lexer import SmtLibError, SString, read_sexprs, tokenize
from .parser import (
    AssertCommand,
    CheckSat,
    Command,
    DeclareConst,
    EchoCommand,
    ExitCommand,
    GetModel,
    GetUnsatCore,
    PopCommand,
    PushCommand,
    SetInfo,
    SetLogic,
    SetOption,
    SmtScript,
    parse_problem,
    parse_script,
)
from .printer import (
    PrintError,
    atom_to_sexpr,
    formula_to_sexpr,
    pattern_to_sexpr,
    problem_to_smtlib,
    term_to_sexpr,
)
from .runner import ScriptRunner, run_script

__all__ = [
    "SmtLibError",
    "SString",
    "tokenize",
    "read_sexprs",
    "SmtScript",
    "Command",
    "SetLogic",
    "SetInfo",
    "SetOption",
    "DeclareConst",
    "AssertCommand",
    "PushCommand",
    "PopCommand",
    "CheckSat",
    "GetModel",
    "GetUnsatCore",
    "EchoCommand",
    "ExitCommand",
    "parse_script",
    "parse_problem",
    "PrintError",
    "problem_to_smtlib",
    "atom_to_sexpr",
    "term_to_sexpr",
    "formula_to_sexpr",
    "pattern_to_sexpr",
    "ScriptRunner",
    "run_script",
]
