"""Command-line SMT-LIB runner: ``python -m repro.smtlib file.smt2 …``.

Streams every script into a fresh :class:`repro.Session` and prints one
line per answering command (``check-sat`` verdicts, ``get-model`` /
``get-unsat-core`` responses, ``echo`` messages).  An undecided
``check-sat`` prints ``unknown`` followed by a ``; unknown: <reason>``
comment naming the stage and budget that gave out.  With several input
files each answer line is prefixed by the file name.  ``-`` reads from
stdin.

Exit status: 0 when every script ran to completion — a clean ``unknown``
(timeout, step limit, fragment) is a completed run, not a failure; 1 on a
parse/execution error or when any check hit an internal engine error
(reported as unknown in the output, counted on stderr); 130 on
``KeyboardInterrupt``, after finishing cleanly with the results produced
so far.
"""

from __future__ import annotations

import argparse
import sys
from typing import List

from ..solver import SolverConfig
from .lexer import SmtLibError
from .runner import ScriptRunner


def main(argv: List[str] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.smtlib",
        description="Run SMT-LIB 2.6 QF_S/QF_SLIA scripts on the repro string solver.",
    )
    parser.add_argument("files", nargs="+", help="script files ('-' for stdin)")
    parser.add_argument(
        "--timeout", type=float, default=60.0,
        help="wall-clock budget per check-sat call in seconds (default 60)",
    )
    parser.add_argument(
        "--stats", action="store_true",
        help="print the session's cumulative statistics after each script",
    )
    parser.add_argument(
        "--server", default=None, metavar="HOST:PORT",
        help="submit the scripts to a running 'python -m repro.serve' server "
        "instead of solving in-process (verdict-identical by construction: "
        "the server runs the same ScriptRunner in its workers)",
    )
    args = parser.parse_args(argv)

    config = SolverConfig(timeout=args.timeout)
    failures = 0
    internal_errors = 0
    prefix_names = len(args.files) > 1
    client = None
    if args.server is not None:
        from ..serve import ServeClient, ServeError, parse_host_port

        try:
            host, port = parse_host_port(args.server)
            client = ServeClient(host, port)
        except ServeError as error:
            print(f"error: {error}", file=sys.stderr)
            return 1
    try:
        for path in args.files:
            try:
                if path == "-":
                    text = sys.stdin.read()
                else:
                    with open(path) as handle:
                        text = handle.read()
            except OSError as error:
                print(f"error: {error}", file=sys.stderr)
                failures += 1
                continue

            def emit(line: str, path: str = path) -> None:
                if prefix_names:
                    print(f"{path}: {line}")
                else:
                    print(line)

            if client is not None:
                from ..serve import ServeError

                try:
                    response = client.solve(text, name=path, timeout=args.timeout)
                except ServeError as error:
                    print(f"error: {path}: {error}", file=sys.stderr)
                    failures += 1
                    continue
                if not response.get("ok", False):
                    print(
                        f"error: {path}: {response.get('error', 'server error')}",
                        file=sys.stderr,
                    )
                    failures += 1
                    continue
                for line in response.get("output", []):
                    emit(line)
                internal_errors += int(response.get("internal_errors", 0))
                if args.stats:
                    rendered = ", ".join(
                        f"{key}={value}"
                        for key, value in sorted(response.get("stats", {}).items())
                    )
                    print(f"; stats: {rendered}", file=sys.stderr)
                continue

            runner = ScriptRunner(config=config, out=emit)
            try:
                runner.run(text, name=path)
            except SmtLibError as error:
                print(f"error: {path}: {error}", file=sys.stderr)
                failures += 1
                continue
            internal_errors += runner.internal_errors
            if args.stats and runner.session is not None:
                stats = runner.session.statistics()
                rendered = ", ".join(f"{key}={value}" for key, value in sorted(stats.items()))
                print(f"; stats: {rendered}", file=sys.stderr)
    except KeyboardInterrupt:
        # Everything answered so far is already on stdout; report the
        # interruption on stderr and use the conventional 128+SIGINT code.
        print("; interrupted", file=sys.stderr)
        return 130
    if internal_errors:
        print(f"error: {internal_errors} check(s) hit internal errors", file=sys.stderr)
    return 1 if failures or internal_errors else 0


if __name__ == "__main__":
    raise SystemExit(main())
