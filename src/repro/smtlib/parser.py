"""SMT-LIB 2.6 → :mod:`repro.strings` AST translation (QF_S / QF_SLIA subset).

Supported commands: ``set-logic``, ``set-info``, ``set-option`` (recorded,
not interpreted), ``declare-const`` / 0-ary ``declare-fun`` over ``String``
/ ``Int``, ``assert`` (with ``(! … :named n)`` annotations), ``push`` /
``pop``, ``check-sat``, ``get-model``, ``get-unsat-core``, ``echo``,
``exit``.

Supported term language (the fragment :class:`repro.strings.ast.Problem`
covers — conjunctions of possibly-negated string atoms, with full boolean
structure allowed inside pure linear-integer subformulae):

* string terms: variables, literals, ``str.++``, ``str.at`` (at the top of
  an equality), ``str.substr`` / ``str.replace`` — anywhere a string term
  may occur: at the top of an equality they become the extended atoms of
  :mod:`repro.strings.ast` directly, in nested positions a fresh
  definitional constant (``_sub!N`` / ``_rep!N``) names the value;
* string atoms: ``=`` / ``distinct``, ``str.prefixof``, ``str.suffixof``,
  ``str.contains`` (note the argument swap: SMT-LIB's *haystack first*
  becomes the AST's *needle first*), ``str.in_re``;
* regular expressions: ``str.to_re``, ``re.++``, ``re.union``,
  ``re.inter``, ``re.comp``, ``re.*``, ``re.+``, ``re.opt``,
  ``(_ re.loop l u)``, ``re.range``, ``re.allchar``, ``re.all`` —
  translated to the pattern syntax of :mod:`repro.automata.regex`
  (``re.inter`` / ``re.comp`` print back, so round trips stay fixpoints);
* integers: ``+``, ``-``, ``*`` (by constants), numerals, ``str.len``,
  ``str.indexof`` (directly at an equality, via a fresh ``_idx!N``
  constant elsewhere), and the relations ``<= < >= > = distinct`` with
  ``and``/``or``/``not``/``=>`` boolean structure — including negated
  n-ary ``distinct``, which becomes a disjunction of equalities;
* the Bool constants ``true`` / ``false`` anywhere in assert bodies, by
  constant folding: ``(= φ true)``, ``(distinct φ false)``, absorbing /
  neutral elements of ``and`` / ``or`` / ``=>``.  Only an equality between
  two *non-constant* Bool terms (an if-and-only-if) stays out of the
  fragment.

Alphabet: the solver works over an explicit finite alphabet.  Scripts can
declare it with the extension ``(set-info :alphabet "abc")`` (the printer
always emits it); otherwise the alphabet is inferred as every character
occurring in string literals and ``re.range`` bounds of the script's
*assertions* (literals elsewhere — echo messages, info values — do not
count, since complements are alphabet-relative).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple, Union

from ..lia import Formula as LiaFormula
from ..lia import FALSE, TRUE, LinExpr, conj, disj, eq as lia_eq, implies, le as lia_le, ne as lia_ne, neg
from ..strings.ast import (
    Atom,
    Contains,
    IndexOfAtom,
    LengthConstraint,
    PrefixOf,
    Problem,
    RegexMembership,
    ReplaceAtom,
    StrAtAtom,
    StringLiteral,
    StringTerm,
    StringVar,
    SubstrAtom,
    SuffixOf,
    WordEquation,
    str_len,
)
from .lexer import SExpr, SmtLibError, SString, read_sexprs

from ..automata.regex import PATTERN_SPECIALS as _PATTERN_SPECIALS


def _escape_pattern(char: str) -> str:
    return "\\" + char if char in _PATTERN_SPECIALS else char


# ----------------------------------------------------------------------
# Commands
# ----------------------------------------------------------------------
@dataclass
class SetLogic:
    logic: str


@dataclass
class SetInfo:
    keyword: str
    value: object


@dataclass
class SetOption:
    keyword: str
    value: object


@dataclass
class DeclareConst:
    name: str
    sort: str


@dataclass
class AssertCommand:
    atoms: List[Atom]
    name: Optional[str] = None


@dataclass
class PushCommand:
    levels: int = 1


@dataclass
class PopCommand:
    levels: int = 1


@dataclass
class CheckSat:
    pass


@dataclass
class GetModel:
    pass


@dataclass
class GetUnsatCore:
    pass


@dataclass
class EchoCommand:
    message: str


@dataclass
class ExitCommand:
    pass


Command = Union[
    SetLogic, SetInfo, SetOption, DeclareConst, AssertCommand,
    PushCommand, PopCommand, CheckSat, GetModel, GetUnsatCore,
    EchoCommand, ExitCommand,
]


@dataclass
class SmtScript:
    """A parsed script: commands plus the metadata the session needs."""

    commands: List[Command] = field(default_factory=list)
    alphabet: Tuple[str, ...] = ()
    logic: Optional[str] = None
    #: value of ``(set-info :status …)`` when present
    expected_status: Optional[str] = None
    info: Dict[str, object] = field(default_factory=dict)


class _NotPureLia(Exception):
    """Internal: a subterm left the pure linear-integer fragment."""


# ----------------------------------------------------------------------
# Alphabet discovery (pass A over raw s-expressions)
# ----------------------------------------------------------------------
#: widest ``re.range`` span the alphabet inference will expand; wider
#: ranges require an explicit ``(set-info :alphabet …)`` declaration
_MAX_INFERRED_RANGE = 64


def _scan_alphabet(
    forms: Sequence[Tuple[SExpr, int]]
) -> Tuple[Optional[str], Set[str], Optional[int]]:
    declared: Optional[str] = None
    chars: Set[str] = set()
    oversized_line: Optional[int] = None

    def scan(expr: SExpr, line: int) -> None:
        nonlocal oversized_line
        if isinstance(expr, SString):
            chars.update(expr)
            return
        if isinstance(expr, list):
            if (
                len(expr) == 3
                and expr[0] == "re.range"
                and isinstance(expr[1], SString)
                and isinstance(expr[2], SString)
                and len(expr[1]) == 1
                and len(expr[2]) == 1
            ):
                low, high = ord(expr[1]), ord(expr[2])
                if high - low <= _MAX_INFERRED_RANGE:
                    chars.update(chr(c) for c in range(low, high + 1))
                elif oversized_line is None:
                    # Truncating would silently change complements (and so
                    # verdicts); remember the spot and fail later unless an
                    # explicit alphabet declaration turns up.
                    oversized_line = line
            for part in expr:
                scan(part, line)

    for form, form_line in forms:
        if (
            isinstance(form, list)
            and len(form) == 3
            and form[0] == "set-info"
            and form[1] == ":alphabet"
            and isinstance(form[2], SString)
        ):
            declared = str(form[2])
            continue
        # Only assertion bodies feed the inference: literals in unrelated
        # commands (echo messages, :source info, …) must not enlarge the
        # alphabet — complements are alphabet-relative, so a stray
        # character would change verdicts.
        if isinstance(form, list) and form and form[0] == "assert":
            scan(form, form_line)
    return declared, chars, oversized_line


# ----------------------------------------------------------------------
# The translator (pass B)
# ----------------------------------------------------------------------
class _Translator:
    def __init__(self, alphabet: Tuple[str, ...]) -> None:
        self.alphabet = alphabet
        self.sorts: Dict[str, str] = {}
        self.line = 0
        #: definitional atoms produced while translating the current assert
        #: body (fresh variables naming nested ``str.substr`` /
        #: ``str.indexof`` / ``str.replace`` applications)
        self.pending: List[Atom] = []
        self._fresh = 0

    def error(self, message: str) -> SmtLibError:
        return SmtLibError(message, self.line)

    def fresh_const(self, hint: str, sort: str) -> str:
        """Declare a fresh constant naming a nested extended application."""
        while True:
            name = f"_{hint}!{self._fresh}"
            self._fresh += 1
            if name not in self.sorts:
                break
        self.sorts[name] = sort
        return name

    def translate_assert(self, body: SExpr) -> List[Atom]:
        """Translate one assert body (definitional atoms first)."""
        self.pending = []
        main = self.atoms(body)
        return self.pending + main

    # -- sorts ----------------------------------------------------------
    def sort_of(self, expr: SExpr) -> str:
        if isinstance(expr, SString):
            return "String"
        if isinstance(expr, int):
            return "Int"
        if isinstance(expr, str):
            if expr in ("true", "false"):
                return "Bool"
            sort = self.sorts.get(expr)
            if sort is None:
                raise self.error(f"undeclared constant {expr!r}")
            return sort
        if isinstance(expr, list) and expr:
            head = expr[0]
            if head in ("str.++", "str.at", "str.substr", "str.replace"):
                return "String"
            if head in ("str.len", "str.indexof", "+", "-", "*", "div", "mod", "abs"):
                return "Int"
            return "Bool"
        raise self.error(f"cannot determine the sort of {expr!r}")

    # -- string terms ---------------------------------------------------
    def string_term(self, expr: SExpr) -> StringTerm:
        if isinstance(expr, SString):
            return (StringLiteral(str(expr)),) if expr else ()
        if isinstance(expr, str):
            if self.sorts.get(expr) != "String":
                raise self.error(f"{expr!r} is not a declared String constant")
            return (StringVar(expr),)
        if isinstance(expr, list) and expr and expr[0] == "str.++":
            parts: List = []
            for arg in expr[1:]:
                parts.extend(self.string_term(arg))
            return tuple(parts)
        if isinstance(expr, list) and expr and expr[0] in ("str.substr", "str.replace"):
            # A nested application: name its value with a fresh constant and
            # record the (always-positive) definitional atom — the extended
            # functions are total, so the definition is polarity-independent.
            name = self.fresh_const("sub" if expr[0] == "str.substr" else "rep", "String")
            target: StringTerm = (StringVar(name),)
            if expr[0] == "str.substr":
                self.pending.append(self._substr_atom(target, expr, True))
            else:
                self.pending.append(self._replace_atom(target, expr, True))
            return target
        raise self.error(f"unsupported string term {expr!r}")

    # -- integer terms --------------------------------------------------
    def int_term(self, expr: SExpr) -> LinExpr:
        if isinstance(expr, bool):  # pragma: no cover - defensive
            raise self.error("boolean in integer position")
        if isinstance(expr, int):
            return LinExpr.constant(expr)
        if isinstance(expr, SString):
            raise self.error("string literal in integer position")
        if isinstance(expr, str):
            if self.sorts.get(expr) != "Int":
                raise self.error(f"{expr!r} is not a declared Int constant")
            return LinExpr.var(expr)
        if not isinstance(expr, list) or not expr:
            raise self.error(f"unsupported integer term {expr!r}")
        head = expr[0]
        if head == "+":
            return LinExpr.sum_of(self.int_term(arg) for arg in expr[1:])
        if head == "-":
            if len(expr) == 2:
                return -self.int_term(expr[1])
            total = self.int_term(expr[1])
            for arg in expr[2:]:
                total = total - self.int_term(arg)
            return total
        if head == "*":
            factors = [self.int_term(arg) for arg in expr[1:]]
            constant = 1
            symbolic: Optional[LinExpr] = None
            for factor in factors:
                if factor.is_constant():
                    constant *= factor.const
                elif symbolic is None:
                    symbolic = factor
                else:
                    raise self.error("non-linear multiplication")
            if symbolic is None:
                return LinExpr.constant(constant)
            return symbolic * constant
        if head == "str.len":
            if len(expr) != 2:
                raise self.error("str.len takes one argument")
            term = self.string_term(expr[1])
            total = LinExpr.constant(0)
            for element in term:
                if isinstance(element, StringVar):
                    total = total + str_len(element.name)
                else:
                    total = total + len(element.value)
            return total
        if head == "str.indexof":
            # A nested application in integer position: name its value with
            # a fresh Int constant and record the definitional atom.
            name = self.fresh_const("idx", "Int")
            result = LinExpr.var(name)
            self.pending.append(self._indexof_atom(result, expr, True))
            return result
        raise self.error(f"unsupported integer operator {head!r}")

    # -- extended string functions --------------------------------------
    def _substr_atom(self, target: StringTerm, app: SExpr, positive: bool) -> Atom:
        if len(app) != 4:
            raise self.error("str.substr takes three arguments")
        return SubstrAtom(
            target,
            self.string_term(app[1]),
            self.int_term(app[2]),
            self.int_term(app[3]),
            positive=positive,
        )

    def _replace_atom(self, target: StringTerm, app: SExpr, positive: bool) -> Atom:
        if len(app) != 4:
            raise self.error("str.replace takes three arguments")
        return ReplaceAtom(
            target,
            self.string_term(app[1]),
            self.string_term(app[2]),
            self.string_term(app[3]),
            positive=positive,
        )

    def _indexof_atom(self, result: LinExpr, app: SExpr, positive: bool) -> Atom:
        if len(app) != 4:
            raise self.error("str.indexof takes three arguments")
        return IndexOfAtom(
            result,
            self.string_term(app[1]),
            self.string_term(app[2]),
            self.int_term(app[3]),
            positive=positive,
        )

    # -- pure-LIA formulae ---------------------------------------------
    def lia_formula(self, expr: SExpr) -> LiaFormula:
        """Translate a pure linear-integer boolean term (full structure)."""
        constant = self._bool_const(expr)  # NOT a string literal "true"
        if constant is not None:
            return TRUE if constant else FALSE
        if not isinstance(expr, list) or not expr:
            raise _NotPureLia()
        head = expr[0]
        if head == "and":
            return conj([self.lia_formula(arg) for arg in expr[1:]])
        if head == "or":
            return disj([self.lia_formula(arg) for arg in expr[1:]])
        if head == "not":
            if len(expr) != 2:
                raise self.error("not takes one argument")
            return neg(self.lia_formula(expr[1]))
        if head == "=>":
            if len(expr) < 3:
                raise self.error("=> takes at least two arguments")
            result = self.lia_formula(expr[-1])
            for arg in reversed(expr[1:-1]):
                result = implies(self.lia_formula(arg), result)
            return result
        if head in ("<=", "<", ">", ">=", "=", "distinct"):
            arguments = expr[1:]
            if any(self.sort_of(arg) != "Int" for arg in arguments):
                raise _NotPureLia()
            terms = [self.int_term(arg) for arg in arguments]
            if len(terms) < 2:
                raise self.error(f"{head} takes at least two arguments")
            parts: List[LiaFormula] = []
            if head == "distinct":
                for i in range(len(terms)):
                    for j in range(i + 1, len(terms)):
                        parts.append(lia_ne(terms[i], terms[j]))
                return conj(parts)
            for left, right in zip(terms, terms[1:]):
                if head == "<=":
                    parts.append(lia_le(left, right))
                elif head == "<":
                    parts.append(lia_le(left + 1, right))
                elif head == ">=":
                    parts.append(lia_le(right, left))
                elif head == ">":
                    parts.append(lia_le(right + 1, left))
                else:
                    parts.append(lia_eq(left, right))
            return conj(parts)
        raise _NotPureLia()

    # -- regular expressions -------------------------------------------
    def regex_pattern(self, expr: SExpr) -> str:
        """Translate a ``re`` term to :mod:`repro.automata.regex` syntax."""
        if isinstance(expr, str):
            if expr == "re.allchar":
                return "."
            if expr == "re.all":
                return ".*"
            if expr == "re.none":
                raise self.error("re.none (the empty language) is not supported")
            raise self.error(f"unsupported regular expression {expr!r}")
        if not isinstance(expr, list) or not expr:
            raise self.error(f"unsupported regular expression {expr!r}")
        head = expr[0]
        if head == "str.to_re":
            if len(expr) != 2 or not isinstance(expr[1], SString):
                raise self.error("str.to_re takes one string literal")
            return "".join(_escape_pattern(c) for c in expr[1])
        if head in ("re.++", "re.union") and len(expr) < 2:
            raise self.error(f"{head} takes at least one argument")
        if head == "re.++":
            return "".join(f"({self.regex_pattern(arg)})" for arg in expr[1:])
        if head == "re.union":
            return "(" + "|".join(self.regex_pattern(arg) for arg in expr[1:]) + ")"
        if head in ("re.*", "re.+", "re.opt"):
            if len(expr) != 2:
                raise self.error(f"{head} takes one argument")
            inner = self.regex_pattern(expr[1])
            suffix = {"re.*": "*", "re.+": "+", "re.opt": "?"}[head]
            return f"({inner}){suffix}"
        if head == "re.inter":
            if len(expr) < 2:
                raise self.error("re.inter takes at least one argument")
            return "(" + "&".join(f"({self.regex_pattern(arg)})" for arg in expr[1:]) + ")"
        if head == "re.comp":
            if len(expr) != 2:
                raise self.error("re.comp takes one argument")
            return f"(~({self.regex_pattern(expr[1])}))"
        if head == "re.range":
            if (
                len(expr) != 3
                or not isinstance(expr[1], SString)
                or not isinstance(expr[2], SString)
                or len(expr[1]) != 1
                or len(expr[2]) != 1
            ):
                raise self.error("re.range takes two single-character literals")
            return f"[{_escape_pattern(str(expr[1]))}-{_escape_pattern(str(expr[2]))}]"
        if isinstance(head, list) and len(head) == 4 and head[:2] == ["_", "re.loop"]:
            low, high = head[2], head[3]
            if not isinstance(low, int) or not isinstance(high, int):
                raise self.error("re.loop bounds must be numerals")
            if low > high:
                raise self.error(f"re.loop lower bound {low} exceeds upper bound {high}")
            if len(expr) != 2:
                raise self.error("re.loop takes one regular-expression argument")
            return f"({self.regex_pattern(expr[1])}){{{low},{high}}}"
        raise self.error(f"unsupported regular-expression operator {head!r}")

    # -- boolean terms → atom lists ------------------------------------
    @staticmethod
    def _bool_const(expr: SExpr) -> Optional[bool]:
        """``True``/``False`` for the Bool constants, ``None`` otherwise.

        ``SString`` subclasses ``str``, so a naive ``expr == "true"`` would
        also match the string *literal* ``"true"`` — the literal is not a
        Bool constant.
        """
        if isinstance(expr, str) and not isinstance(expr, SString):
            if expr == "true":
                return True
            if expr == "false":
                return False
        return None

    def atoms(self, expr: SExpr, positive: bool = True) -> List[Atom]:
        """Translate a boolean term into a conjunction of AST atoms."""
        constant = self._bool_const(expr)
        if constant is not None:
            if constant == positive:
                return []
            return [LengthConstraint(FALSE)]
        if isinstance(expr, str) and not isinstance(expr, SString):
            raise self.error(f"free boolean constants are not supported: {expr!r}")
        if not isinstance(expr, list) or not expr:
            raise self.error(f"unsupported boolean term {expr!r}")
        head = expr[0]

        if head == "!":
            # annotations are handled at the assert level; elsewhere strip
            if len(expr) < 2:
                raise self.error("! annotation needs a term")
            return self.atoms(expr[1], positive)
        if head == "not":
            if len(expr) != 2:
                raise self.error("not takes one argument")
            return self.atoms(expr[1], not positive)
        if head == "and" and positive:
            collected: List[Atom] = []
            for arg in expr[1:]:
                collected.extend(self.atoms(arg, True))
            return collected
        if head == "or" and not positive:
            collected = []
            for arg in expr[1:]:
                collected.extend(self.atoms(arg, False))
            return collected
        if head in ("and", "or"):
            # Only ``or``-under-assertion and ``and``-under-negation reach
            # this point: both are disjunctions, which the conjunctive
            # fragment cannot express in general — but Bool constants fold
            # away.  A ``true`` disjunct satisfies the whole term (for the
            # negated conjunction the absorbing constant is ``false``);
            # neutral constants drop out.
            absorbing = head == "or"
            folded: List[SExpr] = []
            for arg in expr[1:]:
                value = self._bool_const(arg)
                if value is None:
                    folded.append(arg)
                elif value == absorbing:
                    return []  # absorbing element: the term already holds
            if not folded:
                return [LengthConstraint(FALSE)]
            if len(folded) == 1:
                return self.atoms(folded[0], positive)
        if head == "=>" and len(expr) == 3:
            antecedent = self._bool_const(expr[1])
            consequent = self._bool_const(expr[2])
            if antecedent is False or consequent is True:
                return [] if positive else [LengthConstraint(FALSE)]
            if antecedent is True:
                return self.atoms(expr[2], positive)
            if consequent is False:
                return self.atoms(expr[1], not positive)
        if head == "=>" and not positive:
            if len(expr) != 3:
                raise self.error("negated => takes exactly two arguments here")
            return self.atoms(expr[1], True) + self.atoms(expr[2], False)

        if head in ("=", "distinct") and len(expr) >= 3:
            argument_sorts = {self.sort_of(arg) for arg in expr[1:]}
            if argument_sorts == {"String"}:
                equal = (head == "=") == positive
                return self._string_equalities(expr[1:], equal, chained=head == "=")
            if argument_sorts == {"Bool"}:
                return self._bool_equalities(expr[1:], head == "=", positive)
            if argument_sorts == {"Int"} and len(expr) == 3:
                # A (dis)equality with a direct str.indexof application on
                # one side becomes the atom itself — no fresh constant, so
                # printing and re-parsing reach a fixpoint immediately.
                equal = (head == "=") == positive
                for app_side, other in ((expr[1], expr[2]), (expr[2], expr[1])):
                    if isinstance(app_side, list) and app_side and app_side[0] == "str.indexof":
                        return [self._indexof_atom(self.int_term(other), app_side, equal)]
            if (
                head == "distinct"
                and not positive
                and argument_sorts == {"Int"}
            ):
                # ``(not (distinct t1 … tn))`` over Int terms: *some* pair
                # is equal — a plain disjunction of equalities inside the
                # pure-LIA boolean structure (the string-sorted analogue
                # stays a clean error: string disjunctions do not fit the
                # conjunctive fragment).
                terms = [self.int_term(arg) for arg in expr[1:]]
                equalities = [
                    lia_eq(terms[i], terms[j])
                    for i in range(len(terms))
                    for j in range(i + 1, len(terms))
                ]
                return [LengthConstraint(disj(equalities))]

        if head == "str.prefixof":
            if len(expr) != 3:
                raise self.error("str.prefixof takes two arguments")
            return [PrefixOf(self.string_term(expr[1]), self.string_term(expr[2]), positive)]
        if head == "str.suffixof":
            if len(expr) != 3:
                raise self.error("str.suffixof takes two arguments")
            return [SuffixOf(self.string_term(expr[1]), self.string_term(expr[2]), positive)]
        if head == "str.contains":
            if len(expr) != 3:
                raise self.error("str.contains takes two arguments")
            # SMT-LIB: (str.contains haystack needle); the AST is needle-first.
            return [Contains(self.string_term(expr[2]), self.string_term(expr[1]), positive)]
        if head == "str.in_re":
            if len(expr) != 3:
                raise self.error("str.in_re takes two arguments")
            pattern = self.regex_pattern(expr[2])
            target = expr[1]
            if isinstance(target, str) and self.sorts.get(target) == "String":
                return [RegexMembership(target, pattern, positive)]
            raise self.error("str.in_re is supported on single String constants only")

        # Everything else must be pure LIA (possibly with full structure).
        try:
            formula = self.lia_formula(expr)
        except _NotPureLia:
            raise self.error(
                f"term {head!r} leaves the supported conjunctive QF_SLIA fragment"
            )
        return [LengthConstraint(formula if positive else neg(formula))]

    def _string_equalities(self, arguments: List[SExpr], equal: bool, chained: bool) -> List[Atom]:
        """``=`` (chained) / ``distinct`` (pairwise) over string terms.

        ``equal`` is the polarity of the *individual* pairs after folding
        in the surrounding negation.  A conjunction of pairs is always
        representable; the two disjunctive cases are not and must be
        rejected: a negated chain ``(not (= x y z))`` means *some* adjacent
        pair differs, and a negated ``(not (distinct x y z))`` with three
        or more arguments means *some* pair is equal.
        """
        if chained:
            pairs = list(zip(arguments, arguments[1:]))
            if not equal and len(pairs) > 1:
                raise self.error(
                    "negated chained equalities are a disjunction and are not supported"
                )
        else:
            pairs = [
                (arguments[i], arguments[j])
                for i in range(len(arguments))
                for j in range(i + 1, len(arguments))
            ]
            if equal and len(pairs) > 1:
                raise self.error(
                    "negated n-ary distinct is a disjunction and is not supported"
                )
        return [self._string_equality(left, right, equal) for left, right in pairs]

    def _bool_equalities(self, arguments: List[SExpr], chained: bool, positive: bool) -> List[Atom]:
        """``=`` / ``distinct`` over Bool terms, by constant folding.

        Every supported pair involves at least one of the constants
        ``true`` / ``false``, which folds the pair into the other side (or
        its negation); an equality between two non-constant Bool terms is
        an if-and-only-if the conjunctive fragment cannot express.  As with
        strings, the two genuinely disjunctive shapes — a negated chain and
        a negated n-ary ``distinct`` — are rejected unless they fold to a
        single pair.
        """
        if chained:
            pairs = list(zip(arguments, arguments[1:]))
            if not positive and len(pairs) > 1:
                raise self.error(
                    "negated chained equalities are a disjunction and are not supported"
                )
        else:
            pairs = [
                (arguments[i], arguments[j])
                for i in range(len(arguments))
                for j in range(i + 1, len(arguments))
            ]
            if not positive and len(pairs) > 1:
                raise self.error(
                    "negated n-ary distinct is a disjunction and is not supported"
                )
        collected: List[Atom] = []
        for left, right in pairs:
            # polarity of "left equals right" after folding the negation in
            equal = positive == chained
            left_const = self._bool_const(left)
            right_const = self._bool_const(right)
            if left_const is not None and right_const is not None:
                if (left_const == right_const) != equal:
                    return [LengthConstraint(FALSE)]
                continue
            if left_const is not None:
                collected.extend(self.atoms(right, equal == left_const))
            elif right_const is not None:
                collected.extend(self.atoms(left, equal == right_const))
            else:
                raise self.error(
                    "boolean equality between two non-constant terms is not supported"
                )
        return collected

    def _string_equality(self, left: SExpr, right: SExpr, equal: bool) -> Atom:
        for target_side, app_side in ((left, right), (right, left)):
            if not (isinstance(app_side, list) and app_side):
                continue
            head = app_side[0]
            if head == "str.at":
                if len(app_side) != 3:
                    raise self.error("str.at takes two arguments")
                target = self.string_term(target_side)
                if len(target) != 1:
                    raise self.error("str.at must be compared to one variable or literal")
                return StrAtAtom(
                    target[0],
                    self.string_term(app_side[1]),
                    self.int_term(app_side[2]),
                    positive=equal,
                )
            if head == "str.substr":
                return self._substr_atom(self.string_term(target_side), app_side, equal)
            if head == "str.replace":
                return self._replace_atom(self.string_term(target_side), app_side, equal)
        return WordEquation(self.string_term(left), self.string_term(right), positive=equal)


# ----------------------------------------------------------------------
# Script parsing
# ----------------------------------------------------------------------
def parse_script(text: str) -> SmtScript:
    """Parse a whole SMT-LIB script into commands plus metadata."""
    forms = read_sexprs(text)
    declared, inferred, oversized_line = _scan_alphabet(forms)
    if declared is None and oversized_line is not None:
        raise SmtLibError(
            f"a re.range spans more than {_MAX_INFERRED_RANGE} characters; "
            'declare the alphabet explicitly with (set-info :alphabet "…")',
            oversized_line,
        )
    alphabet = tuple(dict.fromkeys(declared)) if declared is not None else tuple(sorted(inferred))
    if not alphabet:
        alphabet = ("a", "b")
    script = SmtScript(alphabet=alphabet)
    translator = _Translator(alphabet)

    for form, line in forms:
        translator.line = line
        if not isinstance(form, list) or not form or not isinstance(form[0], str):
            raise SmtLibError(f"expected a command, got {form!r}", line)
        head = form[0]
        if head == "set-logic":
            script.logic = str(form[1])
            script.commands.append(SetLogic(script.logic))
        elif head == "set-info":
            keyword = str(form[1])
            value = form[2] if len(form) > 2 else None
            script.info[keyword] = str(value) if isinstance(value, SString) else value
            if keyword == ":status" and isinstance(value, str):
                script.expected_status = value
            script.commands.append(SetInfo(keyword, value))
        elif head == "set-option":
            script.commands.append(SetOption(str(form[1]), form[2] if len(form) > 2 else None))
        elif head in ("declare-const", "declare-fun"):
            if head == "declare-fun":
                if len(form) != 4 or form[2] != []:
                    raise SmtLibError("only 0-ary declare-fun is supported", line)
                name, sort = form[1], form[3]
            else:
                if len(form) != 3:
                    raise SmtLibError("declare-const takes a name and a sort", line)
                name, sort = form[1], form[2]
            if not isinstance(name, str) or not isinstance(sort, str):
                raise SmtLibError("malformed declaration", line)
            if sort not in ("String", "Int"):
                raise SmtLibError(f"unsupported sort {sort!r}", line)
            if name in translator.sorts:
                raise SmtLibError(f"{name!r} is declared twice", line)
            translator.sorts[name] = sort
            script.commands.append(DeclareConst(name, sort))
        elif head == "assert":
            if len(form) != 2:
                raise SmtLibError("assert takes one term", line)
            body = form[1]
            name: Optional[str] = None
            if isinstance(body, list) and body and body[0] == "!":
                if len(body) < 2:
                    raise SmtLibError("! annotation needs a term", line)
                annotations = body[2:]
                for position in range(0, len(annotations) - 1, 2):
                    if annotations[position] == ":named":
                        name = str(annotations[position + 1])
                body = body[1]
            script.commands.append(AssertCommand(translator.translate_assert(body), name=name))
        elif head in ("push", "pop"):
            levels = form[1] if len(form) > 1 else 1
            if not isinstance(levels, int) or levels < 0:
                raise SmtLibError(f"{head} takes a non-negative numeral", line)
            command = PushCommand(levels) if head == "push" else PopCommand(levels)
            script.commands.append(command)
        elif head == "check-sat":
            script.commands.append(CheckSat())
        elif head == "get-model":
            script.commands.append(GetModel())
        elif head == "get-unsat-core":
            script.commands.append(GetUnsatCore())
        elif head == "echo":
            message = form[1] if len(form) > 1 else SString("")
            script.commands.append(EchoCommand(str(message)))
        elif head == "exit":
            script.commands.append(ExitCommand())
        elif head == "get-info":
            script.commands.append(SetInfo(str(form[1]) if len(form) > 1 else "", None))
        else:
            raise SmtLibError(f"unsupported command {head!r}", line)
    return script


def parse_problem(text: str) -> Problem:
    """Parse a single-query script into one :class:`Problem`.

    Push/pop commands are honoured; the returned problem conjoins the
    assertions active at the end of the script (the common corpus shape:
    declarations, asserts, one ``check-sat``).
    """
    script = parse_script(text)
    frames: List[List[Atom]] = [[]]
    for command in script.commands:
        if isinstance(command, AssertCommand):
            frames[-1].extend(command.atoms)
        elif isinstance(command, PushCommand):
            for _ in range(command.levels):
                frames.append([])
        elif isinstance(command, PopCommand):
            for _ in range(command.levels):
                if len(frames) == 1:
                    raise SmtLibError("pop past the base assertion level")
                frames.pop()
    name = str(script.info.get(":source", "") or "")
    problem = Problem(alphabet=script.alphabet, name=name)
    for frame in frames:
        for atom in frame:
            problem.add(atom)
    return problem
