"""Drive a :class:`repro.Session` from a parsed SMT-LIB script.

The runner is the engine of ``python -m repro.smtlib``: commands stream
into one session (``assert`` → :meth:`~repro.Session.add`, ``push``/``pop``
→ the assertion stack, ``check-sat`` → :meth:`~repro.Session.check`) and
the answers stream out through a callback, exactly one output line per
answering command.

Named assertions (``(! … :named n)``) map onto the session's named
assertions; an assert whose term splits into several AST atoms registers
them as ``n!0 n!1 …`` internally, and ``get-unsat-core`` folds them back to
the user-visible label.  Per the SMT-LIB convention only *named* assertions
appear in printed cores.

A ``check-sat`` that cannot be decided answers ``unknown`` followed by an
SMT-LIB comment naming the structured reason (``; unknown: timeout@lia.sat
after 131072 steps (1.00s)``), so batch drivers can tell a clean budget
exhaustion from an internal error without parsing solver-specific output;
:attr:`ScriptRunner.internal_errors` counts the latter for the CLI's exit
status.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, List, Optional

from ..budget import Budget

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..solver import Session, SolverConfig

from .lexer import SmtLibError
from .parser import (
    AssertCommand,
    CheckSat,
    DeclareConst,
    EchoCommand,
    ExitCommand,
    GetModel,
    GetUnsatCore,
    PopCommand,
    PushCommand,
    SmtScript,
    parse_script,
)


class ScriptRunner:
    """Execute SMT-LIB scripts on a fresh session per script."""

    def __init__(
        self,
        config: Optional["SolverConfig"] = None,
        out: Optional[Callable[[str], None]] = None,
        normalization_cache=None,
    ) -> None:
        self.config = config
        self.out = out
        #: optional caller-owned NormalizationCache shared by every session
        #: this runner creates (the serve workers pass one per process)
        self.normalization_cache = normalization_cache
        self.session: Optional["Session"] = None
        #: every check-sat answer of the last run, in order
        self.verdicts: List[str] = []
        #: per check-sat: the displayable unknown reason ("" when decided)
        self.reasons: List[str] = []
        #: unexpected engine exceptions converted into unknown verdicts
        #: (cumulative across runs; the CLI exits non-zero when > 0)
        self.internal_errors: int = 0

    # ------------------------------------------------------------------
    def run(
        self, text: str, name: str = "", budget: Optional[Budget] = None
    ) -> List[str]:
        """Run one script; returns the output lines (also sent to ``out``)."""
        script = parse_script(text)
        return self.run_script(script, name=name, budget=budget)

    def run_script(
        self, script: SmtScript, name: str = "", budget: Optional[Budget] = None
    ) -> List[str]:
        """Execute ``script``; one output line per answering command.

        ``budget`` is an optional caller-owned :class:`~repro.budget.Budget`
        **shared by every ``check-sat`` of the script** — the server layer
        passes one budget covering a whole job, so a script that exhausts it
        mid-run answers its remaining checks immediately with structured
        ``unknown`` verdicts instead of burning the deadline once per check.
        The budget's ``hook`` is also the cross-process cancellation point:
        a hook that raises :class:`~repro.budget.BudgetExceeded` (e.g. when
        a portfolio sibling already won) aborts the in-flight check with an
        ``interrupted`` reason.  Without a budget each check runs under the
        session config's own timeout, as before.
        """
        # Imported lazily: repro.strings re-exports this module's package,
        # and repro.solver imports repro.strings — a module-level import
        # here would close that cycle.
        from ..solver import Session, Status, StringModel

        declarations = {
            command.name: command.sort
            for command in script.commands
            if isinstance(command, DeclareConst)
        }
        session = Session(
            config=self.config,
            alphabet=script.alphabet,
            name=name,
            normalization_cache=self.normalization_cache,
        )
        self.session = session
        self.verdicts = []
        self.reasons = []
        outputs: List[str] = []
        #: internal assertion name -> user-visible label (named asserts only)
        labels: Dict[str, str] = {}

        def emit(line: str) -> None:
            outputs.append(line)
            if self.out is not None:
                self.out(line)

        for command in script.commands:
            if isinstance(command, AssertCommand):
                atoms = command.atoms
                if command.name is not None and len(atoms) > 1:
                    internal_names = [f"{command.name}!{i}" for i in range(len(atoms))]
                elif command.name is not None:
                    internal_names = [command.name]
                else:
                    internal_names = [None] * len(atoms)
                for atom, internal in zip(atoms, internal_names):
                    try:
                        added = session.add(atom, name=internal)
                    except ValueError as error:
                        raise SmtLibError(str(error))
                    if command.name is not None:
                        labels[added] = command.name
            elif isinstance(command, PushCommand):
                for _ in range(command.levels):
                    session.push()
            elif isinstance(command, PopCommand):
                try:
                    session.pop(command.levels)
                except (IndexError, ValueError) as error:
                    raise SmtLibError(str(error))
            elif isinstance(command, CheckSat):
                result = session.check(budget=budget)
                verdict = result.status.value
                if result.status is Status.TIMEOUT:
                    verdict = "unknown"
                self.verdicts.append(verdict)
                reason = str(result.reason) if verdict == "unknown" else ""
                self.reasons.append(reason)
                self.internal_errors += result.stats.get("internal_errors", 0)
                emit(verdict)
                if reason:
                    emit(f"; unknown: {reason}")
            elif isinstance(command, GetModel):
                model = session.model()
                if model is None or not self.verdicts or self.verdicts[-1] != "sat":
                    emit('(error "no model available")')
                else:
                    # Project onto the script's declared constants: internal
                    # normalisation variables are not part of the model the
                    # client asked about, and every declared constant gets a
                    # value (unconstrained ones default to ""/0).
                    declared = StringModel(
                        strings={
                            name: str(model.strings.get(name, ""))
                            for name, sort in declarations.items()
                            if sort == "String"
                        },
                        integers={
                            name: int(model.integers.get(name, 0))
                            for name, sort in declarations.items()
                            if sort == "Int"
                        },
                    )
                    emit(declared.to_smtlib())
            elif isinstance(command, GetUnsatCore):
                if not self.verdicts or self.verdicts[-1] != "unsat":
                    emit('(error "no unsat core available")')
                else:
                    core = session.unsat_core()
                    seen: Dict[str, None] = {}
                    for internal in core:
                        label = labels.get(internal)
                        if label is not None:
                            seen.setdefault(label, None)
                    emit("(" + " ".join(seen) + ")")
            elif isinstance(command, EchoCommand):
                emit(command.message)
            elif isinstance(command, ExitCommand):
                break
            # SetLogic / SetInfo / SetOption / DeclareConst need no action
            # here: declarations were resolved during parsing.
        return outputs


def run_script(text: str, config: Optional["SolverConfig"] = None, name: str = "") -> List[str]:
    """Convenience one-call runner: script text in, output lines out."""
    return ScriptRunner(config=config).run(text, name=name)
