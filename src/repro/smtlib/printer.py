""":mod:`repro.strings` AST → SMT-LIB 2.6 printing (the round-trip half).

:func:`problem_to_smtlib` renders a :class:`~repro.strings.ast.Problem` as
a self-contained script (declarations, named asserts, ``check-sat``) that
:func:`repro.smtlib.parser.parse_problem` reads back.  The printer is a
fixpoint partner of the parser: printing, re-parsing and printing again
yields the same text, which is what the round-trip tests check.

Regular expressions are printed from the pattern syntax of
:mod:`repro.automata.regex`; memberships whose language is a raw ``Nfa``
have no concrete syntax and are rejected with a clear error.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..automata.nfa import Nfa
from ..automata.regex import (
    Alternation,
    AnyChar,
    CharClass,
    Complement,
    Concat,
    Empty,
    Intersection,
    Literal,
    RegexNode,
    Repeat,
    parse as parse_pattern,
)
from ..lia import And, BoolConst, Eq, Formula, Iff, Implies, Le, LinExpr, Not, Or
from ..strings.ast import (
    Atom,
    Contains,
    IndexOfAtom,
    LengthConstraint,
    PrefixOf,
    Problem,
    RegexMembership,
    ReplaceAtom,
    StrAtAtom,
    StringLiteral,
    StringTerm,
    StringVar,
    SubstrAtom,
    SuffixOf,
    WordEquation,
)


class PrintError(ValueError):
    """Raised when an AST object has no SMT-LIB rendering."""


def _string_literal(value: str) -> str:
    return '"' + value.replace('"', '""') + '"'


def _int_literal(value: int) -> str:
    return str(value) if value >= 0 else f"(- {-value})"


# ----------------------------------------------------------------------
# String terms
# ----------------------------------------------------------------------
def term_to_sexpr(term: StringTerm) -> str:
    parts: List[str] = []
    for element in term:
        if isinstance(element, StringVar):
            parts.append(element.name)
        else:
            parts.append(_string_literal(element.value))
    if not parts:
        return '""'
    if len(parts) == 1:
        return parts[0]
    return "(str.++ " + " ".join(parts) + ")"


# ----------------------------------------------------------------------
# Integer expressions and LIA formulae
# ----------------------------------------------------------------------
def linexpr_to_sexpr(expr: LinExpr) -> str:
    terms: List[str] = []
    for name in sorted(expr.coeffs):
        coeff = expr.coeffs[name]
        rendered = f"(str.len {name[len('@len.'):]})" if name.startswith("@len.") else name
        if coeff != 1:
            rendered = f"(* {_int_literal(coeff)} {rendered})"
        terms.append(rendered)
    if expr.const or not terms:
        terms.append(_int_literal(expr.const))
    if len(terms) == 1:
        return terms[0]
    return "(+ " + " ".join(terms) + ")"


def formula_to_sexpr(formula: Formula) -> str:
    if isinstance(formula, BoolConst):
        return "true" if formula.value else "false"
    if isinstance(formula, Le):
        return f"(<= {linexpr_to_sexpr(formula.expr)} 0)"
    if isinstance(formula, Eq):
        return f"(= {linexpr_to_sexpr(formula.expr)} 0)"
    if isinstance(formula, And):
        return "(and " + " ".join(formula_to_sexpr(arg) for arg in formula.args) + ")"
    if isinstance(formula, Or):
        return "(or " + " ".join(formula_to_sexpr(arg) for arg in formula.args) + ")"
    if isinstance(formula, Not):
        return f"(not {formula_to_sexpr(formula.arg)})"
    if isinstance(formula, Implies):
        return f"(=> {formula_to_sexpr(formula.antecedent)} {formula_to_sexpr(formula.consequent)})"
    if isinstance(formula, Iff):
        return f"(= {formula_to_sexpr(formula.left)} {formula_to_sexpr(formula.right)})"
    raise PrintError(f"formula {formula!r} has no SMT-LIB rendering")


# ----------------------------------------------------------------------
# Regular expressions
# ----------------------------------------------------------------------
def _contiguous(chars: Sequence[str]) -> bool:
    codes = [ord(c) for c in chars]
    return len(codes) >= 3 and codes == list(range(codes[0], codes[0] + len(codes)))


def regex_node_to_sexpr(node: RegexNode) -> str:
    if isinstance(node, Empty):
        return '(str.to_re "")'
    if isinstance(node, Literal):
        return f"(str.to_re {_string_literal(node.char)})"
    if isinstance(node, AnyChar):
        return "re.allchar"
    if isinstance(node, CharClass):
        ordered = sorted(node.chars)
        if node.negated:
            raise PrintError("negated character classes have no portable rendering")
        if _contiguous(ordered):
            return f"(re.range {_string_literal(ordered[0])} {_string_literal(ordered[-1])})"
        if len(ordered) == 1:
            return f"(str.to_re {_string_literal(ordered[0])})"
        return "(re.union " + " ".join(f"(str.to_re {_string_literal(c)})" for c in ordered) + ")"
    if isinstance(node, Concat):
        return "(re.++ " + " ".join(regex_node_to_sexpr(part) for part in node.parts) + ")"
    if isinstance(node, Alternation):
        return "(re.union " + " ".join(regex_node_to_sexpr(option) for option in node.options) + ")"
    if isinstance(node, Intersection):
        return "(re.inter " + " ".join(regex_node_to_sexpr(part) for part in node.parts) + ")"
    if isinstance(node, Complement):
        return f"(re.comp {regex_node_to_sexpr(node.inner)})"
    if isinstance(node, Repeat):
        inner = regex_node_to_sexpr(node.inner)
        if node.low == 0 and node.high is None:
            return f"(re.* {inner})"
        if node.low == 1 and node.high is None:
            return f"(re.+ {inner})"
        if node.low == 0 and node.high == 1:
            return f"(re.opt {inner})"
        if node.high is None:
            return f"(re.++ ((_ re.loop {node.low} {node.low}) {inner}) (re.* {inner}))"
        return f"((_ re.loop {node.low} {node.high}) {inner})"
    raise PrintError(f"regex node {node!r} has no SMT-LIB rendering")


def pattern_to_sexpr(pattern: str) -> str:
    return regex_node_to_sexpr(parse_pattern(pattern))


# ----------------------------------------------------------------------
# Atoms
# ----------------------------------------------------------------------
def atom_to_sexpr(atom: Atom) -> str:
    if isinstance(atom, WordEquation):
        body = f"(= {term_to_sexpr(atom.lhs)} {term_to_sexpr(atom.rhs)})"
        return body if atom.positive else f"(not {body})"
    if isinstance(atom, RegexMembership):
        if isinstance(atom.language, Nfa):
            raise PrintError(
                "membership in a raw Nfa has no SMT-LIB rendering "
                "(only regex-pattern languages round-trip)"
            )
        body = f"(str.in_re {atom.var} {pattern_to_sexpr(atom.language)})"
        return body if atom.positive else f"(not {body})"
    if isinstance(atom, PrefixOf):
        body = f"(str.prefixof {term_to_sexpr(atom.lhs)} {term_to_sexpr(atom.rhs)})"
        return body if atom.positive else f"(not {body})"
    if isinstance(atom, SuffixOf):
        body = f"(str.suffixof {term_to_sexpr(atom.lhs)} {term_to_sexpr(atom.rhs)})"
        return body if atom.positive else f"(not {body})"
    if isinstance(atom, Contains):
        # The AST is needle-first; SMT-LIB's str.contains is haystack-first.
        body = f"(str.contains {term_to_sexpr(atom.haystack)} {term_to_sexpr(atom.needle)})"
        return body if atom.positive else f"(not {body})"
    if isinstance(atom, StrAtAtom):
        target = (
            atom.target.name
            if isinstance(atom.target, StringVar)
            else _string_literal(atom.target.value)
        )
        index = atom.index if isinstance(atom.index, LinExpr) else LinExpr.constant(int(atom.index))
        body = f"(= {target} (str.at {term_to_sexpr(atom.haystack)} {linexpr_to_sexpr(index)}))"
        return body if atom.positive else f"(not {body})"
    if isinstance(atom, SubstrAtom):
        body = (
            f"(= {term_to_sexpr(atom.target)} (str.substr {term_to_sexpr(atom.haystack)} "
            f"{linexpr_to_sexpr(atom.offset)} {linexpr_to_sexpr(atom.length)}))"
        )
        return body if atom.positive else f"(not {body})"
    if isinstance(atom, IndexOfAtom):
        body = (
            f"(= {linexpr_to_sexpr(atom.result)} (str.indexof {term_to_sexpr(atom.haystack)} "
            f"{term_to_sexpr(atom.needle)} {linexpr_to_sexpr(atom.offset)}))"
        )
        return body if atom.positive else f"(not {body})"
    if isinstance(atom, ReplaceAtom):
        body = (
            f"(= {term_to_sexpr(atom.target)} (str.replace {term_to_sexpr(atom.haystack)} "
            f"{term_to_sexpr(atom.needle)} {term_to_sexpr(atom.replacement)}))"
        )
        return body if atom.positive else f"(not {body})"
    if isinstance(atom, LengthConstraint):
        return formula_to_sexpr(atom.formula)
    raise PrintError(f"atom {atom!r} has no SMT-LIB rendering")


# ----------------------------------------------------------------------
# Whole problems
# ----------------------------------------------------------------------
def problem_to_smtlib(
    problem: Problem,
    status: Optional[str] = None,
    logic: Optional[str] = None,
    named: bool = True,
    check_sat: bool = True,
) -> str:
    """Render a problem as a self-contained SMT-LIB script.

    ``status`` becomes ``(set-info :status …)``; the logic defaults to
    ``QF_SLIA`` when integer constraints occur and ``QF_S`` otherwise.  With
    ``named`` every assert is annotated ``(! … :named aN)`` so that
    ``get-unsat-core`` output is meaningful.
    """
    if logic is None:
        has_ints = any(
            isinstance(atom, (LengthConstraint, StrAtAtom, SubstrAtom, IndexOfAtom))
            for atom in problem.atoms
        )
        logic = "QF_SLIA" if has_ints else "QF_S"
    lines: List[str] = [f"(set-logic {logic})"]
    if problem.name:
        lines.append(f"(set-info :source {_string_literal(problem.name)})")
    if status:
        lines.append(f"(set-info :status {status})")
    lines.append(f"(set-info :alphabet {_string_literal(''.join(problem.alphabet))})")

    integer_vars = problem.integer_variables()
    for name in problem.string_variables():
        lines.append(f"(declare-const {name} String)")
    for name in integer_vars:
        lines.append(f"(declare-const {name} Int)")

    for index, atom in enumerate(problem.atoms):
        rendered = atom_to_sexpr(atom)
        if named:
            rendered = f"(! {rendered} :named a{index})"
        lines.append(f"(assert {rendered})")
    if check_sat:
        lines.append("(check-sat)")
    return "\n".join(lines) + "\n"
