"""SMT-LIB 2.6 lexer and s-expression reader.

Tokenises the concrete syntax into the four atom shapes the QF_SLIA
fragment needs — symbols (plain and ``|quoted|``), keywords (``:kw``),
numerals and string literals (with the 2.6 ``""`` escape) — and reads the
token stream into nested Python lists.  String literals are wrapped in
:class:`SString` so downstream code can tell ``"abc"`` from the symbol
``abc``; numerals become plain ``int``; everything else stays a ``str``.
"""

from __future__ import annotations

from typing import Iterator, List, Tuple, Union


class SmtLibError(ValueError):
    """Raised on malformed or unsupported SMT-LIB input."""

    def __init__(self, message: str, line: int = 0) -> None:
        super().__init__(f"line {line}: {message}" if line else message)
        self.line = line


class SString(str):
    """A string *literal* token (as opposed to a symbol)."""

    __slots__ = ()


class Punct(str):
    """A structural paren token — distinct from any literal or symbol.

    Without the marker class, the one-character string literal ``"("`` (or
    a quoted symbol spelling a paren) would compare equal to the structural
    token and derail the reader.
    """

    __slots__ = ()


#: one parsed s-expression: an atom or a nested list
SExpr = Union[str, int, SString, List["SExpr"]]

#: characters allowed in simple (unquoted) symbols, besides alphanumerics
_SYMBOL_EXTRA = set("~!@$%^&*_-+=<>.?/")


def tokenize(text: str) -> Iterator[Tuple[object, int]]:
    """Yield ``(token, line)`` pairs; parens are :class:`Punct` tokens."""
    position = 0
    line = 1
    length = len(text)
    while position < length:
        char = text[position]
        if char == "\n":
            line += 1
            position += 1
            continue
        if char.isspace():
            position += 1
            continue
        if char == ";":  # comment to end of line
            while position < length and text[position] != "\n":
                position += 1
            continue
        if char in "()":
            yield Punct(char), line
            position += 1
            continue
        if char == '"':
            start_line = line
            position += 1
            chunk: List[str] = []
            while True:
                if position >= length:
                    raise SmtLibError("unterminated string literal", start_line)
                char = text[position]
                if char == '"':
                    if position + 1 < length and text[position + 1] == '"':
                        chunk.append('"')  # the 2.6 "" escape
                        position += 2
                        continue
                    position += 1
                    break
                if char == "\n":
                    line += 1
                chunk.append(char)
                position += 1
            yield SString("".join(chunk)), start_line
            continue
        if char == "|":
            start_line = line
            position += 1
            chunk = []
            while position < length and text[position] != "|":
                if text[position] == "\n":
                    line += 1
                chunk.append(text[position])
                position += 1
            if position >= length:
                raise SmtLibError("unterminated quoted symbol", start_line)
            position += 1
            yield "".join(chunk), start_line
            continue
        # keyword, numeral or simple symbol
        start = position
        while position < length:
            char = text[position]
            if char.isspace() or char in '();"|':
                break
            position += 1
        token = text[start:position]
        if not token:  # pragma: no cover - defensive
            raise SmtLibError(f"unexpected character {text[start]!r}", line)
        if token.isdigit():
            yield int(token), line
        else:
            head = token[1:] if token.startswith(":") else token
            if not all(c.isalnum() or c in _SYMBOL_EXTRA for c in head):
                raise SmtLibError(f"malformed token {token!r}", line)
            yield token, line


def read_sexprs(text: str) -> List[Tuple[SExpr, int]]:
    """Read every top-level s-expression; returns ``(sexpr, line)`` pairs."""
    stack: List[List[SExpr]] = []
    lines: List[int] = []
    top: List[Tuple[SExpr, int]] = []
    for token, line in tokenize(text):
        if isinstance(token, Punct) and token == "(":
            stack.append([])
            lines.append(line)
        elif isinstance(token, Punct) and token == ")":
            if not stack:
                raise SmtLibError("unbalanced ')'", line)
            done = stack.pop()
            open_line = lines.pop()
            if stack:
                stack[-1].append(done)
            else:
                top.append((done, open_line))
        else:
            if stack:
                stack[-1].append(token)
            else:
                top.append((token, line))
    if stack:
        raise SmtLibError("unbalanced '('", lines[-1])
    return top
