"""Synthetic workloads modelled on the paper's symbolic-execution benchmarks.

The evaluation of §8 uses ~150 000 formulae obtained by running the PyCT
symbolic executor on three Python code bases (biopython, django, thefuck) and
keeping the path conditions that contain at least one position constraint.
Those formula files are not redistributable here, so this module generates
*structurally analogous* problems:

* **biopython-like** — DNA-ish sequence processing: variables over a 4-letter
  alphabet with simple regular shapes, equality/disequality against literals,
  ``str.at`` probes of particular positions, length bounds;
* **django-like** — routing/URL dispatching: prefix and suffix tests against
  literal route fragments (mostly negated, as produced by else-branches),
  containment of separators, disequalities between route variables;
* **thefuck-like** — command-line fix-up rules: suffix/prefix checks of
  command names, disequalities between a command and its corrected variant,
  concatenations with literal separators.

Every generator is deterministic for a given seed and yields
``(name, Problem, expected)`` triples where ``expected`` is the ground-truth
status (``"sat"``/``"unsat"``) when it is known by construction, or ``None``.
"""

from __future__ import annotations

import random
from typing import Iterator, List, Optional, Tuple

from ..lia import LinExpr, eq as lia_eq, ge as lia_ge, le as lia_le, ne as lia_ne
from ..strings.ast import (
    Contains,
    LengthConstraint,
    PrefixOf,
    Problem,
    RegexMembership,
    StrAtAtom,
    StringLiteral,
    StringVar,
    SuffixOf,
    WordEquation,
    lit,
    str_len,
    term,
)

Instance = Tuple[str, Problem, Optional[str]]


def _random_word(rng: random.Random, alphabet: str, low: int, high: int) -> str:
    return "".join(rng.choice(alphabet) for _ in range(rng.randint(low, high)))


# ----------------------------------------------------------------------
# biopython-like: sequence manipulation
# ----------------------------------------------------------------------
def biopython_like(count: int, seed: int = 1) -> Iterator[Instance]:
    """Sequence-processing path conditions over the DNA alphabet."""
    rng = random.Random(seed)
    alphabet = "acgt"
    for index in range(count):
        problem = Problem(alphabet=tuple(alphabet), name=f"biopython-{index}")
        expected: Optional[str] = None
        shape = rng.choice(["codon-diseq", "at-probe", "prefix-branch", "length-window"])

        if shape == "codon-diseq":
            # A sequence built from codons must differ from a sampled literal.
            codon = _random_word(rng, alphabet, 3, 3)
            problem.add(RegexMembership("seq", f"({codon})*"))
            target = codon * rng.randint(1, 2)
            if rng.random() < 0.5:
                # Mutate one character: always satisfiable by picking the literal length.
                position = rng.randrange(len(target))
                replacement = rng.choice([c for c in alphabet if c != target[position]])
                target = target[:position] + replacement + target[position + 1 :]
                expected = "sat"
            problem.add(WordEquation(term("seq"), term(lit(target)), positive=False))
            problem.add(LengthConstraint(lia_le(str_len("seq"), 9)))

        elif shape == "at-probe":
            # Probe a fixed position of a sequence and compare with a base.
            base = rng.choice(alphabet)
            other = rng.choice([c for c in alphabet if c != base])
            problem.add(RegexMembership("seq", f"({base}|{other})*"))
            problem.add(RegexMembership("probe", f"{base}|{other}"))
            position = rng.randint(0, 3)
            problem.add(StrAtAtom(StringVar("probe"), term("seq"), LinExpr.constant(position),
                                  positive=rng.random() < 0.5))
            problem.add(LengthConstraint(lia_ge(str_len("seq"), position + 1)))
            expected = "sat"

        elif shape == "prefix-branch":
            # else-branch of a startswith() test against a primer literal.
            primer = _random_word(rng, alphabet, 2, 4)
            problem.add(RegexMembership("seq", f"[{alphabet}]*"))
            problem.add(PrefixOf(term(lit(primer)), term("seq"), positive=False))
            if rng.random() < 0.3:
                # Force the sequence to start with the primer => unsat.
                problem.add(RegexMembership("seq", primer + f"[{alphabet}]*"))
                expected = "unsat"
            else:
                expected = "sat"

        else:  # length-window
            fragment = _random_word(rng, alphabet, 2, 3)
            problem.add(RegexMembership("left", f"({fragment})*"))
            problem.add(RegexMembership("right", f"[{alphabet}]{{0,4}}"))
            problem.add(WordEquation(term("left", "right"), term(lit(fragment * 2)), positive=False))
            problem.add(LengthConstraint(lia_le(str_len("left") + str_len("right"), 8)))
            expected = "sat"

        yield problem.name, problem, expected


# ----------------------------------------------------------------------
# django-like: URL routing
# ----------------------------------------------------------------------
def django_like(count: int, seed: int = 2) -> Iterator[Instance]:
    """Routing-style path conditions (prefix/suffix/contains of separators)."""
    rng = random.Random(seed)
    alphabet = "ab/"
    for index in range(count):
        problem = Problem(alphabet=tuple(alphabet), name=f"django-{index}")
        expected: Optional[str] = None
        shape = rng.choice(["route-prefix", "slug-diseq", "separator", "suffix-slash"])

        if shape == "route-prefix":
            route = rng.choice(["a/", "ab/", "a/b/", "b/"])
            problem.add(RegexMembership("path", "(a|b|/)*"))
            problem.add(PrefixOf(term(lit(route)), term("path"), positive=False))
            # The trailing-slash check is the then-branch (positive), so it is
            # rewritten into an equation; the else-branch prefix test above is
            # the position constraint.
            problem.add(SuffixOf(term(lit("/")), term("path"), positive=True))
            expected = "sat"

        elif shape == "slug-diseq":
            problem.add(RegexMembership("slug", "(a|b)(a|b)*"))
            problem.add(RegexMembership("other", "(a|b)(a|b)*"))
            problem.add(WordEquation(term("slug"), term("other"), positive=False))
            problem.add(LengthConstraint(lia_eq(str_len("slug"), str_len("other"))))
            expected = "sat"

        elif shape == "separator":
            problem.add(RegexMembership("segment", "(a|b)*"))
            # A segment never contains the separator: trivially satisfiable,
            # but only a position-aware solver proves it without guessing.
            problem.add(Contains(term(lit("/")), term("segment"), positive=False))
            if rng.random() < 0.3:
                problem.add(RegexMembership("segment", "(a|b)*/(a|b)*"))
                expected = "unsat"
            else:
                expected = "sat"

        else:  # suffix-slash
            problem.add(RegexMembership("path", "(a|b|/)*/"))
            problem.add(SuffixOf(term(lit("/")), term("path"), positive=False))
            expected = "unsat"

        yield problem.name, problem, expected


# ----------------------------------------------------------------------
# thefuck-like: command fixing
# ----------------------------------------------------------------------
def thefuck_like(count: int, seed: int = 3) -> Iterator[Instance]:
    """Command-correction path conditions (suffix tests, command disequalities)."""
    rng = random.Random(seed)
    alphabet = "gitp "
    alphabet = "gip "  # keep the alphabet small: g, i, p and space
    for index in range(count):
        problem = Problem(alphabet=tuple(alphabet), name=f"thefuck-{index}")
        expected: Optional[str] = None
        shape = rng.choice(["command-diseq", "suffix-test", "concat-fix"])

        if shape == "command-diseq":
            problem.add(RegexMembership("cmd", "(g|i|p| )*"))
            problem.add(RegexMembership("fixed", "(g|i|p| )*"))
            problem.add(WordEquation(term("cmd"), term("fixed"), positive=False))
            problem.add(WordEquation(term("fixed"), term(lit("gip"))))
            expected = "sat"

        elif shape == "suffix-test":
            suffix = rng.choice(["ip", "gi", "p"])
            problem.add(RegexMembership("cmd", "g(g|i|p| )*"))
            problem.add(SuffixOf(term(lit(suffix)), term("cmd"), positive=False))
            if rng.random() < 0.3:
                problem.add(RegexMembership("cmd", f"g(g|i|p| )*{suffix}"))
                expected = "unsat"
            else:
                expected = "sat"

        else:  # concat-fix
            problem.add(RegexMembership("head", "(g|i)*"))
            problem.add(RegexMembership("tail", "(p| )*"))
            problem.add(WordEquation(term("cmd"), term("head", lit(" "), "tail")))
            problem.add(WordEquation(term("cmd"), term(lit("gi p")), positive=False))
            problem.add(LengthConstraint(lia_le(str_len("cmd"), 6)))
            expected = "sat"

        yield problem.name, problem, expected
