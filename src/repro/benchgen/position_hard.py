"""The position-hard workload (footnote 10 of the paper).

Hand-crafted formulae "inspired by the problem of testing primitiveness of a
word": a single disequality or ¬contains over concatenations of variables
(with repetitions) whose languages are simple flat expressions such as ``a*``
or ``(abc)*``.  Satisfying assignments cannot be found by naive guessing, and
unsatisfiable instances require genuine position reasoning — which is why
every solver except the position-aware one fails on this set in Table 1.
"""

from __future__ import annotations

import random
from typing import Iterator, Optional, Tuple

from ..strings.ast import Contains, Problem, RegexMembership, WordEquation, term

Instance = Tuple[str, Problem, Optional[str]]

#: simple flat languages used for the variables
_FLAT_LANGUAGES = ["a*", "b*", "(ab)*", "(ba)*", "(abc)*", "(ab)*a", "c*"]


def _word_of(language: str) -> str:
    """A canonical pumping word of one of the flat languages above."""
    return {
        "a*": "a",
        "b*": "b",
        "c*": "c",
        "(ab)*": "ab",
        "(ba)*": "ba",
        "(abc)*": "abc",
        "(ab)*a": "aba",
    }[language]


def commuting_disequalities(count: int, seed: int = 11) -> Iterator[Instance]:
    """Disequalities between permuted concatenations, e.g. ``x·y ≠ y·x``.

    When both variables range over powers of the same primitive word the two
    sides always commute and the instance is unsatisfiable; with different
    primitive words it is satisfiable (but the witness needs both variables
    non-empty, which guessing-based solvers rarely find).
    """
    rng = random.Random(seed)
    for index in range(count):
        same = rng.random() < 0.5
        base = rng.choice(["a*", "(ab)*", "(abc)*"])
        other = base if same else rng.choice([l for l in ["a*", "b*", "(ab)*"] if l != base])
        problem = Problem(alphabet=tuple("abc"), name=f"position-hard-comm-{index}")
        problem.add(RegexMembership("x", base))
        problem.add(RegexMembership("y", other))
        problem.add(WordEquation(term("x", "y"), term("y", "x"), positive=False))
        expected = "unsat" if same else "sat"
        yield problem.name, problem, expected


def repetition_disequalities(count: int, seed: int = 12) -> Iterator[Instance]:
    """Disequalities with repeated variables such as ``x·y·z ≠ x·x·y``."""
    rng = random.Random(seed)
    shapes = [
        (("x", "y", "z"), ("x", "x", "y")),
        (("x", "y", "x"), ("y", "x", "y")),
        (("x", "x"), ("y", "y")),
        (("x", "y"), ("y", "y")),
    ]
    for index in range(count):
        lhs, rhs = rng.choice(shapes)
        problem = Problem(alphabet=tuple("abc"), name=f"position-hard-rep-{index}")
        languages = {}
        for name in sorted(set(lhs + rhs)):
            languages[name] = rng.choice(_FLAT_LANGUAGES[:5])
            problem.add(RegexMembership(name, languages[name]))
        problem.add(WordEquation(term(*lhs), term(*rhs), positive=False))
        yield problem.name, problem, None


def primitive_not_contains(count: int, seed: int = 13) -> Iterator[Instance]:
    """¬contains instances testing primitiveness-like properties.

    ``¬contains(x, y·y)`` with ``x`` and ``y`` over the same flat language is
    satisfiable only through careful alignment reasoning (e.g. choosing ``x``
    longer than ``y·y``); ``¬contains(x, x·x)`` with a forced non-empty ``x``
    is unsatisfiable.
    """
    rng = random.Random(seed)
    for index in range(count):
        problem = Problem(alphabet=tuple("abc"), name=f"position-hard-nc-{index}")
        language = rng.choice(["a*", "(ab)*", "(abc)*"])
        kind = rng.choice(["self", "cross"])
        if kind == "self":
            # x occurs in x·x at offset 0: unsatisfiable no matter the value.
            problem.add(RegexMembership("x", language))
            problem.add(Contains(term("x"), term("x", "x"), positive=False))
            expected = "unsat"
        else:
            problem.add(RegexMembership("x", language))
            problem.add(RegexMembership("y", rng.choice(["b*", "(ba)*"])))
            problem.add(Contains(term("x", "x"), term("y"), positive=False))
            expected = "sat"
        yield problem.name, problem, expected


def generate(count: int, seed: int = 10) -> Iterator[Instance]:
    """The combined position-hard set (a mix of the three families)."""
    per_family = max(1, count // 3)
    yield from commuting_disequalities(per_family, seed)
    yield from repetition_disequalities(per_family, seed + 1)
    yield from primitive_not_contains(count - 2 * per_family, seed + 2)
