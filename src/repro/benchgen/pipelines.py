"""String-pipeline workload: a symbolic pipe-DSL compiled to solver problems.

Real pipe scripting languages (rezbot-style ``{word} > letterize > translate``
chains) take one input word through a sequence of string transformations.
This module models such pipelines *symbolically*: every stage becomes a
definitional constraint over a fresh intermediate variable, so a whole
pipeline compiles to exactly the deep substr/replace/concat chains with
shared intermediates that stress the extended-function reductions, the
session caches and the budgeted Levi splits far beyond the hand-written
``symbex-substr__*`` corpus.

The design rule of the module — the reason it doubles as a fuzzing source —
is that **every instance carries its own ground truth**: pipelines are
deterministic functions of their (bounded) input, so exhaustively running
the concrete stages over the enumerated source language decides ``sat`` /
``unsat`` exactly, independent of any solver.  The differential fuzzer
(:mod:`repro.testing.fuzz`) leans on that invariant.

Stages
------

* :class:`ConcatLit` — append/prepend a literal (``format``-style glue);
* :class:`SubstrWindow` — a constant ``str.substr`` window;
* :class:`ReplaceOnce` — first-occurrence ``str.replace`` with literal
  needle and replacement;
* :class:`ReplaceVar` — first-occurrence replace whose needle is an
  *existential variable* over a small regular language (the variable-needle
  shapes the ROADMAP names as a known ``unknown`` gap — only generated with
  ``include_gaps``);
* :class:`RegexFilter` — a membership constraint on the current value
  (the pipe drops non-matching words);
* :class:`SplitJoin` — ``join(split(s, sep), joiner)``: replace *all*
  occurrences of a separator, encoded as a bounded chain of
  first-occurrence replaces plus a final ``¬contains`` side condition
  (inputs with more than ``bound`` occurrences are outside the model —
  concretely *and* symbolically, see :meth:`SplitJoin.apply`);
* :class:`Translate` — a case-translate homomorphism (``letterize``), one
  bounded :class:`SplitJoin`-style chain per translated character.

Query families
--------------

* **reachability** — can the output contain a bad word (``Σ*·bad·Σ*``)?
* **inversion** — which input produces this exact output?
* **equivalence** — do two structurally related pipelines disagree on some
  input?  (The problem asserts ``out_l ≠ out_r``; ``unsat`` means the
  pipelines agree on every modelled input.)

Every generator is deterministic for a given seed — ``random.Random(seed)``
only, enumeration in sorted order — so the same seed yields byte-identical
instances and corpus files.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace as dc_replace
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from ..automata.enumeration import words_up_to
from ..automata.regex import compile_regex
from ..lia import le as lia_le
from ..strings.ast import (
    Contains,
    LengthConstraint,
    Problem,
    RegexMembership,
    ReplaceAtom,
    SubstrAtom,
    WordEquation,
    lit,
    str_len,
    term,
)
from ..strings.semantics import str_replace, str_substr
from ..lia import LinExpr

Instance = Tuple[str, Problem, Optional[str]]

#: compiled source/filter automata, keyed by (pattern, alphabet) — regex
#: compilation is deterministic, so sharing across scenarios is safe
_NFA_MEMO: Dict[Tuple[str, Tuple[str, ...]], object] = {}


def _compiled(pattern: str, alphabet: Tuple[str, ...]):
    key = (pattern, alphabet)
    nfa = _NFA_MEMO.get(key)
    if nfa is None:
        nfa = compile_regex(pattern, alphabet)
        _NFA_MEMO[key] = nfa
    return nfa


def _accepts(pattern: str, alphabet: Tuple[str, ...], word: str) -> bool:
    return _compiled(pattern, alphabet).accepts(word)


def _language(pattern: str, alphabet: Tuple[str, ...], max_length: int) -> List[str]:
    """All words of the pattern's language up to ``max_length``, sorted."""
    return sorted(words_up_to(_compiled(pattern, alphabet), max_length))


# ----------------------------------------------------------------------
# Stages
# ----------------------------------------------------------------------
class _Compiler:
    """Accumulates the atoms of one pipeline; hands out intermediate vars."""

    def __init__(self, problem: Problem, prefix: str, current: str) -> None:
        self.problem = problem
        self.prefix = prefix
        self.current = current
        self._counter = 0

    def fresh(self) -> str:
        self._counter += 1
        return f"{self.prefix}{self._counter}"

    def add(self, atom) -> None:
        self.problem.add(atom)


@dataclass(frozen=True)
class ConcatLit:
    """Append (or prepend) a literal — the pipe's ``format`` glue."""

    text: str
    prepend: bool = False

    def apply(self, word: str, needles: List[str]) -> Optional[str]:
        return self.text + word if self.prepend else word + self.text

    def compile(self, comp: _Compiler) -> None:
        out = comp.fresh()
        pieces = (lit(self.text), comp.current) if self.prepend else (comp.current, lit(self.text))
        comp.add(WordEquation(term(out), term(*pieces)))
        comp.current = out

    def narrowed(self) -> Optional["ConcatLit"]:
        return ConcatLit(self.text[:-1], self.prepend) if len(self.text) > 1 else None


@dataclass(frozen=True)
class SubstrWindow:
    """A constant ``str.substr`` window (SMT-LIB 2.6 semantics)."""

    offset: int
    length: int

    def apply(self, word: str, needles: List[str]) -> Optional[str]:
        return str_substr(word, self.offset, self.length)

    def compile(self, comp: _Compiler) -> None:
        out = comp.fresh()
        comp.add(
            SubstrAtom(
                term(out),
                term(comp.current),
                LinExpr.constant(self.offset),
                LinExpr.constant(self.length),
            )
        )
        comp.current = out

    def narrowed(self) -> Optional["SubstrWindow"]:
        if self.length > 1:
            return SubstrWindow(self.offset, self.length - 1)
        if self.offset > 0:
            return SubstrWindow(self.offset - 1, self.length)
        return None


@dataclass(frozen=True)
class ReplaceOnce:
    """First-occurrence ``str.replace`` with literal needle/replacement."""

    needle: str
    replacement: str

    def apply(self, word: str, needles: List[str]) -> Optional[str]:
        return str_replace(word, self.needle, self.replacement)

    def compile(self, comp: _Compiler) -> None:
        out = comp.fresh()
        comp.add(
            ReplaceAtom(term(out), term(comp.current), term(lit(self.needle)), term(lit(self.replacement)))
        )
        comp.current = out

    def narrowed(self) -> Optional["ReplaceOnce"]:
        if len(self.replacement) > 0:
            return ReplaceOnce(self.needle, self.replacement[:-1])
        if len(self.needle) > 1:
            return ReplaceOnce(self.needle[:-1], self.replacement)
        return None


@dataclass(frozen=True)
class ReplaceVar:
    """First-occurrence replace with an *existential* variable needle.

    The needle ranges over ``needle_pattern`` (length-bounded by
    ``needle_bound``); concretely the pipeline is run once per candidate
    needle word.  This is the ROADMAP's variable-needle gap family:
    non-flat haystack languages push the reduction onto the MBQI flatness
    limit, so instances may answer a *structured* unknown — never a wrong
    verdict.  Only generated with ``include_gaps``.
    """

    needle_pattern: str
    needle_bound: int
    replacement: str

    def apply(self, word: str, needles: List[str]) -> Optional[str]:
        return str_replace(word, needles.pop(0), self.replacement)

    def compile(self, comp: _Compiler) -> None:
        needle = comp.fresh()
        out = comp.fresh()
        comp.add(RegexMembership(needle, self.needle_pattern))
        comp.add(LengthConstraint(lia_le(str_len(needle), self.needle_bound)))
        comp.add(
            ReplaceAtom(term(out), term(comp.current), term(needle), term(lit(self.replacement)))
        )
        comp.current = out

    def needle_words(self, alphabet: Tuple[str, ...]) -> List[str]:
        return _language(self.needle_pattern, alphabet, self.needle_bound)

    def narrowed(self) -> Optional["ReplaceVar"]:
        if len(self.replacement) > 0:
            return ReplaceVar(self.needle_pattern, self.needle_bound, self.replacement[:-1])
        if self.needle_bound > 1:
            return ReplaceVar(self.needle_pattern, self.needle_bound - 1, self.replacement)
        return None


@dataclass(frozen=True)
class RegexFilter:
    """The pipe drops values outside the language (a membership constraint)."""

    pattern: str

    def apply(self, word: str, needles: List[str]) -> Optional[str]:
        return None  # patched in Pipeline.run, which knows the alphabet

    def compile(self, comp: _Compiler) -> None:
        comp.add(RegexMembership(comp.current, self.pattern))

    def narrowed(self) -> Optional["RegexFilter"]:
        return None


@dataclass(frozen=True)
class SplitJoin:
    """``joiner.join(word.split(sep))`` — replace *all* separators.

    Encoded as ``bound`` chained first-occurrence replaces followed by a
    ``¬contains(sep, result)`` side condition: inputs still carrying a
    separator after ``bound`` rounds are outside the model.  The concrete
    semantics mirrors that exactly (``None`` = excluded), so ground truth
    and encoding agree by construction.
    """

    sep: str
    joiner: str
    bound: int = 2

    def apply(self, word: str, needles: List[str]) -> Optional[str]:
        for _ in range(self.bound):
            word = str_replace(word, self.sep, self.joiner)
        return None if self.sep in word else word

    def compile(self, comp: _Compiler) -> None:
        for _ in range(self.bound):
            out = comp.fresh()
            comp.add(
                ReplaceAtom(term(out), term(comp.current), term(lit(self.sep)), term(lit(self.joiner)))
            )
            comp.current = out
        comp.add(Contains(term(lit(self.sep)), term(comp.current), positive=False))

    def narrowed(self) -> Optional["SplitJoin"]:
        return SplitJoin(self.sep, self.joiner, self.bound - 1) if self.bound > 1 else None


@dataclass(frozen=True)
class Translate:
    """Letterize/case-translate: a bounded replace-all chain per character."""

    table: Tuple[Tuple[str, str], ...]
    bound: int = 2

    def apply(self, word: str, needles: List[str]) -> Optional[str]:
        for src, dst in self.table:
            for _ in range(self.bound):
                word = str_replace(word, src, dst)
            if src in word:
                return None
        return word

    def compile(self, comp: _Compiler) -> None:
        for src, dst in self.table:
            for _ in range(self.bound):
                out = comp.fresh()
                comp.add(ReplaceAtom(term(out), term(comp.current), term(lit(src)), term(lit(dst))))
                comp.current = out
            comp.add(Contains(term(lit(src)), term(comp.current), positive=False))

    def narrowed(self) -> Optional["Translate"]:
        if len(self.table) > 1:
            return Translate(self.table[:-1], self.bound)
        if self.bound > 1:
            return Translate(self.table, self.bound - 1)
        return None


Stage = object  # the stage protocol: apply / compile / narrowed

#: replace atoms one stage contributes to the case product of the reduction
def _replace_weight(stage) -> int:
    if isinstance(stage, (ReplaceOnce, ReplaceVar)):
        return 1
    if isinstance(stage, SplitJoin):
        return stage.bound
    if isinstance(stage, Translate):
        return stage.bound * len(stage.table)
    return 0


# ----------------------------------------------------------------------
# Pipelines
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Pipeline:
    """One pipe program: a bounded regular source piped through stages."""

    source_pattern: str
    max_input_length: int
    stages: Tuple[Stage, ...] = ()
    alphabet: Tuple[str, ...] = tuple("ab")

    # -- concrete execution -------------------------------------------
    def run(self, word: str, needles: Sequence[str] = ()) -> Optional[str]:
        """Run the pipeline on one input; ``None`` when the execution is
        outside the model (a filter rejects, a split/join bound overflows).

        ``needles`` supplies one word per :class:`ReplaceVar` stage, in
        stage order (the existential choices of this execution).
        """
        pending = list(needles)
        for stage in self.stages:
            if isinstance(stage, RegexFilter):
                if not _accepts(stage.pattern, self.alphabet, word):
                    return None
                continue
            word = stage.apply(word, pending)
            if word is None:
                return None
        return word

    def inputs(self) -> List[str]:
        """The modelled source words (sorted, exhaustive within the bound)."""
        return _language(self.source_pattern, self.alphabet, self.max_input_length)

    def needle_choices(self) -> List[List[str]]:
        """Candidate words per :class:`ReplaceVar` stage, in stage order."""
        return [
            stage.needle_words(self.alphabet)
            for stage in self.stages
            if isinstance(stage, ReplaceVar)
        ]

    def executions(self) -> Iterator[Tuple[str, Tuple[str, ...], str]]:
        """Every modelled ``(input, needles, output)`` execution."""
        choice_lists = self.needle_choices()
        choices: List[Tuple[str, ...]] = [()]
        for words in choice_lists:
            choices = [prefix + (w,) for prefix in choices for w in words]
        for word in self.inputs():
            for needles in choices:
                output = self.run(word, needles)
                if output is not None:
                    yield word, needles, output

    # -- symbolic compilation -----------------------------------------
    def compile_into(self, problem: Problem, prefix: str, input_var: Optional[str] = None) -> str:
        """Add this pipeline's constraints to ``problem``; returns the
        output variable.  ``input_var`` shares an existing source variable
        (equivalence queries); otherwise the source constraints are added.
        """
        if input_var is None:
            input_var = f"{prefix}0"
            problem.add(RegexMembership(input_var, self.source_pattern))
            problem.add(LengthConstraint(lia_le(str_len(input_var), self.max_input_length)))
        comp = _Compiler(problem, prefix, input_var)
        for stage in self.stages:
            stage.compile(comp)
        return comp.current

    def replace_weight(self) -> int:
        return sum(_replace_weight(stage) for stage in self.stages)


# ----------------------------------------------------------------------
# Scenarios (pipeline + query + ground truth)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class PipelineScenario:
    """One generated instance: pipelines, a query, and enough structure to
    recompute the problem and its ground truth after shrinking."""

    name: str
    kind: str  # "reachability" | "inversion" | "equivalence"
    left: Pipeline
    right: Optional[Pipeline] = None  # equivalence only; shares left's source
    payload: str = ""  # bad word (reachability) / target output (inversion)

    # -- the solver-facing problem ------------------------------------
    def problem(self) -> Problem:
        problem = Problem(alphabet=self.left.alphabet, name=self.name)
        out_left = self.left.compile_into(problem, "l")
        if self.kind == "reachability":
            problem.add(Contains(term(lit(self.payload)), term(out_left)))
        elif self.kind == "inversion":
            problem.add(WordEquation(term(out_left), term(lit(self.payload))))
        elif self.kind == "equivalence":
            assert self.right is not None
            out_right = self.right.compile_into(problem, "r", input_var="l0")
            problem.add(WordEquation(term(out_left), term(out_right), positive=False))
        else:  # pragma: no cover - guarded by the generator
            raise ValueError(f"unknown query kind {self.kind!r}")
        return problem

    # -- ground truth by exhaustive concrete execution -----------------
    def ground_truth(self) -> str:
        """``"sat"``/``"unsat"``, decided by running the concrete pipeline
        over every modelled execution — never by a solver."""
        if self.kind == "reachability":
            return (
                "sat"
                if any(self.payload in out for _, _, out in self.left.executions())
                else "unsat"
            )
        if self.kind == "inversion":
            return (
                "sat"
                if any(out == self.payload for _, _, out in self.left.executions())
                else "unsat"
            )
        assert self.kind == "equivalence" and self.right is not None
        left_needles = self.left.needle_choices()
        right_needles = self.right.needle_choices()
        right_choices: List[Tuple[str, ...]] = [()]
        for words in right_needles:
            right_choices = [prefix + (w,) for prefix in right_choices for w in words]
        left_choices: List[Tuple[str, ...]] = [()]
        for words in left_needles:
            left_choices = [prefix + (w,) for prefix in left_choices for w in words]
        for word in self.left.inputs():
            for ln in left_choices:
                out_left = self.left.run(word, ln)
                if out_left is None:
                    continue
                for rn in right_choices:
                    out_right = self.right.run(word, rn)
                    if out_right is not None and out_left != out_right:
                        return "sat"
        return "unsat"

    def instance(self) -> Instance:
        return self.name, self.problem(), self.ground_truth()

    # -- shrinking ------------------------------------------------------
    def size(self) -> int:
        """A strictly-decreasing metric for the shrink loop: string fields
        count their length, numeric fields their value, tuples (translate
        tables) their total text — so every ``narrowed()`` step and every
        stage deletion is strictly smaller."""

        def stage_size(stage) -> int:
            total = 2
            for value in stage.__dict__.values():
                if isinstance(value, bool):
                    continue
                if isinstance(value, str):
                    total += len(value)
                elif isinstance(value, int):
                    total += max(value, 0)
                elif isinstance(value, tuple):
                    total += sum(len(src) + len(dst) for src, dst in value)
            return total

        total = len(self.payload) + self.left.max_input_length
        for pipeline in (self.left, self.right):
            if pipeline is None:
                continue
            for stage in pipeline.stages:
                total += stage_size(stage)
        return total

    def shrink_candidates(self) -> Iterator["PipelineScenario"]:
        """Structurally smaller variants, deterministic order: stage
        deletions first (biggest cuts), then constant narrowing."""
        for side in ("left", "right"):
            pipeline = getattr(self, side)
            if pipeline is None:
                continue
            for index in range(len(pipeline.stages)):
                smaller = dc_replace(
                    pipeline, stages=pipeline.stages[:index] + pipeline.stages[index + 1 :]
                )
                yield dc_replace(self, **{side: smaller})
        for side in ("left", "right"):
            pipeline = getattr(self, side)
            if pipeline is None:
                continue
            for index, stage in enumerate(pipeline.stages):
                narrowed = stage.narrowed()
                if narrowed is not None:
                    stages = pipeline.stages[:index] + (narrowed,) + pipeline.stages[index + 1 :]
                    yield dc_replace(self, **{side: dc_replace(pipeline, stages=stages)})
        if len(self.payload) > 1:
            yield dc_replace(self, payload=self.payload[:-1])
        if self.left.max_input_length > 1:
            smaller_left = dc_replace(self.left, max_input_length=self.left.max_input_length - 1)
            yield dc_replace(self, left=smaller_left)


# ----------------------------------------------------------------------
# Random generation
# ----------------------------------------------------------------------
#: (alphabet, source patterns) pools; the separator alphabet feeds the
#: rezbot-ish split/join shapes
_AB = tuple("ab")
_ABSEP = tuple("ab/")
_SOURCES_AB = ("(a|b)*", "(ab)*", "a(a|b)*", "(a|b)*b", "(aa|b)*")
_SOURCES_SEP = ("(a|b|/)*", "(a|b)*(/(a|b)*)*", "a(a|b|/)*")
_FILTERS_AB = ("(a|b)*", "a(a|b)*", "(a|b)*b", "(ab|b)*")
_FILTERS_SEP = ("(a|b|/)*", "(a|b)*", "(a|b|/)*/(a|b|/)*")

#: cap on the replace atoms of one *suite* problem — 2 replace atoms expand
#: into at most 3^2 = 9 reduction cases, well inside the default
#: ``max_reduction_cases`` budget, so curated instances stay decidable
_SUITE_REPLACE_CAP = 2
#: the fuzzer tolerates structured unknowns, so it may go deeper
_FUZZ_REPLACE_CAP = 4


def _random_word(rng: random.Random, alphabet: Sequence[str], low: int, high: int) -> str:
    return "".join(rng.choice(alphabet) for _ in range(rng.randint(low, high)))


def _random_stage(rng: random.Random, alphabet: Tuple[str, ...], include_gaps: bool):
    letters = [c for c in alphabet if c != "/"]
    kinds = ["concat", "substr", "replace", "filter", "splitjoin", "translate"]
    if include_gaps:
        kinds.append("replace-var")
    kind = rng.choice(kinds)
    if kind == "concat":
        return ConcatLit(_random_word(rng, alphabet, 1, 2), prepend=rng.random() < 0.5)
    if kind == "substr":
        return SubstrWindow(offset=rng.randint(0, 2), length=rng.randint(1, 3))
    if kind == "replace":
        needle = _random_word(rng, alphabet, 1, 2)
        replacement = _random_word(rng, alphabet, 0, 2)
        while replacement == needle:
            replacement = _random_word(rng, alphabet, 0, 2)
        return ReplaceOnce(needle, replacement)
    if kind == "filter":
        pool = _FILTERS_SEP if "/" in alphabet else _FILTERS_AB
        return RegexFilter(rng.choice(pool))
    if kind == "splitjoin":
        sep = "/" if "/" in alphabet else rng.choice(letters)
        joiner = rng.choice([c for c in letters if c != sep] + [""])
        # The draw happens either way (keeps the rng stream stable), but
        # curated instances clamp the chain to one round: bound-2 chains
        # composed with concat + an output equation are exactly the
        # incomplete@decompose shapes the fuzzer is allowed to surface.
        bound = rng.randint(1, 2)
        return SplitJoin(sep, joiner, bound=bound if include_gaps else 1)
    if kind == "translate":
        src = rng.choice(letters)
        dst = rng.choice([c for c in letters if c != src])
        bound = rng.randint(1, 2)
        return Translate(((src, dst),), bound=bound if include_gaps else 1)
    # replace-var: the variable-needle gap family (non-flat needles allowed)
    pattern = rng.choice(("(a|b)(a|b)", "a(a|b)", "(ab|ba)", "b(a|b)*"))
    return ReplaceVar(pattern, needle_bound=2, replacement=_random_word(rng, letters, 0, 1))


def _random_pipeline(rng: random.Random, include_gaps: bool, allow_sep: bool = True) -> Pipeline:
    use_sep = rng.random() < 0.3 and allow_sep
    alphabet = _ABSEP if use_sep else _AB
    source = rng.choice(_SOURCES_SEP if use_sep else _SOURCES_AB)
    max_len = rng.randint(3, 4 if use_sep else 5)
    if include_gaps:
        cap = _FUZZ_REPLACE_CAP
    else:
        # Replace chains over the separator alphabet are the expensive
        # shapes (3-letter case splits); curated instances keep just one.
        cap = 1 if use_sep else _SUITE_REPLACE_CAP
    stages: List[Stage] = []
    for _ in range(rng.randint(1, 3)):
        stage = _random_stage(rng, alphabet, include_gaps)
        weight = sum(_replace_weight(s) for s in stages) + _replace_weight(stage)
        if weight > cap:
            continue
        stages.append(stage)
    return Pipeline(source, max_len, tuple(stages), alphabet)


def _mutate_pipeline(rng: random.Random, pipeline: Pipeline, include_gaps: bool) -> Pipeline:
    """A structural variant for equivalence queries (same source/alphabet)."""
    stages = list(pipeline.stages)
    moves = ["tweak", "drop", "add"] if stages else ["add"]
    move = rng.choice(moves)
    if move == "drop":
        del stages[rng.randrange(len(stages))]
    elif move == "add":
        stage = _random_stage(rng, pipeline.alphabet, include_gaps=False)
        stages.insert(rng.randint(0, len(stages)), stage)
    else:
        index = rng.randrange(len(stages))
        replacement = _random_stage(rng, pipeline.alphabet, include_gaps=False)
        stages[index] = replacement
    cap = _FUZZ_REPLACE_CAP if include_gaps else _SUITE_REPLACE_CAP
    while stages and sum(_replace_weight(s) for s in stages) > cap:
        del stages[-1]
    return dc_replace(pipeline, stages=tuple(stages))


def _scenario(rng: random.Random, index: int, include_gaps: bool) -> PipelineScenario:
    kind = ("reachability", "inversion", "equivalence")[index % 3]
    # Curated (suite) equivalence instances stay on the 2-letter alphabet:
    # output disequalities over separator-alphabet replace chains are the
    # shapes that blow past the 30 s corpus budget.  The fuzzer keeps them.
    allow_sep = include_gaps or kind != "equivalence"
    pipeline = _random_pipeline(rng, include_gaps, allow_sep=allow_sep)
    name = f"pipe-{index}-{kind}"
    if kind == "reachability":
        letters = [c for c in pipeline.alphabet if c != "/"]
        payload = _random_word(rng, letters, 1, 2)
        return PipelineScenario(name, kind, pipeline, payload=payload)
    if kind == "inversion":
        outputs = sorted({out for _, _, out in pipeline.executions()})
        if not include_gaps:
            # Curated instances invert a *short* output: long literal
            # outputs fed back through replace chains multiply the Levi
            # noodles past the default ``max_noodles`` budget (a decidable
            # but budget-starved shape the fuzzer is welcome to keep).
            short = [out for out in outputs if len(out) <= pipeline.max_input_length]
            outputs = short or outputs
        if outputs and rng.random() < 0.7:
            payload = rng.choice(outputs)  # sat by construction
        else:
            # A word outside the image: mutate until it misses (bounded
            # tries; falls back to a long out-of-range word).
            letters = [c for c in pipeline.alphabet if c != "/"]
            image = set(outputs)
            payload = None
            for _ in range(16):
                candidate = _random_word(rng, letters, 1, 3)
                if candidate not in image:
                    payload = candidate
                    break
            if payload is None:
                payload = letters[0] * (pipeline.max_input_length + 4)
        return PipelineScenario(name, kind, pipeline, payload=payload)
    other = _mutate_pipeline(rng, pipeline, include_gaps)
    return PipelineScenario(name, kind, pipeline, right=other)


def scenario_from_seed(seed: int, include_gaps: bool = True) -> PipelineScenario:
    """The fuzzer's entry point: one scenario per seed, gap shapes included."""
    return _scenario(random.Random(seed), seed, include_gaps)


def generate(count: int, seed: int = 23, include_gaps: bool = False) -> Iterator[Instance]:
    """The suite generator: ``count`` instances, ground truth attached.

    With the default ``include_gaps=False`` every instance stays within the
    decidable fragment budgets (curated for the corpus and the e2e bench);
    the fuzzer asks for the gap shapes explicitly.
    """
    rng = random.Random(seed)
    for index in range(count):
        yield _scenario(rng, index, include_gaps).instance()


# ----------------------------------------------------------------------
# Pinned gap scenarios (the ROADMAP's two known unknown families)
# ----------------------------------------------------------------------
def gap_problems() -> List[Instance]:
    """Hand-pinned instances of the two known ``unknown`` gaps.

    These are the shapes the pipeline workload keeps generating at scale:
    ≥3 structural splits of one haystack with shared variables (Levi
    alignment blow-up), and variable-needle replace/indexof over non-flat
    languages (the MBQI flatness limit).  The regression tests assert the
    verdicts are *structured* unknowns — never wrong — so a future fix
    flips an xfail instead of silently changing behaviour.
    """
    from ..lia import ge as lia_ge
    from ..strings.ast import IndexOfAtom

    instances: List[Instance] = []

    levi = Problem(alphabet=_AB, name="gap-levi-3split")
    levi.add(WordEquation(term("s"), term("x", lit("ab"), "y")))
    levi.add(WordEquation(term("s"), term("y", lit("ba"), "x")))
    levi.add(WordEquation(term("s"), term("z", lit("aa"), "z")))
    levi.add(LengthConstraint(lia_le(str_len("s"), 8)))
    # Exhaustive check over |s| <= 8: no assignment satisfies all three
    # splits, but the alignment space defeats the budgeted Levi pre-pass.
    instances.append(("gap-levi-3split", levi, "unsat"))

    absent = Problem(alphabet=_AB, name="gap-var-needle-absent")
    absent.add(RegexMembership("s", "(ab|ba)*"))
    absent.add(RegexMembership("n", "(a|b)(a|b)"))
    absent.add(IndexOfAtom(LinExpr.constant(-1), term("s"), term("n"), LinExpr.constant(0)))
    absent.add(LengthConstraint(lia_ge(str_len("s"), 2)))
    # sat: e.g. s = "ba", n = "aa" does not occur in "ba".
    instances.append(("gap-var-needle-absent", absent, "sat"))

    fixpoint = Problem(alphabet=_AB, name="gap-var-needle-fixpoint")
    fixpoint.add(RegexMembership("s", "(ab|ba)*"))
    fixpoint.add(RegexMembership("n", "a(a|b)"))
    fixpoint.add(ReplaceAtom(term("t"), term("s"), term("n"), term(lit("bb"))))
    fixpoint.add(WordEquation(term("t"), term("s")))
    fixpoint.add(LengthConstraint(lia_ge(str_len("s"), 2)))
    # sat: s = "ba", n = "aa" absent => replace is the identity.
    instances.append(("gap-var-needle-fixpoint", fixpoint, "sat"))

    return instances
