"""NP-hardness reductions from the paper, as executable generators.

* :func:`three_sat_to_disequalities` — Lemma 7.2: a 3-SAT formula becomes a
  system of disequalities over {0,1}-valued string variables,
* :func:`three_sat_to_not_contains` — Theorem 7.5 / Appendix D: a 3-SAT
  formula becomes a *single* ¬contains constraint.

Both reductions are equisatisfiable with the input propositional formula,
which the tests exploit (comparing against a tiny DPLL for 3-SAT).
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence, Tuple

from ..strings.ast import Contains, Problem, RegexMembership, WordEquation, lit, term

#: A clause is a triple of signed variable indices (1-based, negative = negated).
Clause = Tuple[int, int, int]


def random_3sat(num_vars: int, num_clauses: int, seed: int = 0) -> List[Clause]:
    """Generate a random 3-SAT instance."""
    rng = random.Random(seed)
    clauses: List[Clause] = []
    for _ in range(num_clauses):
        chosen = rng.sample(range(1, num_vars + 1), k=min(3, num_vars))
        while len(chosen) < 3:
            chosen.append(rng.randint(1, num_vars))
        clauses.append(tuple(rng.choice([v, -v]) for v in chosen))  # type: ignore[return-value]
    return clauses


def sat_brute_force(num_vars: int, clauses: Sequence[Clause]) -> Optional[Dict[int, bool]]:
    """Tiny exhaustive SAT check used as ground truth in tests."""
    for mask in range(1 << num_vars):
        assignment = {v: bool(mask >> (v - 1) & 1) for v in range(1, num_vars + 1)}
        if all(
            any(assignment[abs(l)] == (l > 0) for l in clause)
            for clause in clauses
        ):
            return assignment
    return None


def three_sat_to_disequalities(num_vars: int, clauses: Sequence[Clause], name: str = "3sat-diseq") -> Problem:
    """Lemma 7.2: one disequality per clause.

    Variable ``x_i`` becomes a string variable ``v_i`` over the language
    ``{0,1}``; a clause like ``(x1 ∨ ¬x2 ∨ x3)`` becomes the disequality
    ``v1·v2·v3 ≠ "010"`` (the only forbidden assignment of the clause).
    """
    problem = Problem(alphabet=("0", "1"), name=name)
    for index in range(1, num_vars + 1):
        problem.add(RegexMembership(f"v{index}", "0|1"))
    for clause in clauses:
        forbidden = "".join("0" if literal > 0 else "1" for literal in clause)
        variables = term(*[f"v{abs(literal)}" for literal in clause])
        problem.add(WordEquation(variables, term(lit(forbidden)), positive=False))
    return problem


def three_sat_to_not_contains(num_vars: int, clauses: Sequence[Clause], name: str = "3sat-notcontains") -> Problem:
    """Appendix D: a single ¬contains equisatisfiable with the 3-SAT input.

    The haystack is built from one block per clause (forcing every clause to
    have a satisfied literal) followed by one block per variable (forcing
    ``s_x`` and ``s_x̄`` to take complementary values); the needle is the
    fixed word ``0000011``.
    """
    problem = Problem(alphabet=("0", "1", "#"), name=name)
    for index in range(1, num_vars + 1):
        problem.add(RegexMembership(f"p{index}", "0|1"))  # s_x
        problem.add(RegexMembership(f"n{index}", "0|1"))  # s_¬x
    needle = term(lit("0000011"))

    haystack_elements = []
    for clause in clauses:
        literal_vars = [
            (f"p{abs(literal)}" if literal > 0 else f"n{abs(literal)}") for literal in clause
        ]
        haystack_elements.extend([*term(*literal_vars), lit("0011"), lit("#")])
    for index in range(1, num_vars + 1):
        haystack_elements.extend(
            [lit("00000"), *term(f"p{index}", f"n{index}"), lit("#"), lit("000"),
             *term(f"p{index}", f"n{index}"), lit("11")]
        )
        if index != num_vars:
            haystack_elements.append(lit("#"))
    problem.add(Contains(needle, tuple(haystack_elements), positive=False))
    return problem
