"""Benchmark workload generators and the evaluation harness (§8)."""

from . import pipelines, position_hard, sat_reductions, symbolic_execution
from .harness import Campaign, RunRecord, TableRow, run_campaign
from .suite import benchmark_sets, solver_factories

__all__ = [
    "pipelines",
    "position_hard",
    "sat_reductions",
    "symbolic_execution",
    "Campaign",
    "RunRecord",
    "TableRow",
    "run_campaign",
    "benchmark_sets",
    "solver_factories",
]
