"""Evaluation harness: runs solvers over benchmark sets and aggregates results.

The harness reproduces the accounting of §8:

* **OOR** — the solver ran out of resources (timeout in this reproduction),
* **Unknown** — the solver answered ``unknown``,
* **Time** — total time on finished (sat/unsat) instances,
* **TimeAll** — total time counting every OOR/Unknown instance at the full
  per-instance timeout (the paper uses the same convention).

It also produces the per-instance records needed for the scatter plots of
Fig. 6 and the cactus plot of Fig. 7.
"""

from __future__ import annotations

import csv
import io
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from ..strings.ast import Problem
from ..solver.result import SolveResult, Status

Instance = Tuple[str, Problem, Optional[str]]
SolverFactory = Callable[[], object]


#: solver counters reported in the per-instance CSV (when the solver
#: exposes them through ``SolveResult.stats``)
STAT_COLUMNS = (
    "decisions",
    "propagations",
    "conflicts",
    "theory_checks",
    "learned_clauses",
    "restarts",
    "pivots",
    "cache_hits",
)


@dataclass
class RunRecord:
    """Result of one solver on one instance."""

    benchmark: str
    instance: str
    solver: str
    status: Status
    time: float
    expected: Optional[str] = None
    stats: Dict[str, int] = field(default_factory=dict)

    @property
    def solved(self) -> bool:
        return self.status in (Status.SAT, Status.UNSAT)

    @property
    def agrees_with_expectation(self) -> bool:
        if self.expected is None or not self.solved:
            return True
        return self.status.value == self.expected


@dataclass
class TableRow:
    """One (solver, benchmark set) aggregate in the style of Table 1."""

    solver: str
    benchmark: str
    instances: int
    oor: int
    unknown: int
    wrong: int
    time_finished: float
    time_all: float

    def as_tuple(self) -> Tuple:
        return (
            self.solver,
            self.benchmark,
            self.instances,
            self.oor,
            self.unknown,
            self.wrong,
            round(self.time_finished, 2),
            round(self.time_all, 2),
        )


@dataclass
class Campaign:
    """All per-instance records of one evaluation run."""

    records: List[RunRecord] = field(default_factory=list)
    timeout: float = 10.0

    # ------------------------------------------------------------------
    def add(self, record: RunRecord) -> None:
        self.records.append(record)

    def solvers(self) -> List[str]:
        return sorted({record.solver for record in self.records})

    def benchmarks(self) -> List[str]:
        seen: Dict[str, None] = {}
        for record in self.records:
            seen.setdefault(record.benchmark, None)
        return list(seen)

    # ------------------------------------------------------------------
    def table_rows(self) -> List[TableRow]:
        """Aggregate the records into Table-1-style rows (plus an "all" row)."""
        rows: List[TableRow] = []
        benchmarks = self.benchmarks() + ["all"]
        for solver in self.solvers():
            for benchmark in benchmarks:
                selected = [
                    r
                    for r in self.records
                    if r.solver == solver and (benchmark == "all" or r.benchmark == benchmark)
                ]
                if not selected:
                    continue
                oor = sum(1 for r in selected if r.status is Status.TIMEOUT)
                unknown = sum(1 for r in selected if r.status is Status.UNKNOWN)
                wrong = sum(1 for r in selected if not r.agrees_with_expectation)
                finished = [r for r in selected if r.solved]
                time_finished = sum(r.time for r in finished)
                time_all = time_finished + self.timeout * (oor + unknown)
                rows.append(
                    TableRow(
                        solver=solver,
                        benchmark=benchmark,
                        instances=len(selected),
                        oor=oor,
                        unknown=unknown,
                        wrong=wrong,
                        time_finished=time_finished,
                        time_all=time_all,
                    )
                )
        return rows

    def format_table(self) -> str:
        """Render the aggregate table as aligned text (the Table 1 analogue)."""
        header = f"{'solver':<22} {'benchmark':<18} {'N':>5} {'OOR':>5} {'Unk':>5} {'Wrong':>6} {'Time':>9} {'TimeAll':>9}"
        lines = [header, "-" * len(header)]
        for row in self.table_rows():
            lines.append(
                f"{row.solver:<22} {row.benchmark:<18} {row.instances:>5} {row.oor:>5} "
                f"{row.unknown:>5} {row.wrong:>6} {row.time_finished:>9.2f} {row.time_all:>9.2f}"
            )
        return "\n".join(lines)

    # ------------------------------------------------------------------
    def scatter_points(self, solver_x: str, solver_y: str) -> List[Tuple[str, float, float]]:
        """Per-instance (time_x, time_y) pairs for a Fig. 6 style scatter plot.

        Unsolved instances are reported at the timeout value, as in the paper.
        """
        by_key: Dict[Tuple[str, str], Dict[str, RunRecord]] = {}
        for record in self.records:
            by_key.setdefault((record.benchmark, record.instance), {})[record.solver] = record
        points = []
        for (benchmark, instance), entries in by_key.items():
            if solver_x in entries and solver_y in entries:
                x = entries[solver_x].time if entries[solver_x].solved else self.timeout
                y = entries[solver_y].time if entries[solver_y].solved else self.timeout
                points.append((f"{benchmark}/{instance}", x, y))
        return points

    def cactus_series(self) -> Dict[str, List[float]]:
        """Sorted runtimes of solved instances per solver (Fig. 7 analogue)."""
        series: Dict[str, List[float]] = {}
        for solver in self.solvers():
            times = sorted(r.time for r in self.records if r.solver == solver and r.solved)
            series[solver] = times
        return series

    def format_cactus(self, steps: int = 10) -> str:
        """Render the cactus data as a small text table (solved count vs. time budget)."""
        series = self.cactus_series()
        budgets = [self.timeout * (i + 1) / steps for i in range(steps)]
        lines = ["instances solved within a per-instance budget (cactus plot data):"]
        header = "budget[s]".ljust(12) + "".join(s.ljust(22) for s in series)
        lines.append(header)
        for budget in budgets:
            row = f"{budget:<12.2f}"
            for solver, times in series.items():
                solved = sum(1 for t in times if t <= budget)
                row += str(solved).ljust(22)
            lines.append(row)
        return "\n".join(lines)

    # ------------------------------------------------------------------
    def to_csv(self) -> str:
        """Dump the per-instance records as CSV (for external plotting)."""
        output = io.StringIO()
        writer = csv.writer(output)
        writer.writerow(
            ["benchmark", "instance", "solver", "status", "time", "expected"]
            + list(STAT_COLUMNS)
        )
        for record in self.records:
            writer.writerow(
                [record.benchmark, record.instance, record.solver, record.status.value,
                 f"{record.time:.4f}", record.expected or ""]
                + [record.stats.get(column, "") for column in STAT_COLUMNS]
            )
        return output.getvalue()


def run_campaign(
    benchmark_sets: Mapping[str, Sequence[Instance]],
    solver_factories: Mapping[str, SolverFactory],
    timeout: float = 10.0,
) -> Campaign:
    """Run every solver on every instance of every benchmark set.

    ``solver_factories`` maps a solver name to a zero-argument callable
    returning a fresh solver object with a ``check(problem)`` method; a fresh
    solver is created per instance so no state leaks between runs.
    """
    campaign = Campaign(timeout=timeout)
    for benchmark, instances in benchmark_sets.items():
        for instance_name, problem, expected in instances:
            for solver_name, factory in solver_factories.items():
                solver = factory()
                result: SolveResult = solver.check(problem)
                status = result.status
                elapsed = min(result.elapsed, timeout)
                if result.elapsed >= timeout and not result.solved:
                    status = Status.TIMEOUT
                campaign.add(
                    RunRecord(
                        benchmark=benchmark,
                        instance=instance_name,
                        solver=solver_name,
                        status=status,
                        time=elapsed,
                        expected=expected,
                        stats=dict(getattr(result, "stats", None) or {}),
                    )
                )
    return campaign
