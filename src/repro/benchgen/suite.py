"""The scaled-down benchmark suite and the solver line-up of §8.

The paper evaluates on ~150 000 formulae with a 120 s timeout; this
reproduction defaults to a few dozen instances per set and a 10 s timeout so
the whole evaluation fits in a few minutes of pure-Python solving.  The
*shape* of the results (who solves which set, where the timeouts are) is the
reproduction target, not the absolute numbers.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..lia import LiaConfig
from ..solver import EagerReductionSolver, EnumerativeSolver, PositionSolver, SolverConfig
from . import pipelines, position_hard, symbolic_execution
from .harness import Instance


def benchmark_sets(scale: int = 1, seed: int = 7) -> Dict[str, List[Instance]]:
    """Build the five benchmark sets, ``scale`` multiplying the instance counts.

    scale=1 gives a quick suite (≈57 instances) suited to CI; the paper-shaped
    run in ``benchmarks/`` uses a larger scale.
    """
    return {
        "biopython-like": list(symbolic_execution.biopython_like(12 * scale, seed=seed)),
        "django-like": list(symbolic_execution.django_like(12 * scale, seed=seed + 1)),
        "thefuck-like": list(symbolic_execution.thefuck_like(9 * scale, seed=seed + 2)),
        "position-hard": list(position_hard.generate(12 * scale, seed=seed + 3)),
        "pipeline": list(pipelines.generate(12 * scale, seed=seed + 4)),
    }


def solver_factories(timeout: float = 10.0) -> Dict[str, object]:
    """The solver line-up: our procedure plus the two baselines.

    ``repro-pos`` plays the role of Z3-Noodler-pos, ``eager-reduction`` the
    role of the original automata pipeline that reduces position constraints
    to word equations, and ``enumerative`` the role of guess-and-check
    solvers that shine on easy satisfiable instances.
    """

    def config() -> SolverConfig:
        return SolverConfig(timeout=timeout, lia=LiaConfig())

    return {
        "repro-pos": lambda: PositionSolver(config()),
        "eager-reduction": lambda: EagerReductionSolver(config()),
        "enumerative": lambda: EnumerativeSolver(config()),
    }
