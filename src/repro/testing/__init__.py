"""Test support: deterministic fault injection and the differential fuzzer."""

from .faults import FaultInjector, FaultSpec, InjectedFault, seeded_faults
from .fuzz import DifferentialFuzzer, FuzzFailure, FuzzReport, default_configs

__all__ = [
    "FaultInjector",
    "FaultSpec",
    "InjectedFault",
    "seeded_faults",
    "DifferentialFuzzer",
    "FuzzFailure",
    "FuzzReport",
    "default_configs",
]
