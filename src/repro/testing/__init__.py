"""Test support: deterministic fault injection for the budget layer."""

from .faults import FaultInjector, FaultSpec, InjectedFault, seeded_faults

__all__ = ["FaultInjector", "FaultSpec", "InjectedFault", "seeded_faults"]
