"""Seeded differential fuzzing over the pipeline workload.

:class:`DifferentialFuzzer` closes the loop the benchgen pipeline model
opens: every :mod:`repro.benchgen.pipelines` scenario carries an exact
ground truth (exhaustive concrete execution of the pipe program), so each
seed becomes a *differential* test case — the instance is solved under
2–3 :class:`~repro.solver.config.SolverConfig` ablations plus the
brute-force oracle, and every disagreement is classified:

* ``wrong-verdict`` — a definite ``sat``/``unsat`` contradicting the
  ground truth (or one ablation contradicting another);
* ``unverified-model`` — a ``sat`` whose model is missing or fails the
  semantics oracle (:func:`repro.strings.semantics.eval_problem`);
* ``core-bystander`` — an ``unsat`` whose named core, re-solved as a
  standalone problem, turns out satisfiable (the core blamed bystander
  assertions) or is empty;
* ``structured-unknown-mismatch`` — an undecided result whose ``reason``
  is not a typed :class:`~repro.budget.UnknownReason` (the budget-layer
  contract: unknowns always say which stage and budget gave out);
* ``crash`` — an engine exception or an ``internal_errors`` counter
  ticking (fault-injection runs land here by design: the chaos tests
  prove an injected fault is *caught* and shrunk, not silently absorbed).

Failing scenarios are **shrunk** before reporting: the fuzzer walks
:meth:`PipelineScenario.shrink_candidates` (stage deletion first, then
constant narrowing — each candidate strictly smaller), re-runs only the
failing configuration, and greedily descends while the failure kind
reproduces.  The minimal scenario is emitted as a replayable SMT-LIB
repro file whose header records the seed, configuration and
classification — ``python -m repro.smtlib <repro>`` replays it.

Determinism: everything is driven by ``random.Random(seed)`` inside the
generator and by the solver's own step budgets here — this module reads
no clocks and no global randomness, so a seed list reproduces bit-for-bit
(the static analyzer's determinism rule holds it to that).

Run the CI sweep locally::

    PYTHONPATH=src python -m repro.testing.fuzz --seeds 40 --budget 0.5
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, replace as dc_replace
from typing import Dict, List, Optional, Sequence, Tuple

from ..benchgen.pipelines import PipelineScenario, scenario_from_seed
from ..budget import Budget, BudgetExceeded, UnknownKind, UnknownReason
from ..smtlib.printer import problem_to_smtlib
from ..solver.bruteforce import brute_force_check
from ..solver.config import SolverConfig
from ..solver.result import SolveResult, Status
from ..solver.session import Session
from ..strings.ast import Problem
from ..strings.semantics import eval_problem

# Failure kinds (the classification lattice, worst first)
WRONG_VERDICT = "wrong-verdict"
CRASH = "crash"
UNVERIFIED_MODEL = "unverified-model"
CORE_BYSTANDER = "core-bystander"
UNKNOWN_MISMATCH = "structured-unknown-mismatch"

#: the brute-force oracle's bounds: the pipeline problems carry one string
#: variable per stage, so enumeration must stay very shallow — only its
#: *definite* answers participate in the differential
BRUTE_MAX_LENGTH = 3
BRUTE_TIMEOUT = 0.25


def _model_ok(problem: Problem, model) -> bool:
    """Semantics-oracle verification; a model missing an assignment for
    some problem variable counts as unverified, not as an error."""
    try:
        return eval_problem(problem, model.strings, model.integers)
    except KeyError:
        return False


def default_configs(timeout: Optional[float] = None) -> Dict[str, SolverConfig]:
    """The 3 ablations the fuzzer races — mirroring the server portfolio
    (``witness`` / ``encoding`` / ``frugal``), so a disagreement here is a
    disagreement the portfolio could serve to a client."""
    return {
        "witness": SolverConfig(timeout=timeout),
        "encoding": SolverConfig(timeout=timeout, distinct_shortcut=False),
        "frugal": SolverConfig(timeout=timeout, lia_cuts=False, incremental_lia=False),
    }


@dataclass
class FuzzFailure:
    """One classified disagreement, after shrinking."""

    seed: int
    name: str
    config: str
    kind: str
    detail: str
    expected: str
    scenario: PipelineScenario
    shrink_steps: int = 0
    repro_path: Optional[str] = None


@dataclass
class FuzzReport:
    """The outcome of one :meth:`DifferentialFuzzer.run` sweep."""

    instances: int = 0
    checks: int = 0
    verdicts: Dict[str, int] = field(default_factory=dict)
    unknowns: int = 0
    brute_confirmations: int = 0
    failures: List[FuzzFailure] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def summary(self) -> str:
        lines = [
            f"instances={self.instances} checks={self.checks} "
            f"verdicts={dict(sorted(self.verdicts.items()))} "
            f"unknowns={self.unknowns} brute-confirmations={self.brute_confirmations}",
        ]
        for failure in self.failures:
            lines.append(
                f"FAIL {failure.kind} seed={failure.seed} name={failure.name} "
                f"config={failure.config} shrink_steps={failure.shrink_steps} "
                f"repro={failure.repro_path or '-'} :: {failure.detail}"
            )
        if not self.failures:
            lines.append("no disagreements")
        return "\n".join(lines)


@dataclass
class _Outcome:
    """The classification of one (scenario, config) check."""

    status: str  # "sat" | "unsat" | "unknown"
    kind: Optional[str] = None  # failure kind, None when clean
    detail: str = ""


class DifferentialFuzzer:
    """Generate → solve under ablations → cross-check → shrink.

    ``injector`` (a :class:`repro.testing.faults.FaultInjector`) rides on
    a caller-owned :class:`Budget` hook, firing deterministic faults at
    engine stage coordinates; the fuzzer then *expects* to catch the
    resulting crash/exhaustion as a classified failure — that path is how
    the chaos tests prove the loop actually detects and shrinks bugs.
    """

    def __init__(
        self,
        configs: Optional[Dict[str, SolverConfig]] = None,
        brute_max_length: int = BRUTE_MAX_LENGTH,
        repro_dir: Optional[str] = None,
        injector=None,
        max_shrink_checks: int = 200,
        include_gaps: bool = True,
    ) -> None:
        self.configs = configs if configs is not None else default_configs()
        self.brute_max_length = brute_max_length
        self.repro_dir = repro_dir
        self.injector = injector
        self.max_shrink_checks = max_shrink_checks
        self.include_gaps = include_gaps

    # -- one check ------------------------------------------------------
    def _solve(self, problem: Problem, config: SolverConfig, budget: float) -> SolveResult:
        """One engine check; injector faults surface as results, and
        injected budget exhaustion / interrupts become structured unknowns
        (that is the session contract the chaos suite pins)."""
        session = Session(config=config, alphabet=problem.alphabet, name=problem.name)
        for index, atom in enumerate(problem.atoms):
            session.add(atom, name=f"a{index}")
        if self.injector is None:
            result = session.check(timeout=budget)
        else:
            self.injector.reset()
            owned = Budget(budget, hook=self.injector)
            try:
                result = session.check(budget=owned)
            except BudgetExceeded:
                reason = UnknownReason(UnknownKind.STEP_LIMIT, "fuzz.injected", "injected exhaustion")
                return SolveResult(status=Status.UNKNOWN, reason=reason)
            except KeyboardInterrupt:
                reason = UnknownReason(UnknownKind.INTERRUPTED, "fuzz.injected", "injected interrupt")
                return SolveResult(status=Status.UNKNOWN, reason=reason)
        self._last_session = session
        return result

    def _classify(
        self, scenario: PipelineScenario, config_name: str, expected: str, budget: float
    ) -> _Outcome:
        problem = scenario.problem()
        config = self.configs[config_name]
        self._last_session = None
        try:
            result = self._solve(problem, config, budget)
        except Exception as error:  # engine exceptions are fuzz findings
            return _Outcome("unknown", CRASH, f"engine raised {type(error).__name__}: {error}")
        internal = int(result.stats.get("internal_errors", 0)) if result.stats else 0
        if internal:
            return _Outcome(
                "unknown", CRASH, f"internal_errors={internal} (reason {result.reason})"
            )
        if result.status is Status.SAT:
            model = result.model
            if model is None:
                return _Outcome("sat", UNVERIFIED_MODEL, "sat without a model")
            if not _model_ok(problem, model):
                return _Outcome("sat", UNVERIFIED_MODEL, f"model fails semantics: {model.strings}")
            if expected == "unsat":
                return _Outcome(
                    "sat", WRONG_VERDICT, "sat (verified model!) but ground truth is unsat"
                )
            return _Outcome("sat")
        if result.status is Status.UNSAT:
            if expected == "sat":
                return _Outcome("unsat", WRONG_VERDICT, "unsat but ground truth is sat")
            return self._check_core(problem, config, budget)
        # UNKNOWN / TIMEOUT: the reason must be a typed UnknownReason
        if not isinstance(result.reason, UnknownReason):
            return _Outcome(
                "unknown", UNKNOWN_MISMATCH, f"untyped unknown reason: {result.reason!r}"
            )
        return _Outcome("unknown")

    def _check_core(self, problem: Problem, config: SolverConfig, budget: float) -> _Outcome:
        """Re-solve the named unsat core as a standalone problem: a core
        whose sub-problem is satisfiable blamed bystander assertions."""
        session = self._last_session
        if session is None:  # injector path: core auditing is skipped
            return _Outcome("unsat")
        core = session.unsat_core()
        if not core:
            return _Outcome("unsat", CORE_BYSTANDER, "empty unsat core")
        wanted = {name for name in core}
        sub = Problem(alphabet=problem.alphabet, name=f"{problem.name}-core")
        for index, atom in enumerate(problem.atoms):
            if f"a{index}" in wanted:
                sub.add(atom)
        try:
            check = Session(config=config, alphabet=problem.alphabet)
            for atom in sub.atoms:
                check.add(atom)
            sub_result = check.check(timeout=budget)
        except Exception as error:
            return _Outcome("unsat", CRASH, f"core re-solve raised {type(error).__name__}: {error}")
        if sub_result.status is Status.SAT:
            model = sub_result.model
            if model is not None and _model_ok(sub, model):
                return _Outcome(
                    "unsat",
                    CORE_BYSTANDER,
                    f"core {sorted(wanted)} is satisfiable on its own",
                )
        return _Outcome("unsat")

    # -- the sweep ------------------------------------------------------
    def run(self, seeds: Sequence[int], budget: float = 0.5) -> FuzzReport:
        """Solve every seeded scenario under all ablations + the brute
        oracle; classify, shrink and report."""
        report = FuzzReport()
        for seed in seeds:
            scenario = scenario_from_seed(seed, include_gaps=self.include_gaps)
            expected = scenario.ground_truth()
            report.instances += 1
            statuses: Dict[str, str] = {}
            for config_name in self.configs:
                outcome = self._classify(scenario, config_name, expected, budget)
                report.checks += 1
                statuses[config_name] = outcome.status
                if outcome.status == "unknown" and outcome.kind is None:
                    report.unknowns += 1
                report.verdicts[outcome.status] = report.verdicts.get(outcome.status, 0) + 1
                if outcome.kind is not None:
                    report.failures.append(
                        self._shrink(seed, scenario, config_name, expected, outcome, budget)
                    )
            # cross-ablation differential (belt to the ground-truth braces)
            if "sat" in statuses.values() and "unsat" in statuses.values():
                detail = f"ablation disagreement: {statuses}"
                outcome = _Outcome("unknown", WRONG_VERDICT, detail)
                sat_config = sorted(k for k, v in statuses.items() if v == "sat")[0]
                report.failures.append(
                    self._shrink(seed, scenario, sat_config, expected, outcome, budget)
                )
            # brute-force oracle: definite answers must agree with the
            # enumerated ground truth (this cross-checks the *generator*)
            brute = brute_force_check(
                scenario.problem(), max_length=self.brute_max_length, timeout=BRUTE_TIMEOUT
            )
            if brute.status in (Status.SAT, Status.UNSAT):
                verdict = "sat" if brute.status is Status.SAT else "unsat"
                if verdict == expected:
                    report.brute_confirmations += 1
                else:
                    outcome = _Outcome(
                        verdict,
                        WRONG_VERDICT,
                        f"brute-force says {verdict}, ground truth {expected}",
                    )
                    report.failures.append(
                        self._shrink(seed, scenario, "brute", expected, outcome, budget)
                    )
        return report

    # -- shrinking ------------------------------------------------------
    def _reproduces(
        self, scenario: PipelineScenario, config_name: str, budget: float, kind: str
    ) -> bool:
        expected = scenario.ground_truth()
        if config_name == "brute":
            brute = brute_force_check(
                scenario.problem(), max_length=self.brute_max_length, timeout=BRUTE_TIMEOUT
            )
            if brute.status not in (Status.SAT, Status.UNSAT):
                return False
            verdict = "sat" if brute.status is Status.SAT else "unsat"
            return verdict != expected
        outcome = self._classify(scenario, config_name, expected, budget)
        return outcome.kind == kind

    def _shrink(
        self,
        seed: int,
        scenario: PipelineScenario,
        config_name: str,
        expected: str,
        outcome: _Outcome,
        budget: float,
    ) -> FuzzFailure:
        """Greedy descent through strictly-smaller scenarios that keep the
        failure kind alive; deterministic order, bounded re-checks."""
        kind = outcome.kind or WRONG_VERDICT
        steps = 0
        checks = 0
        current = scenario
        improved = True
        while improved and checks < self.max_shrink_checks:
            improved = False
            for candidate in current.shrink_candidates():
                if candidate.size() >= current.size():
                    continue
                checks += 1
                if checks >= self.max_shrink_checks:
                    break
                if self._reproduces(candidate, config_name, budget, kind):
                    current = candidate
                    steps += 1
                    improved = True
                    break
        failure = FuzzFailure(
            seed=seed,
            name=scenario.name,
            config=config_name,
            kind=kind,
            detail=outcome.detail,
            expected=expected,
            scenario=current,
            shrink_steps=steps,
        )
        failure.repro_path = self._emit_repro(failure)
        return failure

    def _emit_repro(self, failure: FuzzFailure) -> Optional[str]:
        if self.repro_dir is None:
            return None
        os.makedirs(self.repro_dir, exist_ok=True)
        scenario = failure.scenario
        expected = scenario.ground_truth()
        script = problem_to_smtlib(scenario.problem(), status=expected)
        header = (
            f"; fuzz repro: seed={failure.seed} kind={failure.kind}\n"
            f"; config={failure.config} shrink_steps={failure.shrink_steps}\n"
            f"; detail: {failure.detail}\n"
            f"; replay: PYTHONPATH=src python -m repro.smtlib <this file>\n"
        )
        path = os.path.join(
            self.repro_dir, f"fuzz__{failure.seed}__{failure.config}__{failure.kind}.smt2"
        )
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(header + script)
        return path


def main(argv: Optional[Sequence[str]] = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.testing.fuzz",
        description="Seeded differential fuzz sweep over the pipeline workload.",
    )
    parser.add_argument("--seeds", type=int, default=40, help="number of seeds (0..N-1)")
    parser.add_argument("--start", type=int, default=0, help="first seed")
    parser.add_argument("--budget", type=float, default=0.5, help="seconds per check")
    parser.add_argument(
        "--repro-dir", default=None, help="directory for shrunk repro .smt2 files"
    )
    parser.add_argument(
        "--no-gaps",
        action="store_true",
        help="generate only curated (decidable-biased) scenarios",
    )
    options = parser.parse_args(argv)
    fuzzer = DifferentialFuzzer(
        repro_dir=options.repro_dir, include_gaps=not options.no_gaps
    )
    report = fuzzer.run(range(options.start, options.start + options.seeds), budget=options.budget)
    print(report.summary())
    return 0 if report.ok else 1


if __name__ == "__main__":  # pragma: no cover - exercised by the CI fuzz job
    raise SystemExit(main())
