"""Deterministic fault injection riding the budget layer's hook.

Every :class:`~repro.budget.Budget` accepts a ``hook(stage, count)``
observer that fires on each checkpoint (``stage`` is the checkpoint's
stage name, ``count`` the per-stage step counter) and on each coarse stage
entry (``stage`` is ``"enter:<name>"``, ``count`` the entry ordinal).
Those ``(stage, count)`` pairs are *deterministic coordinates* — for a
fixed input they do not depend on wall-clock speed — which makes them the
natural place to schedule chaos: "raise on the 3rd entry into
``solve``", "exhaust the budget at the 500th determinization expansion".

A :class:`FaultInjector` is a list of :class:`FaultSpec` triggers plus the
hook callable to install::

    injector = FaultInjector([FaultSpec("enter:solve", at=2)])
    budget = Budget(10.0, hook=injector)
    result = session.check(budget=budget)   # 2nd branch solve blows up

The chaos suite (``tests/test_faults.py``) drives seeded schedules from
:func:`seeded_faults` and asserts the two robustness invariants: a fault
never turns into a wrong ``sat``/``unsat`` verdict, and the session
survives — a follow-up check without faults answers exactly what a fresh
solver would.
"""

from __future__ import annotations

import os
import random
import time
from dataclasses import dataclass, field
from fnmatch import fnmatchcase
from typing import List, Sequence

from ..budget import BudgetExceeded, UnknownKind, UnknownReason


class InjectedFault(RuntimeError):
    """The exception raised by ``action="raise"`` faults.

    A dedicated type so chaos tests can tell an injected explosion from a
    genuine engine bug surfacing during the run.
    """


@dataclass
class FaultSpec:
    """One scheduled fault: *what* happens *where* and *when*.

    ``stage`` is an :func:`fnmatch.fnmatchcase` pattern over the hook's
    stage coordinate — checkpoint stages (``"automata.*"``, ``"lia.sat"``)
    or entry events (``"enter:solve"``).  The fault fires when a matching
    event's per-stage counter reaches ``at`` (the Nth occurrence), at most
    ``repeat`` times.
    """

    stage: str
    #: fire on the Nth matching event (1-based)
    at: int = 1
    #: ``"raise"`` (InjectedFault), ``"exhaust"`` (BudgetExceeded, as if the
    #: budget ran out here), ``"interrupt"`` (KeyboardInterrupt, as if the
    #: user hit Ctrl-C mid-stage), ``"delay"`` (sleep ``delay`` seconds —
    #: stretches a stage past a real deadline without raising) or
    #: ``"kill"`` (``os._exit`` — the process dies on the spot, no cleanup;
    #: the worker-death chaos of the server fleet tests.  Never schedule it
    #: in-process: the test run itself would die)
    action: str = "raise"
    #: seconds slept by ``action="delay"``
    delay: float = 0.0
    #: how many matching events may trigger this spec
    repeat: int = 1
    fired: int = field(default=0, compare=False)

    def trigger(self, stage: str) -> None:
        self.fired += 1
        if self.action == "raise":
            raise InjectedFault(f"injected fault at {stage} (#{self.at})")
        if self.action == "exhaust":
            raise BudgetExceeded(
                UnknownReason(
                    UnknownKind.TIMEOUT,
                    stage=stage,
                    detail=f"injected budget exhaustion (#{self.at})",
                )
            )
        if self.action == "interrupt":
            raise KeyboardInterrupt(f"injected interrupt at {stage}")
        if self.action == "delay":
            time.sleep(self.delay)
            return
        if self.action == "kill":
            # Simulated hard crash (OOM-kill, segfault): bypass every
            # finally/except on the way out.  86 is arbitrary but
            # recognisable in worker-death logs.
            os._exit(86)
        raise ValueError(f"unknown fault action {self.action!r}")


class FaultInjector:
    """A ``Budget.hook`` that fires :class:`FaultSpec` triggers.

    The injector is stateless across budgets except for the per-spec fired
    counters; pass a fresh injector (or call :meth:`reset`) per check when
    replaying a schedule.
    """

    def __init__(self, specs: Sequence[FaultSpec] = ()) -> None:
        self.specs: List[FaultSpec] = list(specs)
        #: every (stage, count) event seen — the observation trace chaos
        #: tests use to discover valid coordinates for the next round
        self.trace_enabled = False
        self.trace: List[tuple] = []

    def reset(self) -> None:
        for spec in self.specs:
            spec.fired = 0
        self.trace.clear()

    def __call__(self, stage: str, count: int) -> None:
        if self.trace_enabled:
            self.trace.append((stage, count))
        for spec in self.specs:
            if spec.fired >= spec.repeat:
                continue
            if count == spec.at and fnmatchcase(stage, spec.stage):
                spec.trigger(stage)


#: stage patterns a seeded schedule draws from — one per engine layer the
#: budget reaches, so chaos coverage spans the whole pipeline
_FAULT_SITES = (
    "enter:normalize",
    "enter:decompose",
    "enter:solve",
    "enter:encode",
    "enter:reduce",
    "normalize",
    "automata.*",
    "eqsolver.*",
    "reduce.cases",
    "solve.branch",
    "mbqi.round",
    "lia.*",
)

_ACTIONS = ("raise", "raise", "exhaust", "interrupt")


def seeded_faults(
    seed: int,
    count: int = 1,
    actions: Sequence[str] = _ACTIONS,
    sites: Sequence[str] = _FAULT_SITES,
    max_at: int = 50,
) -> FaultInjector:
    """A reproducible random fault schedule: same seed → same chaos.

    Draws ``count`` specs over ``sites`` with trigger ordinals in
    ``[1, max_at]``.  ``actions`` is sampled with replacement (the default
    weights plain raises double, as unexpected exceptions are the richest
    source of cleanup bugs).
    """
    rng = random.Random(seed)
    specs = [
        FaultSpec(
            stage=rng.choice(list(sites)),
            at=rng.randint(1, max_at),
            action=rng.choice(list(actions)),
        )
        for _ in range(count)
    ]
    return FaultInjector(specs)
