"""Tag automata (§4) and the basic constructions on them.

A tag automaton (TA) is an NFA whose transitions carry *sets of tags* instead
of symbols.  Tags do not influence which runs exist; they are only counted.
The two constructions defined here follow §4:

* :func:`len_tag` — ``LenTag_x(A)``: lift an NFA for the language of variable
  ``x`` to a TA whose transitions carry ⟨S, a⟩ and ⟨L, x⟩ tags,
* :func:`eps_concat` — ε-concatenation of TAs (used to build the automaton
  ``A◦`` encoding an assignment of all variables).

Every transition also records the *base transition identifier* it originates
from; the identifier survives the copy-based constructions of §5–§6 and is
what the ``EqualWords`` predicate of §6.4 and the witness reconstruction use.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from ..automata.dense import as_nfa
from ..automata.nfa import EPSILON, Nfa
from .tags import Tag, length_tag, symbol_tag

State = int


@dataclass(frozen=True)
class TagTransition:
    """A transition ``src --{tags}--> dst`` of a tag automaton.

    ``base_id`` identifies the transition of the underlying ε-concatenation
    ``A◦`` this transition is a copy of (``None`` for structural transitions
    such as copy-tag self-loops), and ``variable`` names the string variable
    whose automaton the transition belongs to (``None`` for ε-connectors).
    """

    src: State
    tags: FrozenSet[Tag]
    dst: State
    base_id: Optional[int] = None
    variable: Optional[str] = None

    def symbol(self) -> Optional[str]:
        for tag in self.tags:
            if tag.kind == "S":
                return tag.args[0]
        return None


class TagAutomaton:
    """A tag automaton ``(Q, Δ, I, F)`` over a set of tags."""

    def __init__(self) -> None:
        self.states: Set[State] = set()
        self.initial: Set[State] = set()
        self.final: Set[State] = set()
        self.transitions: List[TagTransition] = []

    # ------------------------------------------------------------------
    def add_state(self, state: Optional[State] = None) -> State:
        if state is None:
            state = max(self.states, default=-1) + 1
        self.states.add(state)
        return state

    def add_transition(
        self,
        src: State,
        tags: Iterable[Tag],
        dst: State,
        base_id: Optional[int] = None,
        variable: Optional[str] = None,
    ) -> TagTransition:
        transition = TagTransition(src, frozenset(tags), dst, base_id, variable)
        self.states.add(src)
        self.states.add(dst)
        self.transitions.append(transition)
        return transition

    def tags(self) -> Set[Tag]:
        """Return the set of all tags appearing on some transition."""
        result: Set[Tag] = set()
        for transition in self.transitions:
            result |= transition.tags
        return result

    def size(self) -> int:
        return len(self.states) + len(self.transitions)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TagAutomaton(states={len(self.states)}, transitions={len(self.transitions)}, "
            f"initial={sorted(self.initial)}, final={sorted(self.final)})"
        )


def len_tag(nfa, variable: str) -> TagAutomaton:
    """``LenTag_x(A)`` (§4): tag every transition with ⟨S, a⟩ and ⟨L, x⟩.

    Accepts either automaton form.  Epsilon transitions of the input are not
    supported (variable automata are ε-free after regex compilation); they
    would break length counting.
    """
    nfa = as_nfa(nfa)
    ta = TagAutomaton()
    for state in nfa.states:
        ta.add_state(state)
    ta.initial = set(nfa.initial)
    ta.final = set(nfa.final)
    for src, symbol, dst in nfa.iter_transitions():
        if symbol is EPSILON:
            raise ValueError("len_tag expects an epsilon-free NFA; remove epsilons first")
        ta.add_transition(src, {symbol_tag(symbol), length_tag(variable)}, dst, variable=variable)
    return ta


@dataclass
class ConcatInfo:
    """Book-keeping produced by :func:`eps_concat`.

    ``order`` is the variable order ≼ used for the concatenation, ``state_var``
    maps every state of ``A◦`` to the variable whose automaton it belongs to,
    and ``base_ids`` gives each non-ε transition of ``A◦`` a stable identifier.
    """

    order: Tuple[str, ...]
    state_var: Dict[State, str] = field(default_factory=dict)
    #: base transition id -> (variable, original src, symbol, original dst);
    #: identifies the NFA transition each A◦ transition copies, which lets two
    #: encodings built over the same variable NFAs be linked (EqualWords, §6.4)
    base_key: Dict[int, Tuple[str, State, Optional[str], State]] = field(default_factory=dict)


def eps_concat(parts: Sequence[Tuple[str, TagAutomaton]]) -> Tuple[TagAutomaton, ConcatInfo]:
    """ε-concatenate the given (variable, TA) pairs in order (§4).

    States are renumbered to be disjoint.  The returned :class:`ConcatInfo`
    records which variable every state belongs to; ε-connector transitions
    have an empty tag set, ``base_id=None`` and ``variable=None``.
    """
    result = TagAutomaton()
    info = ConcatInfo(order=tuple(name for name, _ in parts))
    offset = 0
    previous_finals: List[State] = []
    base_counter = 0
    for index, (name, part) in enumerate(parts):
        mapping = {state: offset + position for position, state in enumerate(sorted(part.states))}
        offset += len(part.states)
        for state in part.states:
            new_state = mapping[state]
            result.add_state(new_state)
            info.state_var[new_state] = name
        if index == 0:
            result.initial = {mapping[s] for s in part.initial}
        for transition in part.transitions:
            result.add_transition(
                mapping[transition.src],
                transition.tags,
                mapping[transition.dst],
                base_id=base_counter,
                variable=name,
            )
            info.base_key[base_counter] = (name, transition.src, transition.symbol(), transition.dst)
            base_counter += 1
        if previous_finals:
            for final_state in previous_finals:
                for initial_state in (mapping[s] for s in part.initial):
                    result.add_transition(final_state, frozenset(), initial_state)
        previous_finals = [mapping[s] for s in part.final]
        if index == len(parts) - 1:
            result.final = set(previous_finals)
    if not parts:
        # Degenerate case: no variables at all; single accepting state.
        state = result.add_state()
        result.initial = {state}
        result.final = {state}
    return result, info


def concat_for_variables(
    automata: Dict[str, Nfa], variables: Sequence[str]
) -> Tuple[TagAutomaton, ConcatInfo]:
    """Build ``A◦`` for the given variables: ε-concatenation of their LenTag TAs.

    ``variables`` fixes the linear order ≼; duplicates are ignored (every
    variable contributes exactly one copy of its automaton).
    """
    seen: List[str] = []
    for name in variables:
        if name not in seen:
            seen.append(name)
    parts = [(name, len_tag(automata[name], name)) for name in seen]
    return eps_concat(parts)
