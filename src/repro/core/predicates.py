"""Internal representation of position constraints (the ``P`` part of §2).

The string-constraint frontend (:mod:`repro.strings`) lowers its AST into
these light-weight dataclasses; the encoders of :mod:`repro.core` consume
them.  Sides of predicates are tuples of *string-variable occurrences* (a
variable may repeat).  ``index`` arguments of ``str.at`` predicates are LIA
expressions over integer variables (so the frontend can pass e.g.
``i + 1`` or a constant).

Every predicate knows how to evaluate itself on a concrete assignment
(mapping string variables to words, integer variables to ints); this direct
semantics is the oracle used throughout the test suite.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Tuple, Union

from ..lia import LinExpr

IntLike = Union[int, LinExpr]


def _as_index_expr(value: IntLike) -> LinExpr:
    if isinstance(value, LinExpr):
        return value
    return LinExpr.constant(int(value))


def _concat(side: Tuple[str, ...], assignment: Mapping[str, str]) -> str:
    return "".join(assignment[name] for name in side)


def _eval_index(expr: LinExpr, assignment: Mapping[str, int]) -> int:
    return int(expr.evaluate({name: assignment.get(name, 0) for name in expr.variables()}))


@dataclass(frozen=True)
class Disequality:
    """``lhs ≠ rhs`` for concatenations of variables (§5)."""

    lhs: Tuple[str, ...]
    rhs: Tuple[str, ...]

    def string_variables(self) -> Tuple[str, ...]:
        return tuple(dict.fromkeys(self.lhs + self.rhs))

    def holds(self, strings: Mapping[str, str], integers: Mapping[str, int] = None) -> bool:
        return _concat(self.lhs, strings) != _concat(self.rhs, strings)

    def needs_mismatch(self) -> bool:
        return True


@dataclass(frozen=True)
class NotPrefixOf:
    """``¬prefixof(lhs, rhs)`` — ``lhs`` is not a prefix of ``rhs`` (§6.2)."""

    lhs: Tuple[str, ...]
    rhs: Tuple[str, ...]

    def string_variables(self) -> Tuple[str, ...]:
        return tuple(dict.fromkeys(self.lhs + self.rhs))

    def holds(self, strings: Mapping[str, str], integers: Mapping[str, int] = None) -> bool:
        return not _concat(self.rhs, strings).startswith(_concat(self.lhs, strings))

    def needs_mismatch(self) -> bool:
        return True


@dataclass(frozen=True)
class NotSuffixOf:
    """``¬suffixof(lhs, rhs)`` — ``lhs`` is not a suffix of ``rhs`` (§6.2)."""

    lhs: Tuple[str, ...]
    rhs: Tuple[str, ...]

    def string_variables(self) -> Tuple[str, ...]:
        return tuple(dict.fromkeys(self.lhs + self.rhs))

    def holds(self, strings: Mapping[str, str], integers: Mapping[str, int] = None) -> bool:
        return not _concat(self.rhs, strings).endswith(_concat(self.lhs, strings))

    def needs_mismatch(self) -> bool:
        return True


@dataclass(frozen=True)
class StrAt:
    """``target = str.at(haystack, index)`` or its negation (§6.3).

    Semantics follow Fig. 1 of the paper: when the index is within bounds the
    right-hand side is the one-character string at that position, otherwise
    it is the empty word.
    """

    target: str
    haystack: Tuple[str, ...]
    index: LinExpr
    negated: bool = False

    def __init__(self, target: str, haystack: Tuple[str, ...], index: IntLike, negated: bool = False):
        object.__setattr__(self, "target", target)
        object.__setattr__(self, "haystack", tuple(haystack))
        object.__setattr__(self, "index", _as_index_expr(index))
        object.__setattr__(self, "negated", negated)

    def string_variables(self) -> Tuple[str, ...]:
        return tuple(dict.fromkeys((self.target,) + self.haystack))

    def integer_variables(self) -> Tuple[str, ...]:
        return self.index.variables()

    def holds(self, strings: Mapping[str, str], integers: Mapping[str, int] = None) -> bool:
        integers = integers or {}
        word = _concat(self.haystack, strings)
        position = _eval_index(self.index, integers)
        if 0 <= position < len(word):
            expected = word[position]
        else:
            expected = ""
        equal = strings[self.target] == expected
        return (not equal) if self.negated else equal

    def needs_mismatch(self) -> bool:
        return True


@dataclass(frozen=True)
class NotContains:
    """``¬contains(needle, haystack)`` — the needle does not occur in the haystack (§6.4)."""

    needle: Tuple[str, ...]
    haystack: Tuple[str, ...]

    def string_variables(self) -> Tuple[str, ...]:
        return tuple(dict.fromkeys(self.needle + self.haystack))

    def holds(self, strings: Mapping[str, str], integers: Mapping[str, int] = None) -> bool:
        return _concat(self.needle, strings) not in _concat(self.haystack, strings)

    def needs_mismatch(self) -> bool:
        return True


@dataclass(frozen=True)
class LengthEquality:
    """``x_i = len(y_1 ... y_m)`` linking an integer variable to string lengths (§6.1)."""

    int_var: str
    parts: Tuple[str, ...]

    def string_variables(self) -> Tuple[str, ...]:
        return tuple(dict.fromkeys(self.parts))

    def integer_variables(self) -> Tuple[str, ...]:
        return (self.int_var,)

    def holds(self, strings: Mapping[str, str], integers: Mapping[str, int] = None) -> bool:
        integers = integers or {}
        return integers.get(self.int_var, 0) == len(_concat(self.parts, strings))

    def needs_mismatch(self) -> bool:
        return False


#: Union type of all position predicates.
PositionPredicate = Union[Disequality, NotPrefixOf, NotSuffixOf, StrAt, NotContains, LengthEquality]

#: Predicates that require mismatch sampling in the tag automaton.
MISMATCH_PREDICATES = (Disequality, NotPrefixOf, NotSuffixOf, StrAt, NotContains)


def predicate_variables(predicates) -> Tuple[str, ...]:
    """All string variables occurring in a collection of predicates (stable order)."""
    seen: Dict[str, None] = {}
    for predicate in predicates:
        for name in predicate.string_variables():
            seen.setdefault(name, None)
    return tuple(seen)


def evaluate_all(predicates, strings: Mapping[str, str], integers: Mapping[str, int] = None) -> bool:
    """Evaluate a conjunction of predicates on a concrete assignment."""
    return all(predicate.holds(strings, integers) for predicate in predicates)
