"""Tags attached to tag-automaton transitions (§4 of the paper).

A tag is an immutable, hashable token.  The constructions of §5–§6 use the
following kinds:

==================  =============================================  =========
kind                meaning                                        args
==================  =============================================  =========
``S``               symbol read by the transition                  (symbol,)
``L``               contributes to the length of a variable        (var,)
``P``               position counter of a variable at a level      (var, level)
``M``               single-predicate mismatch sample               (var, order, symbol)
``MD``              system mismatch sample ⟨M_i, x, D, s, a⟩       (level, var, pred, side, symbol)
``CD``              system copy tag ⟨C_i, x, D, s⟩                 (level, var, pred, side)
==================  =============================================  =========

``order`` for the ``M`` kind is 1 or 2 (first/second mismatch of §5.1–5.2);
``level`` for the system tags ranges over the copies of the automaton; sides
are the strings ``"L"`` and ``"R"``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple


@dataclass(frozen=True)
class Tag:
    """A single transition tag; ``kind`` plus a tuple of arguments."""

    kind: str
    args: Tuple

    def __repr__(self) -> str:
        return f"<{self.kind}," + ",".join(str(a) for a in self.args) + ">"

    def var_name(self, prefix: str = "") -> str:
        """Return the LIA variable name counting occurrences of this tag."""
        payload = ".".join(str(a) for a in self.args)
        return f"{prefix}#{self.kind}[{payload}]"


# ----------------------------------------------------------------------
# Constructors for the tag kinds used in the paper
# ----------------------------------------------------------------------
def symbol_tag(symbol: str) -> Tag:
    """⟨S, a⟩ — the transition reads symbol ``a``."""
    return Tag("S", (symbol,))


def length_tag(variable: str) -> Tag:
    """⟨L, x⟩ — the transition contributes one position to ``len(x)``."""
    return Tag("L", (variable,))


def position_tag(variable: str, level: int) -> Tag:
    """⟨P_level, x⟩ — position counter of ``x`` at the given copy level."""
    return Tag("P", (variable, level))


def mismatch_tag(variable: str, order: int, symbol: str) -> Tag:
    """⟨M_order, a, x⟩ — the ``order``-th mismatch sampled symbol ``a`` in ``x``."""
    return Tag("M", (variable, order, symbol))


def system_mismatch_tag(level: int, variable: str, predicate: int, side: str, symbol: str) -> Tag:
    """⟨M_i, x, D, s, a⟩ — system construction mismatch sample (§5.3)."""
    return Tag("MD", (level, variable, predicate, side, symbol))


def system_copy_tag(level: int, variable: str, predicate: int, side: str) -> Tag:
    """⟨C_i, x, D, s⟩ — system construction copy tag (§5.3)."""
    return Tag("CD", (level, variable, predicate, side))


def is_symbol(tag: Tag) -> bool:
    return tag.kind == "S"


def is_length(tag: Tag) -> bool:
    return tag.kind == "L"


def symbol_of(tags) -> str:
    """Extract the symbol read by a transition from its tag set (or ``None``)."""
    for tag in tags:
        if tag.kind == "S":
            return tag.args[0]
    return None


def variable_of(tags) -> str:
    """Extract the variable a transition belongs to from its ⟨L, x⟩ tag."""
    for tag in tags:
        if tag.kind == "L":
            return tag.args[0]
    return None
