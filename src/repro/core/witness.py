"""Witness (string-model) reconstruction from Parikh models.

The equisatisfiability theorems of the paper are constructive: from a model
of the generated LIA formula one can read off an accepting run of the tag
automaton (the Parikh image determines a run up to reordering that does not
affect lengths, mismatch positions or sampled symbols), and the run encodes
an assignment of every string variable to a word of its language.

This module performs that reconstruction.  It is used for two purposes:

* the public solver returns concrete string models for satisfiable inputs,
* the test-suite validates every SAT answer by re-evaluating the original
  constraint on the reconstructed assignment.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from .parikh import ParikhEncoding, run_from_model
from .tag_automaton import TagTransition
from .tags import symbol_of, variable_of


def assignment_from_run(run: List[TagTransition]) -> Dict[str, str]:
    """Extract the word assigned to every variable from an accepting run.

    A transition contributes the symbol of its ⟨S, a⟩ tag to the variable of
    its ⟨L, x⟩ tag; structural transitions (ε-connectors, copy tags) carry
    neither and are skipped.
    """
    words: Dict[str, List[str]] = {}
    for transition in run:
        symbol = symbol_of(transition.tags)
        variable = variable_of(transition.tags)
        if symbol is None or variable is None:
            continue
        words.setdefault(variable, []).append(symbol)
    return {variable: "".join(chars) for variable, chars in words.items()}


def extract_assignment(enc: ParikhEncoding, model, variables: Optional[List[str]] = None) -> Optional[Dict[str, str]]:
    """Reconstruct the string assignment encoded by a Parikh model.

    ``variables`` lists the string variables that must appear in the result;
    variables whose automaton contributed no transition to the run (i.e. were
    assigned the empty word) are filled in with ``""``.
    """
    run = run_from_model(enc, model)
    if run is None:
        return None
    assignment = assignment_from_run(run)
    for name in variables or []:
        assignment.setdefault(name, "")
    return assignment
