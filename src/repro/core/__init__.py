"""The paper's decision procedure for position constraints.

Layout (section numbers refer to the paper):

* :mod:`repro.core.tags`, :mod:`repro.core.tag_automaton`,
  :mod:`repro.core.parikh` — tag automata and Parikh (tag) formulae (§4),
* :mod:`repro.core.predicates` — the position-constraint representation,
* :mod:`repro.core.single` — single-predicate encodings (§5.1–5.2, §6.2–6.3),
* :mod:`repro.core.system` — systems of predicates (§5.3, §6.5, App. C),
* :mod:`repro.core.notcontains` — the ¬contains procedure for flat
  languages (§6.4),
* :mod:`repro.core.witness` — model reconstruction from Parikh images,
* :mod:`repro.core.one_counter` — the PTime procedure for a single
  disequality (§7, App. B).
"""

from .predicates import (
    Disequality,
    LengthEquality,
    NotContains,
    NotPrefixOf,
    NotSuffixOf,
    PositionPredicate,
    StrAt,
    evaluate_all,
    predicate_variables,
)
from .single import SingleEncoding, encode_single
from .system import SystemEncoding, encode_system
from .notcontains import NotContainsEncoder, find_failing_offset
from .witness import extract_assignment

__all__ = [
    "Disequality",
    "NotPrefixOf",
    "NotSuffixOf",
    "StrAt",
    "NotContains",
    "LengthEquality",
    "PositionPredicate",
    "predicate_variables",
    "evaluate_all",
    "SingleEncoding",
    "encode_single",
    "SystemEncoding",
    "encode_system",
    "NotContainsEncoder",
    "find_failing_offset",
    "extract_assignment",
]
