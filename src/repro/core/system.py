"""Encoding of *systems* of position constraints (§5.3, §6.5, Appendix C).

A system of ``K`` mismatch-requiring predicates (disequalities, ¬prefixof,
¬suffixof, str.at, ¬str.at) is encoded with one tag automaton ``A^III`` made
of ``2K + 1`` copies of the ε-concatenation ``A◦``.  Every level change
either *samples* a mismatch symbol for a predicate/side (tag
⟨M_i, x, D, s, a⟩ on a regular transition of variable ``x``) or declares that
a predicate/side *shares* the symbol sampled at the previous level (copy tag
⟨C_i, x, D, s⟩ on a stuttering transition).  Auxiliary integer variables
``m_{D,s}`` (sampled symbol, as an integer code), ``c_i`` (symbol sampled at
level ``i``) and ``p_{D,s}`` (local position of the sample inside its
variable) connect the Parikh counters with the per-predicate satisfaction
conditions.

Length equalities (§6.1) ride along on the same automaton — they only read
the ⟨L, x⟩ counters and need no mismatch machinery.

Two documented deviations from the paper (believed typos, validated against
the brute-force oracle in the test-suite):

* the position of a *copied* sample is ``Σ_{l'≤l} #P_{l'}(x) − 1`` (the
  ``−1`` compensates for the ⟨P_l, x⟩ tag carried by the originating
  mismatch transition; eq. (42) omits it),
* ¬suffixof alignment uses suffix occurrence sums (see
  :mod:`repro.core.single`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..automata.nfa import Nfa
from ..lia import Formula, LinExpr, conj, disj, eq, ge, gt, implies, le, lt, ne, var
from . import parikh
from .predicates import (
    Disequality,
    LengthEquality,
    NotPrefixOf,
    NotSuffixOf,
    PositionPredicate,
    StrAt,
)
from .tag_automaton import ConcatInfo, TagAutomaton, concat_for_variables
from .tags import (
    length_tag,
    position_tag,
    symbol_tag,
    system_copy_tag,
    system_mismatch_tag,
)

SIDES = ("L", "R")


@dataclass
class SystemEncoding:
    """Result of encoding a system of position predicates."""

    formula: Formula
    parikh: parikh.ParikhEncoding
    automaton: TagAutomaton
    info: ConcatInfo
    variable_order: Tuple[str, ...]
    num_mismatch_predicates: int
    symbol_codes: Dict[str, int]

    def length_of(self, variable: str) -> LinExpr:
        """LIA expression for ``len(variable)``."""
        return self.parikh.tag_count(length_tag(variable))


# ----------------------------------------------------------------------
# Tag automaton A^III
# ----------------------------------------------------------------------
def build_system_automaton(
    automata: Dict[str, Nfa],
    variables: Sequence[str],
    num_predicates: int,
) -> Tuple[TagAutomaton, ConcatInfo]:
    """Construct ``A^III`` with ``2*num_predicates + 1`` copies of ``A◦`` (§5.3)."""
    base, info = concat_for_variables(automata, variables)
    levels = 2 * num_predicates + 1
    offset = max(base.states, default=-1) + 1

    result = TagAutomaton()

    def copy_state(state: int, level: int) -> int:
        return state + (level - 1) * offset

    for level in range(1, levels + 1):
        for state in base.states:
            result.add_state(copy_state(state, level))
    result.initial = {copy_state(state, 1) for state in base.initial}
    result.final = {
        copy_state(state, level)
        for state in base.final
        for level in range(1, levels + 1, 2)
    }

    predicates = range(1, num_predicates + 1)

    for transition in base.transitions:
        src, dst = transition.src, transition.dst
        variable = transition.variable
        symbol = transition.symbol()
        if symbol is None:
            for level in range(1, levels + 1):
                result.add_transition(
                    copy_state(src, level), frozenset(), copy_state(dst, level), base_id=transition.base_id
                )
            continue
        sym = symbol_tag(symbol)
        length = length_tag(variable)
        for level in range(1, levels + 1):
            result.add_transition(
                copy_state(src, level),
                {sym, length, position_tag(variable, level)},
                copy_state(dst, level),
                base_id=transition.base_id,
                variable=variable,
            )
        # Mismatch guesses: one per (level, predicate, side).
        for level in range(1, levels):
            for predicate in predicates:
                for side in SIDES:
                    result.add_transition(
                        copy_state(src, level),
                        {
                            sym,
                            length,
                            position_tag(variable, level + 1),
                            system_mismatch_tag(level, variable, predicate, side, symbol),
                        },
                        copy_state(dst, level + 1),
                        base_id=transition.base_id,
                        variable=variable,
                    )

    # Copy (sharing) transitions: stutter on the A◦ state, move up one level.
    for state in base.states:
        variable = info.state_var.get(state)
        if variable is None:
            continue
        for level in range(2, levels):
            for predicate in predicates:
                for side in SIDES:
                    result.add_transition(
                        copy_state(state, level),
                        {system_copy_tag(level, variable, predicate, side)},
                        copy_state(state, level + 1),
                        variable=variable,
                    )
    return result, info


# ----------------------------------------------------------------------
# Formula construction
# ----------------------------------------------------------------------
class _SystemContext:
    """Shared state while building the system formula."""

    def __init__(
        self,
        enc: parikh.ParikhEncoding,
        info: ConcatInfo,
        alphabet: Sequence[str],
        num_predicates: int,
        prefix: str,
    ) -> None:
        self.enc = enc
        self.info = info
        self.alphabet = tuple(alphabet)
        self.num_predicates = num_predicates
        self.levels = 2 * num_predicates + 1
        self.prefix = prefix
        self.symbol_codes = {symbol: index + 1 for index, symbol in enumerate(self.alphabet)}

    # -- auxiliary integer variables ------------------------------------
    def mismatch_symbol(self, predicate: int, side: str) -> LinExpr:
        return var(f"{self.prefix}$m[{predicate}.{side}]")

    def level_symbol(self, level: int) -> LinExpr:
        return var(f"{self.prefix}$c[{level}]")

    def mismatch_position(self, predicate: int, side: str) -> LinExpr:
        return var(f"{self.prefix}$p[{predicate}.{side}]")

    # -- tag counters -----------------------------------------------------
    def length(self, variable: str) -> LinExpr:
        return self.enc.tag_count(length_tag(variable))

    def side_length(self, side: Sequence[str]) -> LinExpr:
        return LinExpr.sum_of(self.length(name) for name in side)

    def occurrence_prefix(self, side: Sequence[str], index: int) -> LinExpr:
        return LinExpr.sum_of(self.length(side[u]) for u in range(index - 1))

    def occurrence_suffix(self, side: Sequence[str], index: int) -> LinExpr:
        return LinExpr.sum_of(self.length(side[u]) for u in range(index, len(side)))

    def mismatch_count(self, level: int, variable: str, predicate: int, side: str) -> LinExpr:
        return LinExpr.sum_of(
            self.enc.tag_count(system_mismatch_tag(level, variable, predicate, side, a))
            for a in self.alphabet
        )

    def copy_count(self, level: int, variable: str, predicate: int, side: str) -> LinExpr:
        return self.enc.tag_count(system_copy_tag(level, variable, predicate, side))

    def position_prefix_sum(self, variable: str, level: int) -> LinExpr:
        return LinExpr.sum_of(
            self.enc.tag_count(position_tag(variable, l)) for l in range(1, level + 1)
        )

    # -- structural subformulae (§5.3, Appendix C) ------------------------
    def fairness(self) -> Formula:
        """φ_Fair (eq. 17): at most one sample per predicate side."""
        parts: List[Formula] = []
        for predicate in range(1, self.num_predicates + 1):
            for side in SIDES:
                total = LinExpr.sum_of(
                    [
                        self.mismatch_count(level, variable, predicate, side)
                        for level in range(1, self.levels)
                        for variable in self.info.order
                    ]
                    + [
                        self.copy_count(level, variable, predicate, side)
                        for level in range(2, self.levels)
                        for variable in self.info.order
                    ]
                )
                parts.append(le(total, 1))
        return conj(parts)

    def consistency(self) -> Formula:
        """φ_Consistent (eq. 18): auxiliary symbol variables match the samples."""
        parts: List[Formula] = []
        for predicate in range(1, self.num_predicates + 1):
            for side in SIDES:
                target = self.mismatch_symbol(predicate, side)
                for level in range(1, self.levels):
                    for symbol in self.alphabet:
                        sampled = LinExpr.sum_of(
                            self.enc.tag_count(system_mismatch_tag(level, variable, predicate, side, symbol))
                            for variable in self.info.order
                        )
                        code = self.symbol_codes[symbol]
                        parts.append(
                            implies(
                                ge(sampled, 1),
                                conj([eq(self.level_symbol(level), code), eq(target, code)]),
                            )
                        )
                for level in range(2, self.levels):
                    copied = LinExpr.sum_of(
                        self.copy_count(level, variable, predicate, side) for variable in self.info.order
                    )
                    parts.append(
                        implies(
                            ge(copied, 1),
                            conj(
                                [
                                    eq(self.level_symbol(level), self.level_symbol(level - 1)),
                                    eq(target, self.level_symbol(level - 1)),
                                ]
                            ),
                        )
                    )
        return conj(parts)

    def copy_wellformedness(self) -> Formula:
        """φ_Copies (eq. 19): copy tags follow a sample of the same variable immediately."""
        parts: List[Formula] = []
        for variable in self.info.order:
            for level in range(1, self.levels - 1):
                sampled_here = LinExpr.sum_of(
                    [
                        self.mismatch_count(level, variable, predicate, side)
                        for predicate in range(1, self.num_predicates + 1)
                        for side in SIDES
                    ]
                    + (
                        [
                            self.copy_count(level, variable, predicate, side)
                            for predicate in range(1, self.num_predicates + 1)
                            for side in SIDES
                        ]
                        if level >= 2
                        else []
                    )
                )
                copied_next = LinExpr.sum_of(
                    self.copy_count(level + 1, variable, predicate, side)
                    for predicate in range(1, self.num_predicates + 1)
                    for side in SIDES
                )
                parts.append(implies(eq(sampled_here, 0), eq(copied_next, 0)))
            for level in range(2, self.levels):
                copied = LinExpr.sum_of(
                    self.copy_count(level, variable, predicate, side)
                    for predicate in range(1, self.num_predicates + 1)
                    for side in SIDES
                )
                previous_mismatches = LinExpr.sum_of(
                    self.mismatch_count(level - 1, variable, predicate, side)
                    for predicate in range(1, self.num_predicates + 1)
                    for side in SIDES
                )
                parts.append(
                    implies(
                        ge(copied, 1),
                        eq(self.enc.tag_count(position_tag(variable, level)) - previous_mismatches, 0),
                    )
                )
        return conj(parts)

    # -- per-predicate helpers --------------------------------------------
    def sample_exists(self, predicate: int, side: str, variable: str) -> Formula:
        """φ_∃ (eq. 44): the sample for (predicate, side) lives in ``variable``."""
        total = LinExpr.sum_of(
            [self.mismatch_count(level, variable, predicate, side) for level in range(1, self.levels)]
            + [self.copy_count(level, variable, predicate, side) for level in range(2, self.levels)]
        )
        return ge(total, 1)

    def position_definition(self, predicate: int, side: str, variable: str) -> Formula:
        """φ_Pos (eq. 42, corrected): bind p_{D,s} to the local sample position."""
        target = self.mismatch_position(predicate, side)
        parts: List[Formula] = []
        for level in range(1, self.levels):
            parts.append(
                implies(
                    ge(self.mismatch_count(level, variable, predicate, side), 1),
                    eq(target, self.position_prefix_sum(variable, level)),
                )
            )
        for level in range(2, self.levels):
            parts.append(
                implies(
                    ge(self.copy_count(level, variable, predicate, side), 1),
                    eq(target, self.position_prefix_sum(variable, level) - 1),
                )
            )
        return conj(parts)

    def align_from_start(
        self, predicate: int, lhs: Sequence[str], rhs: Sequence[str], i: int, j: int
    ) -> Formula:
        """φ_Align (eq. 43): equal global positions measured from the start."""
        return eq(
            self.occurrence_prefix(lhs, i) + self.mismatch_position(predicate, "L"),
            self.occurrence_prefix(rhs, j) + self.mismatch_position(predicate, "R"),
        )

    def align_from_end(
        self, predicate: int, lhs: Sequence[str], rhs: Sequence[str], i: int, j: int
    ) -> Formula:
        """¬suffixof alignment: equal distances measured from the end."""
        lhs_var, rhs_var = lhs[i - 1], rhs[j - 1]
        lhs_distance = (
            self.occurrence_suffix(lhs, i) + self.length(lhs_var) - self.mismatch_position(predicate, "L")
        )
        rhs_distance = (
            self.occurrence_suffix(rhs, j) + self.length(rhs_var) - self.mismatch_position(predicate, "R")
        )
        return eq(lhs_distance, rhs_distance)

    def mismatch_disjunct(
        self,
        predicate: int,
        lhs: Sequence[str],
        rhs: Sequence[str],
        from_end: bool,
        symbols_equal: bool,
    ) -> Formula:
        """∨_{i,j} of per-occurrence mismatch conditions (eq. 45)."""
        align = self.align_from_end if from_end else self.align_from_start
        symbol_condition = (
            eq(self.mismatch_symbol(predicate, "L"), self.mismatch_symbol(predicate, "R"))
            if symbols_equal
            else ne(self.mismatch_symbol(predicate, "L"), self.mismatch_symbol(predicate, "R"))
        )
        options: List[Formula] = []
        for i in range(1, len(lhs) + 1):
            for j in range(1, len(rhs) + 1):
                options.append(
                    conj(
                        [
                            self.position_definition(predicate, "L", lhs[i - 1]),
                            self.position_definition(predicate, "R", rhs[j - 1]),
                            self.sample_exists(predicate, "L", lhs[i - 1]),
                            self.sample_exists(predicate, "R", rhs[j - 1]),
                            align(predicate, lhs, rhs, i, j),
                            symbol_condition,
                        ]
                    )
                )
        return disj(options)


def _predicate_satisfaction(ctx: _SystemContext, predicate_index: int, predicate) -> Formula:
    """φ^k_Sat: the per-predicate satisfaction condition (§6.5)."""
    if isinstance(predicate, Disequality):
        length_differs = ne(ctx.side_length(predicate.lhs), ctx.side_length(predicate.rhs))
        return disj(
            [
                length_differs,
                ctx.mismatch_disjunct(predicate_index, predicate.lhs, predicate.rhs, False, False),
            ]
        )
    if isinstance(predicate, NotPrefixOf):
        longer = gt(ctx.side_length(predicate.lhs), ctx.side_length(predicate.rhs))
        return disj(
            [
                longer,
                ctx.mismatch_disjunct(predicate_index, predicate.lhs, predicate.rhs, False, False),
            ]
        )
    if isinstance(predicate, NotSuffixOf):
        longer = gt(ctx.side_length(predicate.lhs), ctx.side_length(predicate.rhs))
        return disj(
            [
                longer,
                ctx.mismatch_disjunct(predicate_index, predicate.lhs, predicate.rhs, True, False),
            ]
        )
    if isinstance(predicate, StrAt):
        return _str_at_satisfaction(ctx, predicate_index, predicate)
    raise TypeError(f"unsupported predicate in system encoding: {predicate!r}")


def _str_at_satisfaction(ctx: _SystemContext, predicate_index: int, predicate: StrAt) -> Formula:
    """str.at / ¬str.at within a system (§6.3 adapted to the m_{D,s} variables)."""
    target_length = ctx.length(predicate.target)
    haystack_length = ctx.side_length(predicate.haystack)
    index = predicate.index
    in_bounds = conj([ge(index, 0), lt(index, haystack_length)])
    out_of_bounds = disj([lt(index, 0), ge(index, haystack_length)])

    options: List[Formula] = []
    for j in range(1, len(predicate.haystack) + 1):
        y = predicate.haystack[j - 1]
        options.append(
            conj(
                [
                    ctx.position_definition(predicate_index, "R", y),
                    ctx.sample_exists(predicate_index, "L", predicate.target),
                    ctx.sample_exists(predicate_index, "R", y),
                    eq(index, ctx.occurrence_prefix(predicate.haystack, j) + ctx.mismatch_position(predicate_index, "R")),
                    (
                        ne(ctx.mismatch_symbol(predicate_index, "L"), ctx.mismatch_symbol(predicate_index, "R"))
                        if predicate.negated
                        else eq(ctx.mismatch_symbol(predicate_index, "L"), ctx.mismatch_symbol(predicate_index, "R"))
                    ),
                ]
            )
        )
    sampled = disj(options)

    if predicate.negated:
        return disj(
            [
                conj([gt(target_length, 0), out_of_bounds]),
                gt(target_length, 1),
                conj([eq(target_length, 0), in_bounds]),
                conj([eq(target_length, 1), in_bounds, sampled]),
            ]
        )
    return disj(
        [
            conj([eq(target_length, 0), out_of_bounds]),
            conj([eq(target_length, 1), in_bounds, sampled]),
        ]
    )


def encode_system(
    predicates: Sequence[PositionPredicate],
    automata: Dict[str, Nfa],
    prefix: str = "",
    extra_variables: Sequence[str] = (),
) -> SystemEncoding:
    """Encode a conjunction of position predicates over shared variables.

    ``predicates`` may mix disequalities, ¬prefixof, ¬suffixof, str.at,
    ¬str.at and length equalities; ¬contains is handled separately
    (:mod:`repro.core.notcontains`).  ``extra_variables`` forces additional
    variables into the underlying ε-concatenation (so that their ⟨L, x⟩
    counters exist for surrounding length constraints).
    """
    mismatch_predicates = [p for p in predicates if not isinstance(p, LengthEquality)]
    length_predicates = [p for p in predicates if isinstance(p, LengthEquality)]

    variables: List[str] = []
    for predicate in predicates:
        for name in predicate.string_variables():
            if name not in variables:
                variables.append(name)
    for name in extra_variables:
        if name not in variables:
            variables.append(name)

    num_predicates = len(mismatch_predicates)
    automaton, info = build_system_automaton(automata, variables, num_predicates)
    enc = parikh.encode(automaton, prefix=prefix)

    alphabet = sorted({symbol for name in variables for symbol in automata[name].alphabet})
    ctx = _SystemContext(enc, info, alphabet, num_predicates, prefix)

    parts: List[Formula] = [enc.formula]
    if num_predicates:
        parts.append(ctx.fairness())
        parts.append(ctx.consistency())
        parts.append(ctx.copy_wellformedness())
    for index, predicate in enumerate(mismatch_predicates, start=1):
        parts.append(_predicate_satisfaction(ctx, index, predicate))
    for predicate in length_predicates:
        parts.append(eq(var(predicate.int_var), LinExpr.sum_of(ctx.length(p) for p in predicate.parts)))

    return SystemEncoding(
        formula=conj(parts),
        parikh=enc,
        automaton=automaton,
        info=info,
        variable_order=info.order,
        num_mismatch_predicates=num_predicates,
        symbol_codes=ctx.symbol_codes,
    )
