"""Encodings for a *single* existential position constraint (§5.1, §5.2, §6.2, §6.3).

The shared machinery is the three-copy tag automaton ``A^II`` of §5.2: the
ε-concatenation ``A◦`` of the variable automata is copied three times; the
transition from copy 1 to copy 2 samples the first mismatch symbol (tag
⟨M1, a, x⟩) and the transition from copy 2 to copy 3 samples the second
(⟨M2, a, x⟩).  Position tags ⟨P1/P2/P3, x⟩ count, per variable, how many of
its transitions were taken in each copy; length tags ⟨L, x⟩ count them in
total.

From the Parikh tag formula of ``A^II`` the functions below assemble the
per-predicate LIA formulae:

* :func:`encode_disequality` — eq. (15) (and the §5.1 special case),
* :func:`encode_not_prefixof` / :func:`encode_not_suffixof` — §6.2,
* :func:`encode_str_at` — §6.3 (both the positive and the negated form).

Two deliberate deviations from the paper's presentation are documented in
the code below (they fix what we believe are typos):

1. the ¬suffixof position condition uses *suffix* sums of the preceding
   occurrences (distance to the end of the respective side), and
2. the ¬str.at case split includes the missing case ``len(x_s) = 0`` with an
   in-bounds index (the empty string never equals a one-character string).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..automata.nfa import Nfa
from ..lia import Formula, LinExpr, conj, disj, eq, ge, gt, le, lt, ne
from . import parikh
from .predicates import Disequality, NotPrefixOf, NotSuffixOf, StrAt
from .tag_automaton import ConcatInfo, TagAutomaton, concat_for_variables
from .tags import Tag, length_tag, mismatch_tag, position_tag, symbol_tag


@dataclass
class SingleEncoding:
    """Result of encoding one position predicate.

    ``formula`` is equisatisfiable (together with the surrounding integer
    constraints) to the predicate under the regular membership constraints;
    ``parikh`` gives access to the tag counters (e.g. for adding length
    constraints), and ``variable_order`` is the order ≼ of the concatenation.
    """

    formula: Formula
    parikh: parikh.ParikhEncoding
    automaton: TagAutomaton
    info: ConcatInfo
    variable_order: Tuple[str, ...]

    def length_of(self, variable: str) -> LinExpr:
        """LIA expression for ``len(variable)`` (the ⟨L, x⟩ counter)."""
        return self.parikh.tag_count(length_tag(variable))


# ----------------------------------------------------------------------
# Tag-automaton construction (A^II)
# ----------------------------------------------------------------------
def build_mismatch_automaton(
    automata: Dict[str, Nfa], variables: Sequence[str]
) -> Tuple[TagAutomaton, ConcatInfo]:
    """Construct ``A^II`` (§5.2) for the given variable order.

    The automaton has three copies of ``A◦``; accepting states are the final
    states of copies 1 (no mismatch — the predicate must then be satisfied
    through lengths) and 3 (both mismatch symbols sampled).
    """
    base, info = concat_for_variables(automata, variables)
    offset = max(base.states, default=-1) + 1

    result = TagAutomaton()

    def copy_state(state: int, level: int) -> int:
        return state + (level - 1) * offset

    for level in (1, 2, 3):
        for state in base.states:
            result.add_state(copy_state(state, level))
    result.initial = {copy_state(state, 1) for state in base.initial}
    result.final = {copy_state(state, 1) for state in base.final} | {
        copy_state(state, 3) for state in base.final
    }

    for transition in base.transitions:
        src, dst = transition.src, transition.dst
        variable = transition.variable
        symbol = transition.symbol()
        if symbol is None:
            # ε-connector between variable automata: replicate at each level.
            for level in (1, 2, 3):
                result.add_transition(
                    copy_state(src, level), frozenset(), copy_state(dst, level), base_id=transition.base_id
                )
            continue
        sym = symbol_tag(symbol)
        length = length_tag(variable)
        # Copy 1: before the first mismatch.
        result.add_transition(
            copy_state(src, 1),
            {sym, length, position_tag(variable, 1)},
            copy_state(dst, 1),
            base_id=transition.base_id,
            variable=variable,
        )
        # The first mismatch: jump from copy 1 to copy 2 (tagged P2).
        result.add_transition(
            copy_state(src, 1),
            {sym, length, position_tag(variable, 2), mismatch_tag(variable, 1, symbol)},
            copy_state(dst, 2),
            base_id=transition.base_id,
            variable=variable,
        )
        # Copy 2: between the two mismatches.
        result.add_transition(
            copy_state(src, 2),
            {sym, length, position_tag(variable, 2)},
            copy_state(dst, 2),
            base_id=transition.base_id,
            variable=variable,
        )
        # The second mismatch: jump from copy 2 to copy 3 (tagged P3).
        result.add_transition(
            copy_state(src, 2),
            {sym, length, position_tag(variable, 3), mismatch_tag(variable, 2, symbol)},
            copy_state(dst, 3),
            base_id=transition.base_id,
            variable=variable,
        )
        # Copy 3: after the second mismatch.
        result.add_transition(
            copy_state(src, 3),
            {sym, length, position_tag(variable, 3)},
            copy_state(dst, 3),
            base_id=transition.base_id,
            variable=variable,
        )
    return result, info


# ----------------------------------------------------------------------
# Formula building blocks
# ----------------------------------------------------------------------
def _alphabet_of(automata: Dict[str, Nfa], variables: Iterable[str]) -> Tuple[str, ...]:
    symbols = set()
    for name in variables:
        symbols |= automata[name].alphabet
    return tuple(sorted(symbols))


def _occurrence_prefix(enc: parikh.ParikhEncoding, side: Sequence[str], index: int) -> LinExpr:
    """Σ_{u < index} #⟨L, side[u]⟩ — lengths of occurrences preceding ``index`` (1-based)."""
    return LinExpr.sum_of(enc.tag_count(length_tag(side[u])) for u in range(index - 1))


def _occurrence_suffix(enc: parikh.ParikhEncoding, side: Sequence[str], index: int) -> LinExpr:
    """Σ_{u > index} #⟨L, side[u]⟩ — lengths of occurrences following ``index`` (1-based)."""
    return LinExpr.sum_of(enc.tag_count(length_tag(side[u])) for u in range(index, len(side)))


def _side_length(enc: parikh.ParikhEncoding, side: Sequence[str]) -> LinExpr:
    """Total length of a side (occurrences counted with multiplicity)."""
    return LinExpr.sum_of(enc.tag_count(length_tag(name)) for name in side)


def _mismatch_count(enc: parikh.ParikhEncoding, variable: str, order: int, alphabet: Sequence[str]) -> LinExpr:
    """Σ_a #⟨M_order, variable, a⟩."""
    return LinExpr.sum_of(enc.tag_count(mismatch_tag(variable, order, a)) for a in alphabet)


def _symbols_differ(enc: parikh.ParikhEncoding, variables: Sequence[str], alphabet: Sequence[str]) -> Formula:
    """φ_sym (eq. 8): the two sampled symbols are different."""
    parts = []
    for a in alphabet:
        total = LinExpr.sum_of(
            enc.tag_count(mismatch_tag(x, order, a)) for x in variables for order in (1, 2)
        )
        parts.append(lt(total, 2))
    return conj(parts)


def _symbols_equal(enc: parikh.ParikhEncoding, variables: Sequence[str], alphabet: Sequence[str]) -> Formula:
    """φ'_sym (§6.3): the two sampled symbols are the same."""
    parts = []
    for a in alphabet:
        total = LinExpr.sum_of(
            enc.tag_count(mismatch_tag(x, order, a)) for x in variables for order in (1, 2)
        )
        parts.append(ne(total, 1))
    return conj(parts)


def _order_index(info: ConcatInfo, variable: str) -> int:
    return info.order.index(variable)


def _position_formula_prefix(
    enc: parikh.ParikhEncoding,
    info: ConcatInfo,
    lhs: Sequence[str],
    rhs: Sequence[str],
    i: int,
    j: int,
) -> Formula:
    """φ_pos(i, j) (eqs. 9–11): equal global mismatch positions from the start."""
    x, y = lhs[i - 1], rhs[j - 1]
    lhs_prefix = _occurrence_prefix(enc, lhs, i)
    rhs_prefix = _occurrence_prefix(enc, rhs, j)
    p1x = enc.tag_count(position_tag(x, 1))
    p2x = enc.tag_count(position_tag(x, 2))
    p1y = enc.tag_count(position_tag(y, 1))
    p2y = enc.tag_count(position_tag(y, 2))
    if x != y:
        if _order_index(info, x) < _order_index(info, y):
            return eq(p1x + lhs_prefix, p2y + rhs_prefix)
        return eq(p2x + lhs_prefix, p1y + rhs_prefix)
    # Occurrences of the same variable: either side may hold the first mismatch.
    return disj(
        [
            eq(p1x + lhs_prefix, p1x + p2x + rhs_prefix),
            eq(p1x + p2x + lhs_prefix, p1x + rhs_prefix),
        ]
    )


def _position_formula_suffix(
    enc: parikh.ParikhEncoding,
    info: ConcatInfo,
    lhs: Sequence[str],
    rhs: Sequence[str],
    i: int,
    j: int,
) -> Formula:
    """φ^NS_pos(i, j) (§6.2): equal mismatch distances from the *end*.

    Deviation from eq. (23)/(24) of the paper: the occurrence sums range over
    the occurrences *after* the mismatch occurrence (suffix sums), which is
    what "counting the mismatch position from the end of its arguments"
    requires; the paper's prefix sums appear to be a typo.
    """
    x, y = lhs[i - 1], rhs[j - 1]
    lhs_suffix = _occurrence_suffix(enc, lhs, i)
    rhs_suffix = _occurrence_suffix(enc, rhs, j)
    p2x = enc.tag_count(position_tag(x, 2))
    p3x = enc.tag_count(position_tag(x, 3))
    p2y = enc.tag_count(position_tag(y, 2))
    p3y = enc.tag_count(position_tag(y, 3))
    if x != y:
        if _order_index(info, x) < _order_index(info, y):
            return eq(p2x + p3x + lhs_suffix, p3y + rhs_suffix)
        return eq(p3x + lhs_suffix, p2y + p3y + rhs_suffix)
    return disj(
        [
            eq(p2x + p3x + lhs_suffix, p3x + rhs_suffix),
            eq(p3x + lhs_suffix, p2x + p3x + rhs_suffix),
        ]
    )


def _mismatch_exists(
    enc: parikh.ParikhEncoding,
    info: ConcatInfo,
    x: str,
    y: str,
    alphabet: Sequence[str],
) -> Formula:
    """Require that mismatches were sampled in the right variables (eqs. 12–13)."""
    if x == y or _order_index(info, x) <= _order_index(info, y):
        first, second = x, y
    else:
        first, second = y, x
    return conj(
        [
            gt(_mismatch_count(enc, first, 1, alphabet), 0),
            gt(_mismatch_count(enc, second, 2, alphabet), 0),
        ]
    )


def _mismatch_disjunction(
    enc: parikh.ParikhEncoding,
    info: ConcatInfo,
    lhs: Sequence[str],
    rhs: Sequence[str],
    alphabet: Sequence[str],
    from_end: bool,
) -> Formula:
    """φ_mis (eq. 14): some pair of occurrences holds the mismatch."""
    position_formula = _position_formula_suffix if from_end else _position_formula_prefix
    options: List[Formula] = []
    for i in range(1, len(lhs) + 1):
        for j in range(1, len(rhs) + 1):
            options.append(
                conj(
                    [
                        position_formula(enc, info, lhs, rhs, i, j),
                        _mismatch_exists(enc, info, lhs[i - 1], rhs[j - 1], alphabet),
                    ]
                )
            )
    return disj(options)


# ----------------------------------------------------------------------
# Public encoders
# ----------------------------------------------------------------------
def _prepare(
    automata: Dict[str, Nfa], variables: Sequence[str], prefix: str
) -> Tuple[TagAutomaton, ConcatInfo, parikh.ParikhEncoding]:
    automaton, info = build_mismatch_automaton(automata, variables)
    enc = parikh.encode(automaton, prefix=prefix)
    return automaton, info, enc


def encode_disequality(
    predicate: Disequality, automata: Dict[str, Nfa], prefix: str = "",
    extra_variables: Sequence[str] = (),
) -> SingleEncoding:
    """Encode ``lhs ≠ rhs`` (eq. 15; §5.1 is the special case of two variables)."""
    variables = _with_extras(predicate.string_variables(), extra_variables)
    automaton, info, enc = _prepare(automata, variables, prefix)
    alphabet = _alphabet_of(automata, variables)

    length_differs = ne(_side_length(enc, predicate.lhs), _side_length(enc, predicate.rhs))
    mismatch = conj(
        [
            _symbols_differ(enc, variables, alphabet),
            _mismatch_disjunction(enc, info, predicate.lhs, predicate.rhs, alphabet, from_end=False),
        ]
    )
    formula = conj([enc.formula, disj([length_differs, mismatch])])
    return SingleEncoding(formula, enc, automaton, info, info.order)


def encode_not_prefixof(
    predicate: NotPrefixOf, automata: Dict[str, Nfa], prefix: str = "",
    extra_variables: Sequence[str] = (),
) -> SingleEncoding:
    """Encode ``¬prefixof(lhs, rhs)`` (§6.2, eq. 22)."""
    variables = _with_extras(predicate.string_variables(), extra_variables)
    automaton, info, enc = _prepare(automata, variables, prefix)
    alphabet = _alphabet_of(automata, variables)

    longer = gt(_side_length(enc, predicate.lhs), _side_length(enc, predicate.rhs))
    mismatch = conj(
        [
            _symbols_differ(enc, variables, alphabet),
            _mismatch_disjunction(enc, info, predicate.lhs, predicate.rhs, alphabet, from_end=False),
        ]
    )
    formula = conj([enc.formula, disj([longer, mismatch])])
    return SingleEncoding(formula, enc, automaton, info, info.order)


def encode_not_suffixof(
    predicate: NotSuffixOf, automata: Dict[str, Nfa], prefix: str = "",
    extra_variables: Sequence[str] = (),
) -> SingleEncoding:
    """Encode ``¬suffixof(lhs, rhs)`` (§6.2, eqs. 23–24 with corrected sums)."""
    variables = _with_extras(predicate.string_variables(), extra_variables)
    automaton, info, enc = _prepare(automata, variables, prefix)
    alphabet = _alphabet_of(automata, variables)

    longer = gt(_side_length(enc, predicate.lhs), _side_length(enc, predicate.rhs))
    mismatch = conj(
        [
            _symbols_differ(enc, variables, alphabet),
            _mismatch_disjunction(enc, info, predicate.lhs, predicate.rhs, alphabet, from_end=True),
        ]
    )
    formula = conj([enc.formula, disj([longer, mismatch])])
    return SingleEncoding(formula, enc, automaton, info, info.order)


def encode_str_at(
    predicate: StrAt, automata: Dict[str, Nfa], prefix: str = "",
    extra_variables: Sequence[str] = (),
) -> SingleEncoding:
    """Encode ``x_s = str.at(y_1...y_m, t_i)`` or its negation (§6.3, eqs. 27–28)."""
    variables = _with_extras(predicate.string_variables(), extra_variables)
    automaton, info, enc = _prepare(automata, variables, prefix)
    alphabet = _alphabet_of(automata, variables)

    target = predicate.target
    haystack = predicate.haystack
    index = predicate.index

    target_length = enc.tag_count(length_tag(target))
    haystack_length = _side_length(enc, haystack)
    in_bounds = conj([ge(index, 0), lt(index, haystack_length)])
    out_of_bounds = disj([lt(index, 0), ge(index, haystack_length)])

    # The position/existence disjunction over occurrences of the haystack.
    options: List[Formula] = []
    for j in range(1, len(haystack) + 1):
        y = haystack[j - 1]
        rhs_prefix = _occurrence_prefix(enc, haystack, j)
        p1y = enc.tag_count(position_tag(y, 1))
        p2y = enc.tag_count(position_tag(y, 2))
        existence = _mismatch_exists(enc, info, target, y, alphabet)
        if y == target:
            # The sampled character of the target may come before or after the
            # sampled haystack position within the same variable.
            options.append(
                conj([disj([eq(index, p1y + rhs_prefix), eq(index, p1y + p2y + rhs_prefix)]), existence])
            )
        elif _order_index(info, y) < _order_index(info, target):
            options.append(conj([eq(index, p1y + rhs_prefix), existence]))
        else:
            options.append(conj([eq(index, p2y + rhs_prefix), existence]))
    sampled_position = disj(options)

    if predicate.negated:
        # Deviation from eq. (27): the paper misses the case of an empty
        # target with an in-bounds index (ε never equals a 1-character word).
        formula_body = disj(
            [
                conj([gt(target_length, 0), out_of_bounds]),
                gt(target_length, 1),
                conj([eq(target_length, 0), in_bounds]),
                conj(
                    [
                        eq(target_length, 1),
                        in_bounds,
                        _symbols_differ(enc, variables, alphabet),
                        sampled_position,
                    ]
                ),
            ]
        )
    else:
        formula_body = disj(
            [
                conj([eq(target_length, 0), out_of_bounds]),
                conj(
                    [
                        eq(target_length, 1),
                        in_bounds,
                        _symbols_equal(enc, variables, alphabet),
                        sampled_position,
                    ]
                ),
            ]
        )
    formula = conj([enc.formula, formula_body])
    return SingleEncoding(formula, enc, automaton, info, info.order)


def encode_single(
    predicate, automata: Dict[str, Nfa], prefix: str = "", extra_variables: Sequence[str] = ()
) -> SingleEncoding:
    """Dispatch on the predicate type (all single existential predicates)."""
    if isinstance(predicate, Disequality):
        return encode_disequality(predicate, automata, prefix, extra_variables)
    if isinstance(predicate, NotPrefixOf):
        return encode_not_prefixof(predicate, automata, prefix, extra_variables)
    if isinstance(predicate, NotSuffixOf):
        return encode_not_suffixof(predicate, automata, prefix, extra_variables)
    if isinstance(predicate, StrAt):
        return encode_str_at(predicate, automata, prefix, extra_variables)
    raise TypeError(f"encode_single does not handle {predicate!r}")


def _with_extras(variables: Sequence[str], extras: Sequence[str]) -> Tuple[str, ...]:
    """Append extra variables (deduplicated) to a predicate's variable list."""
    combined = list(variables)
    for name in extras:
        if name not in combined:
            combined.append(name)
    return tuple(combined)
