"""Parikh formulae of tag automata (§4, eq. (1)–(2), Appendix A).

Given a tag automaton ``T``, :class:`ParikhEncoding` builds the LIA formula
``PF(T)`` whose models are exactly the Parikh images of accepting runs, and
the *Parikh tag formula* ``PF_tag(T)`` which additionally exposes one counter
per tag (the ``#⟨tag⟩`` variables used by the constraint encodings).

The construction follows Appendix A:

* per state ``q``: variables ``γI_q`` and ``γF_q`` marking the first/last
  state of the run and ``σ_q`` giving its depth in a spanning tree of the
  used transitions (connectivity),
* per transition ``t``: a counter ``#t``,
* Kirchhoff flow-conservation constraints, and
* spanning-tree constraints ruling out disconnected cycles.

Every encoding instance has a ``prefix`` so that several Parikh formulae over
the same automaton can coexist in one LIA formula (needed for the two runs
``#1`` / ``#2`` of the ¬contains reduction, §6.4).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..budget import checkpoint
from ..lia import Formula, LinExpr, conj, disj, eq, ge, iff, implies, le, var
from .tag_automaton import TagAutomaton, TagTransition
from .tags import Tag


@dataclass
class ParikhEncoding:
    """The Parikh (tag) formula of a tag automaton plus its variable map."""

    automaton: TagAutomaton
    prefix: str = ""

    #: formula PF_tag(T); populated by :func:`encode`
    formula: Formula = None
    #: LIA variable name of each transition counter (parallel to automaton.transitions)
    transition_vars: List[str] = field(default_factory=list)
    #: LIA variable name of each tag counter
    tag_vars: Dict[Tag, str] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # Variable names
    # ------------------------------------------------------------------
    def transition_var(self, index: int) -> str:
        return f"{self.prefix}#t{index}"

    def gamma_initial(self, state: int) -> str:
        return f"{self.prefix}@gi{state}"

    def gamma_final(self, state: int) -> str:
        return f"{self.prefix}@gf{state}"

    def sigma(self, state: int) -> str:
        return f"{self.prefix}@sp{state}"

    def tag_var(self, tag: Tag) -> str:
        return tag.var_name(self.prefix)

    def tag_count(self, tag: Tag) -> LinExpr:
        """Return the LIA expression counting occurrences of ``tag``.

        Tags that never occur on any transition count as the constant 0, so
        formulae may freely reference tags that a particular automaton does
        not use.
        """
        name = self.tag_vars.get(tag)
        if name is None:
            return LinExpr.constant(0)
        return LinExpr.var(name)

    def tag_sum(self, tags: Sequence[Tag]) -> LinExpr:
        """Sum of the counters of several tags."""
        return LinExpr.sum_of(self.tag_count(tag) for tag in tags)


def encode(automaton: TagAutomaton, prefix: str = "") -> ParikhEncoding:
    """Build ``PF_tag(automaton)`` and return the resulting encoding object."""
    enc = ParikhEncoding(automaton=automaton, prefix=prefix)
    transitions = automaton.transitions
    enc.transition_vars = [enc.transition_var(i) for i in range(len(transitions))]

    parts: List[Formula] = []

    # (34) φ_Init: exactly one first state, and only initial states qualify.
    initial_terms: List[LinExpr] = []
    for state in sorted(automaton.states):
        gi = var(enc.gamma_initial(state))
        if state in automaton.initial:
            parts.append(ge(gi, 0))
            parts.append(le(gi, 1))
            initial_terms.append(gi)
        else:
            parts.append(eq(gi, 0))
    if initial_terms:
        parts.append(eq(LinExpr.sum_of(initial_terms), 1))
    else:
        # No initial state at all: the automaton has no accepting run.
        parts.append(eq(LinExpr.constant(0), 1))

    # (35) φ_Fin: only final states may be last.
    for state in sorted(automaton.states):
        gf = var(enc.gamma_final(state))
        if state in automaton.final:
            parts.append(ge(gf, 0))
            parts.append(le(gf, 1))
        else:
            parts.append(eq(gf, 0))

    # Transition counters are non-negative.
    incoming: Dict[int, List[int]] = {state: [] for state in automaton.states}
    outgoing: Dict[int, List[int]] = {state: [] for state in automaton.states}
    for index, transition in enumerate(transitions):
        parts.append(ge(var(enc.transition_vars[index]), 0))
        incoming[transition.dst].append(index)
        outgoing[transition.src].append(index)

    # (36) φ_Kirch: flow conservation at every state.
    for state in sorted(automaton.states):
        inflow = LinExpr.sum_of([var(enc.gamma_initial(state))] + [var(enc.transition_vars[i]) for i in incoming[state]])
        outflow = LinExpr.sum_of([var(enc.gamma_final(state))] + [var(enc.transition_vars[i]) for i in outgoing[state]])
        parts.append(eq(inflow, outflow))

    # (37)–(39) φ_Span: connectivity via spanning-tree depths.
    for state in sorted(automaton.states):
        # One budget step per state: the spanning-tree constraints dominate
        # the encoding (one disjunction over the incoming transitions each).
        checkpoint("parikh.encode")
        sigma = var(enc.sigma(state))
        gi = var(enc.gamma_initial(state))
        parts.append(iff(eq(sigma, 0), eq(gi, 1)))
        unused = conj(
            [eq(gi, 0)] + [eq(var(enc.transition_vars[i]), 0) for i in incoming[state]]
        )
        parts.append(implies(le(sigma, -1), unused))
        predecessors = []
        for i in incoming[state]:
            source = transitions[i].src
            predecessors.append(
                conj(
                    [
                        ge(var(enc.transition_vars[i]), 1),
                        ge(var(enc.sigma(source)), 0),
                        eq(sigma, var(enc.sigma(source)) + 1),
                    ]
                )
            )
        parts.append(implies(ge(sigma, 1), disj(predecessors)))

    # (2) tag counters: #tag = Σ { #t | tag ∈ tags(t) }.
    tag_to_transitions: Dict[Tag, List[int]] = {}
    for index, transition in enumerate(transitions):
        for tag in transition.tags:
            tag_to_transitions.setdefault(tag, []).append(index)
    for tag, indices in sorted(tag_to_transitions.items(), key=lambda item: repr(item[0])):
        name = enc.tag_var(tag)
        enc.tag_vars[tag] = name
        total = LinExpr.sum_of(var(enc.transition_vars[i]) for i in indices)
        parts.append(eq(var(name), total))

    enc.formula = conj(parts)
    return enc


def run_from_model(enc: ParikhEncoding, model) -> Optional[List[TagTransition]]:
    """Reconstruct an accepting run from a model of ``PF_tag`` (Euler path).

    The Kirchhoff and spanning constraints guarantee that the multiset of
    used transitions forms a connected multigraph with an Eulerian path from
    the unique first state to the unique last state; Hierholzer's algorithm
    recovers one such path.  Returns ``None`` when the model does not encode
    a run (should not happen for models produced by the LIA solver).
    """
    counts: Dict[int, int] = {}
    for index, name in enumerate(enc.transition_vars):
        value = model.get(name, 0)
        if value < 0:
            return None
        if value:
            counts[index] = value

    start = None
    for state in enc.automaton.states:
        if model.get(enc.gamma_initial(state), 0) == 1:
            start = state
            break
    if start is None:
        return None

    remaining = dict(counts)
    outgoing: Dict[int, List[int]] = {}
    for index in counts:
        outgoing.setdefault(enc.automaton.transitions[index].src, []).append(index)

    # Hierholzer's algorithm for an Eulerian path in a directed multigraph.
    stack: List[Tuple[int, Optional[int]]] = [(start, None)]
    path_transitions: List[int] = []
    while stack:
        state, _ = stack[-1]
        candidates = outgoing.get(state, [])
        chosen = None
        for index in candidates:
            if remaining.get(index, 0) > 0:
                chosen = index
                break
        if chosen is None:
            _, via = stack.pop()
            if via is not None:
                path_transitions.append(via)
        else:
            remaining[chosen] -= 1
            stack.append((enc.automaton.transitions[chosen].dst, chosen))
    if any(count > 0 for count in remaining.values()):
        return None
    path_transitions.reverse()
    return [enc.automaton.transitions[i] for i in path_transitions]
