"""The ¬contains procedure for flat languages (§6.4).

``¬contains(u, v)`` (the needle ``u`` does not occur in the haystack ``v``)
quantifies universally over all alignments (offsets) of ``u`` inside ``v``:
for *every* offset there must be a mismatch.  The paper reduces the predicate
to the quantified LIA formula φ^NC (eq. 32)

    PF_tag(A^II, #1) ∧ ∀κ ∃#2 ( PF_tag(A^II, #2) ∧ EqualWords(#1, #2)
                                 ∧ φ_mis(κ, #2) ∨ κ < 0 ∨ κ > LenDiff(#1) )

which is well-defined only when the languages of the involved variables are
*flat* (a Parikh image then determines the word).  Like Z3-Noodler, the
implementation solves the formula by model-based quantifier instantiation
(MBQI): the universal quantifier is eliminated lazily by instantiating the
body at concrete offsets κ₀ at which a candidate model fails.

This module provides:

* :class:`NotContainsEncoder` — builds the A^II automaton of the predicate,
  the ``EqualWords`` linking constraints against a *master* encoding (the
  system encoding of the remaining constraints, which contains all the
  variables), the instantiation lemmas, and the fully quantified φ^NC for
  reference,
* :func:`find_failing_offset` — the model-based counterexample search used
  by the MBQI loop in :mod:`repro.solver.solver`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..automata.flatness import is_flat
from ..automata.nfa import Nfa
from ..lia import Formula, LinExpr, conj, disj, eq, exists, forall, gt, lt, var
from . import parikh
from .predicates import NotContains
from .single import (
    _alphabet_of,
    _mismatch_count,
    _occurrence_prefix,
    _order_index,
    _side_length,
    _symbols_differ,
    build_mismatch_automaton,
)
from .tag_automaton import ConcatInfo, TagAutomaton
from .tags import length_tag, position_tag

#: LIA variable name used for the universally quantified offset in φ^NC.
OFFSET_VARIABLE = "@kappa"


def base_transition_counts(enc: parikh.ParikhEncoding, info: ConcatInfo) -> Dict[Tuple, LinExpr]:
    """Sum the Parikh counters of every copy of each base NFA transition.

    The keys are ``(variable, src, symbol, dst)`` of the *original* variable
    NFA, so counts of two encodings built over the same automata can be
    equated (the ``EqualWords`` predicate, eq. 30).
    """
    sums: Dict[Tuple, List[str]] = {}
    for index, transition in enumerate(enc.automaton.transitions):
        if transition.base_id is None or transition.symbol() is None:
            continue
        key = info.base_key.get(transition.base_id)
        if key is None:
            continue
        sums.setdefault(key, []).append(enc.transition_vars[index])
    return {key: LinExpr.sum_of(var(name) for name in names) for key, names in sums.items()}


@dataclass
class NotContainsEncoder:
    """Builder of the φ^NC machinery for one ¬contains predicate."""

    predicate: NotContains
    automata: Dict[str, Nfa]
    index: int = 0

    def __post_init__(self) -> None:
        self.variables = self.predicate.string_variables()
        self.automaton, self.info = build_mismatch_automaton(self.automata, self.variables)
        self.alphabet = _alphabet_of(self.automata, self.variables)
        self._lemma_counter = 0

    # ------------------------------------------------------------------
    def languages_are_flat(self) -> bool:
        """The exact procedure requires every involved language to be flat."""
        return all(is_flat(self.automata[name]) for name in self.variables)

    def _fresh_prefix(self) -> str:
        prefix = f"nc{self.index}.{self._lemma_counter}."
        self._lemma_counter += 1
        return prefix

    # ------------------------------------------------------------------
    def length_difference(self, length_of) -> LinExpr:
        """LenDiff (eq. 31): |haystack| − |needle| in terms of a master encoding."""
        haystack = LinExpr.sum_of(length_of(name) for name in self.predicate.haystack)
        needle = LinExpr.sum_of(length_of(name) for name in self.predicate.needle)
        return haystack - needle

    def _mismatch_for_offset(self, enc: parikh.ParikhEncoding, offset) -> Formula:
        """φ_sym ∧ φ_mis(offset) over the inner encoding ``enc``.

        ``offset`` is added to the needle-side global position (the needle is
        shifted to the right by the alignment offset, §6.4).
        """
        needle, haystack = self.predicate.needle, self.predicate.haystack
        options: List[Formula] = []
        for i in range(1, len(needle) + 1):
            for j in range(1, len(haystack) + 1):
                x, y = needle[i - 1], haystack[j - 1]
                lhs_prefix = _occurrence_prefix(enc, needle, i)
                rhs_prefix = _occurrence_prefix(enc, haystack, j)
                p1x = enc.tag_count(position_tag(x, 1))
                p2x = enc.tag_count(position_tag(x, 2))
                p1y = enc.tag_count(position_tag(y, 1))
                p2y = enc.tag_count(position_tag(y, 2))
                if x != y:
                    if _order_index(self.info, x) < _order_index(self.info, y):
                        position = eq(offset + p1x + lhs_prefix, p2y + rhs_prefix)
                    else:
                        position = eq(offset + p2x + lhs_prefix, p1y + rhs_prefix)
                else:
                    position = disj(
                        [
                            eq(offset + p1x + lhs_prefix, p1x + p2x + rhs_prefix),
                            eq(offset + p1x + p2x + lhs_prefix, p1x + rhs_prefix),
                        ]
                    )
                if x == y or _order_index(self.info, x) <= _order_index(self.info, y):
                    first, second = x, y
                else:
                    first, second = y, x
                existence = conj(
                    [
                        gt(_mismatch_count(enc, first, 1, self.alphabet), 0),
                        gt(_mismatch_count(enc, second, 2, self.alphabet), 0),
                    ]
                )
                options.append(conj([position, existence]))
        return conj([_symbols_differ(enc, self.variables, self.alphabet), disj(options)])

    # ------------------------------------------------------------------
    def instantiation_lemma(self, offset_value: int, master_counts: Mapping[Tuple, LinExpr], length_of) -> Formula:
        """The MBQI lemma for a concrete offset κ₀ (an instance of the ∀ body).

        The lemma introduces a fresh copy ``#2'`` of the Parikh variables of
        ``A^II``, links it to the master encoding through ``EqualWords`` (same
        words, possibly a different run) and requires a mismatch at offset
        κ₀ — unless κ₀ exceeds the length difference (the alignment does not
        exist for the candidate words).
        """
        prefix = self._fresh_prefix()
        inner = parikh.encode(self.automaton, prefix=prefix)
        inner_counts = base_transition_counts(inner, self.info)
        links = [
            eq(inner_counts[key], master_counts[key])
            for key in inner_counts
            if key in master_counts
        ]
        mismatch = self._mismatch_for_offset(inner, LinExpr.constant(offset_value))
        overflow = gt(LinExpr.constant(offset_value), self.length_difference(length_of))
        return conj([inner.formula, conj(links), disj([mismatch, overflow])])

    def quantified_formula(self, master_counts: Mapping[Tuple, LinExpr], length_of) -> Formula:
        """The full φ^NC (eq. 32) with an explicit ∀κ ∃#2 prefix.

        This formula is provided for reference and for the bounded-expansion
        tests; the production path uses MBQI instead of solving it directly.
        """
        kappa = var(OFFSET_VARIABLE)
        inner = parikh.encode(self.automaton, prefix=f"nc{self.index}.q.")
        inner_counts = base_transition_counts(inner, self.info)
        links = [
            eq(inner_counts[key], master_counts[key])
            for key in inner_counts
            if key in master_counts
        ]
        body = disj(
            [
                conj([inner.formula, conj(links), self._mismatch_for_offset(inner, kappa)]),
                lt(kappa, 0),
                gt(kappa, self.length_difference(length_of)),
            ]
        )
        inner_variables = sorted(set(body.variables()) - {OFFSET_VARIABLE})
        return forall([OFFSET_VARIABLE], exists(inner_variables, body))


def find_failing_offset(predicate: NotContains, strings: Mapping[str, str]) -> Optional[int]:
    """Return an offset at which the needle *does* occur in the haystack.

    This is the model-based counterexample search of the MBQI loop: given the
    candidate words encoded by the current model, either every alignment has
    a mismatch (``None`` — the predicate holds) or some offset κ₀ witnesses
    containment and the caller instantiates the lemma at κ₀.
    """
    needle = "".join(strings[name] for name in predicate.needle)
    haystack = "".join(strings[name] for name in predicate.haystack)
    position = haystack.find(needle)
    return position if position >= 0 else None
