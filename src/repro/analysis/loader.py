"""Parse the repository's Python sources into analyzable modules.

A :class:`ModuleInfo` bundles what every rule needs: the parsed AST, the
raw source lines (for context in reports), the repo-relative path the
scope predicates match on, and the per-line suppression comments.  The
loader is filesystem-only — it never imports the analyzed code, so a
module with an import-time side effect (or an import cycle) is as
analyzable as any other.

Suppressions
------------

A finding is suppressed by a comment on the finding's line or on the line
directly above it::

    while frontier:  # repro: allow(checkpoint-coverage): oracle, budget-free

The grammar is ``# repro: allow(<rule>): <reason>``; the reason is
mandatory.  Comments that *look* like suppressions but are malformed
(missing rule, missing reason) are reported by the ``suppression`` meta
rule rather than silently ignored — a suppression that does not say *why*
is exactly the kind of unaudited escape hatch this analyzer exists to
prevent.
"""

from __future__ import annotations

import ast
import io
import os
import re
import tokenize
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

#: well-formed suppression: rule name, then a non-empty reason
_ALLOW = re.compile(
    r"#\s*repro:\s*allow\(\s*(?P<rule>[A-Za-z0-9_.-]+)\s*\)\s*:\s*(?P<reason>\S.*)$"
)
#: anything that *tries* to be a suppression (used to flag malformed ones)
_ALLOW_LIKE = re.compile(r"#\s*repro:\s*allow\b(?P<rest>.*)$")


@dataclass(frozen=True)
class Suppression:
    """One parsed ``# repro: allow(rule): reason`` comment."""

    rule: str
    reason: str
    line: int


@dataclass
class ModuleInfo:
    """One parsed source file plus everything rules match on."""

    path: str
    #: repo-relative, '/'-separated (``src/repro/lia/simplify.py``)
    relpath: str
    tree: ast.Module
    lines: List[str]
    #: well-formed suppressions, keyed by the line they appear on
    suppressions: Dict[int, List[Suppression]] = field(default_factory=dict)
    #: ``(line, comment_text)`` of malformed allow-comments
    malformed_allows: List[Tuple[int, str]] = field(default_factory=list)

    @property
    def is_test(self) -> bool:
        return self.relpath.startswith("tests/")

    def in_package(self, *parts: str) -> bool:
        """True when the module lives under ``src/repro/<parts...>/``."""
        prefix = "/".join(("src", "repro") + parts)
        return self.relpath == prefix + ".py" or self.relpath.startswith(prefix + "/")

    def allowed(self, rule: str, line: int) -> Optional[Suppression]:
        """The suppression covering ``rule`` at ``line``, if any.

        A suppression covers the line it sits on and the line below it
        (i.e. it may be written trailing the offending statement or on its
        own line directly above).
        """
        for at in (line, line - 1):
            for spec in self.suppressions.get(at, ()):
                if spec.rule == rule:
                    return spec
        return None


def _collect_comments(source: str) -> List[Tuple[int, str]]:
    """All ``(line, text)`` comments, via tokenize (string-literal safe)."""
    comments: List[Tuple[int, str]] = []
    try:
        for token in tokenize.generate_tokens(io.StringIO(source).readline):
            if token.type == tokenize.COMMENT:
                comments.append((token.start[0], token.string))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        # The AST parse below is the authoritative failure point; a file
        # tokenize chokes on simply contributes no suppressions.
        pass
    return comments


def parse_module(path: str, relpath: str, source: Optional[str] = None) -> ModuleInfo:
    """Parse one file into a :class:`ModuleInfo` (raises ``SyntaxError``)."""
    if source is None:
        with open(path, encoding="utf-8") as handle:
            source = handle.read()
    tree = ast.parse(source, filename=relpath)
    module = ModuleInfo(
        path=path, relpath=relpath, tree=tree, lines=source.splitlines()
    )
    for line, text in _collect_comments(source):
        match = _ALLOW.search(text)
        if match:
            spec = Suppression(
                rule=match.group("rule"), reason=match.group("reason").strip(), line=line
            )
            module.suppressions.setdefault(line, []).append(spec)
        elif _ALLOW_LIKE.search(text):
            module.malformed_allows.append((line, text.strip()))
    return module


def repo_root(start: Optional[str] = None) -> str:
    """Locate the repository root (the directory holding ``src/repro``).

    Walks upward from ``start`` (default: this package's location), which
    keeps ``python -m repro.analysis`` working from any working directory.
    """
    here = start or os.path.dirname(os.path.abspath(__file__))
    probe = here
    while True:
        if os.path.isdir(os.path.join(probe, "src", "repro")):
            return probe
        parent = os.path.dirname(probe)
        if parent == probe:
            # Fall back to the package-relative guess: .../src/repro/analysis
            return os.path.dirname(os.path.dirname(os.path.dirname(here)))
        probe = parent


#: directories scanned by default, relative to the repo root
DEFAULT_SCAN = ("src/repro", "tests")


def iter_source_files(root: str, scan: Sequence[str] = DEFAULT_SCAN) -> List[str]:
    """Every ``.py`` file under the scan roots, sorted for determinism."""
    found: List[str] = []
    for rel in scan:
        base = os.path.join(root, rel)
        if os.path.isfile(base) and base.endswith(".py"):
            found.append(base)
            continue
        for dirpath, dirnames, filenames in os.walk(base):
            dirnames[:] = sorted(d for d in dirnames if d != "__pycache__")
            for name in sorted(filenames):
                if name.endswith(".py"):
                    found.append(os.path.join(dirpath, name))
    return sorted(found)


def load_modules(
    root: Optional[str] = None, scan: Sequence[str] = DEFAULT_SCAN
) -> List[ModuleInfo]:
    """Parse every source file under ``root`` into :class:`ModuleInfo`s."""
    base = root or repo_root()
    modules: List[ModuleInfo] = []
    for path in iter_source_files(base, scan):
        relpath = os.path.relpath(path, base).replace(os.sep, "/")
        modules.append(parse_module(path, relpath))
    return modules
