"""``python -m repro.analysis`` — the repo-invariant static analyzer CLI.

Exit status:

* ``0`` — no unsuppressed violations (and the runtime budget, if given,
  was met),
* ``1`` — violations found, or ``--max-runtime`` exceeded,
* ``2`` — usage error (unknown rule, unreadable root).

The CI lint job runs ``python -m repro.analysis --json --max-runtime 10``:
the JSON report carries ``runtime_seconds`` so the budget assertion and
the recorded number can never drift apart.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .framework import AnalysisError, all_rules
from .loader import DEFAULT_SCAN, repo_root
from .report import render_human, render_json
from .runner import analyze_paths


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Check the repo's standing invariants statically.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help=f"root-relative directories/files to scan (default: {' '.join(DEFAULT_SCAN)})",
    )
    parser.add_argument(
        "--root",
        default=None,
        help="repository root (default: discovered from the package location)",
    )
    parser.add_argument(
        "--rule",
        action="append",
        dest="rules",
        metavar="NAME",
        help="run only this rule (repeatable; fnmatch patterns allowed)",
    )
    parser.add_argument(
        "--json", action="store_true", help="emit the machine-readable report"
    )
    parser.add_argument(
        "--verbose", action="store_true", help="also list suppressed findings"
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the registered rules and exit"
    )
    parser.add_argument(
        "--max-runtime",
        type=float,
        default=None,
        metavar="SECONDS",
        help="fail (exit 1) when the analysis takes longer than this — the "
        "CI lint job's cheap-enough-to-never-skip gate",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.name:22s} {rule.description}")
        return 0
    root = args.root or repo_root()
    scan = tuple(args.paths) or DEFAULT_SCAN
    try:
        report = analyze_paths(root=root, scan=scan, rule_names=args.rules)
    except AnalysisError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except OSError as error:
        print(f"error: cannot scan {root!r}: {error}", file=sys.stderr)
        return 2
    over_budget = (
        args.max_runtime is not None and report.runtime_seconds > args.max_runtime
    )
    if args.json:
        payload = report.to_json()
        if args.max_runtime is not None:
            payload["max_runtime_seconds"] = args.max_runtime
            payload["max_runtime_exceeded"] = over_budget
        import json

        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        print(render_human(report, verbose=args.verbose))
    if over_budget:
        print(
            f"error: analysis took {report.runtime_seconds:.2f}s "
            f"(budget {args.max_runtime:.2f}s) — the analyzer must stay "
            "cheap enough to never be skipped",
            file=sys.stderr,
        )
        return 1
    return 0 if report.ok else 1


if __name__ == "__main__":
    sys.exit(main())
