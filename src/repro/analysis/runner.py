"""Drive the rules over the loaded modules and apply suppressions."""

from __future__ import annotations

import time
from typing import List, Optional, Sequence

from .framework import Context, Finding, Report, Rule, select_rules
from .loader import DEFAULT_SCAN, ModuleInfo, load_modules


def analyze(
    modules: Sequence[ModuleInfo], rules: Optional[Sequence[Rule]] = None
) -> Report:
    """Run ``rules`` (default: all registered) over ``modules``."""
    chosen = list(rules) if rules is not None else select_rules(None)
    context = Context(modules)
    findings: List[Finding] = []
    for rule in chosen:
        for module in modules:
            if not rule.applies_to(module):
                continue
            for finding in rule.check(module, context):
                # The meta rule polices the suppressions themselves, so its
                # findings cannot be allowed away.
                if finding.rule != "suppression":
                    spec = module.allowed(finding.rule, finding.line)
                    if spec is not None:
                        finding.suppressed = True
                        finding.suppression_reason = spec.reason
                findings.append(finding)
    findings.sort(key=lambda f: (f.relpath, f.line, f.rule))
    return Report(
        findings=findings,
        files_scanned=len(modules),
        rules_run=[rule.name for rule in chosen],
    )


def analyze_paths(
    root: Optional[str] = None,
    scan: Sequence[str] = DEFAULT_SCAN,
    rule_names: Optional[Sequence[str]] = None,
) -> Report:
    """Load sources under ``root`` and analyze them; records the runtime.

    This is the function both the CLI and the CI lint job go through, so
    the reported ``runtime_seconds`` covers parsing *and* rule execution —
    the number the lint job's budget assertion gates on.
    """
    # The analyzer times itself so CI can assert it stays cheap enough to
    # never be skipped; this is tooling-side instrumentation, not engine
    # behaviour.
    started = time.perf_counter()  # repro: allow(determinism): analyzer self-timing feeds the lint job's runtime budget gate
    modules = load_modules(root=root, scan=scan)
    report = analyze(modules, rules=select_rules(rule_names))
    report.runtime_seconds = time.perf_counter() - started  # repro: allow(determinism): analyzer self-timing feeds the lint job's runtime budget gate
    return report
