"""A cheap interprocedural call graph for checkpoint-reachability.

The checkpoint-coverage rule needs to answer one question: *does this loop
body reach a budget checkpoint?*  Most hot loops call
:func:`repro.budget.checkpoint` (or ``Budget.checkpoint`` /
``Budget.check_now``) directly, but several checkpoint through a callee —
the solver's branch loop checkpoints inside ``_solve_branch``, the
noodler's segment loop inside the automata layer.  Resolving that needs
interprocedural reasoning, but nothing close to a real points-to analysis:

* every function/method definition in the scanned tree becomes a node,
* every call site is recorded by its *callee's final name* (``foo(...)``
  → ``foo``; ``self._solve_branch(...)`` and ``mod.helper(...)`` → the
  attribute name), and
* a name edge links a caller to **every** definition sharing that final
  name, anywhere in the tree.

This is a deliberate over-approximation (two unrelated methods named
``step`` alias each other), which for a *lint* errs in the right
direction: a loop is only flagged when **no** plausible callee chain
reaches a checkpoint, so false negatives from aliasing are possible but
false positives are not.  The paper-engine's naming is unambiguous enough
in practice that the rule still caught every seeded regression in the
fixture suite.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Sequence, Set

from .loader import ModuleInfo

#: final names whose call *is* a budget checkpoint.  ``checkpoint`` covers
#: both the module-level helper and ``Budget.checkpoint``; ``check_now``
#: is the interval-free variant used at coarse boundaries.
CHECKPOINT_NAMES = frozenset({"checkpoint", "check_now"})


def call_name(node: ast.Call) -> Optional[str]:
    """The callee's final name (``a.b.c(...)`` → ``"c"``), if syntactic."""
    func = node.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def iter_calls(node: ast.AST) -> Iterator[ast.Call]:
    for child in ast.walk(node):
        if isinstance(child, ast.Call):
            yield child


class CallGraph:
    """Name-indexed definitions plus transitive checkpoint reachability."""

    def __init__(self, modules: Sequence[ModuleInfo]) -> None:
        #: final name -> set of final names each same-named definition calls
        self._calls_by_name: Dict[str, Set[str]] = {}
        for module in modules:
            for node in ast.walk(module.tree):
                if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    called = self._calls_by_name.setdefault(node.name, set())
                    for call in iter_calls(node):
                        name = call_name(call)
                        if name is not None:
                            called.add(name)
        self._reaches: Dict[str, bool] = {}

    def function_reaches_checkpoint(self, name: str) -> bool:
        """Can a call to ``name`` transitively hit a checkpoint call?"""
        cached = self._reaches.get(name)
        if cached is not None:
            return cached
        # Iterative DFS with an in-progress marker so recursion (the
        # engine's solvers are mutually recursive in places) terminates.
        seen: Set[str] = set()
        stack: List[str] = [name]
        reachable = False
        while stack:
            current = stack.pop()
            if current in CHECKPOINT_NAMES:
                reachable = True
                break
            if current in seen:
                continue
            seen.add(current)
            known = self._reaches.get(current)
            if known is True:
                reachable = True
                break
            if known is False:
                continue
            stack.extend(self._calls_by_name.get(current, ()))
        if reachable:
            # Only the query name is known-positive; other visited names
            # may have been abandoned mid-search when the hit was found.
            self._reaches[name] = True
        else:
            # An exhausted search proves every visited name negative.
            for visited in seen:
                self._reaches[visited] = False
        return reachable

    def node_reaches_checkpoint(self, node: ast.AST) -> bool:
        """Does any call inside ``node``'s subtree reach a checkpoint?

        Direct hits (``checkpoint(...)``, ``watch.check_now(...)``) count
        immediately; every other call is resolved through the name graph.
        """
        for call in iter_calls(node):
            name = call_name(call)
            if name is None:
                continue
            if name in CHECKPOINT_NAMES:
                return True
            if self.function_reaches_checkpoint(name):
                return True
        return False
