"""Rule ``checkpoint-coverage``: unbounded engine loops must checkpoint.

Motivating incident (PR 6): the bounded-time layer threaded cooperative
:func:`repro.budget.checkpoint` calls through every known hot loop, yet a
quadratic elimination chain in ``lia/simplify.py`` stalled a 0.05 s budget
for 3.7 s — it was only found by a tiny-timeout *sweep*, because nothing
checked statically that new loops keep the contract.  This rule is that
check.

Scope: the engine packages where a loop can depend on problem size —
``automata/``, ``eqsolver/``, ``lia/``, ``solver/``, ``strings/``.

What counts as *unbounded*:

* a ``while`` statement (worklists, fixpoints, solver main loops), unless
  its body is *trivial* — no nested loops and no calls beyond an O(1)
  allowlist (``append``, ``pop``, ``bit_length``, …).  Trivial whiles are
  the dense core's bit-scan idiom (``while mask: low = mask & -mask; …``)
  and arithmetic counters: each does constant local work per iteration
  and is bounded by a machine word or an input measure.
* a ``for`` statement with *product nesting*: an inner loop whose
  iterable is independent of the enclosing loop's target.  ``for a in xs:
  for b in ys:`` multiplies two input dimensions; by contrast ``for src,
  row in delta.items(): for dst in row:`` merely traverses the leaves of
  a nested structure — flat work in the structure's size — and is exempt,
  as are constant ``range(<literal>)`` inner loops and trivial whiles.
  (``for j in range(i, n)`` counts as a traversal too; triangular loops
  slip through — the lint over-approximates toward silence, never noise.)

Coverage follows the codebase's two budget-charging idioms:

* **per-iteration**: the outermost hot loop checkpoints once per
  iteration with a cost scaled to the inner work (``automata/dense.py``'s
  worklists) — so a loop passes when its own body, or any *enclosing*
  loop's body, reaches a checkpoint directly or through a callee resolved
  by the :mod:`repro.analysis.callgraph` over-approximation;
* **charge-up-front**: a conversion checkpoints once with a cost scaled
  to the whole job before running its (terminating) loops
  (``DenseNfa.from_nfa``) — so a ``for`` loop also passes when the
  enclosing *function* reaches a checkpoint anywhere.  A ``while`` does
  not get this out: its iteration count is not structurally bounded, so
  an up-front charge can never cover it.

Only the outermost uncovered loop of a nest is reported, so one missing
checkpoint yields one finding, not one per nesting level.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Set

from ..callgraph import call_name
from ..framework import Context, Finding, Rule, register
from ..loader import ModuleInfo

#: engine packages under src/repro/ whose loops must checkpoint
ENGINE_PACKAGES = ("automata", "eqsolver", "lia", "solver", "strings")

#: calls considered O(1) when deciding whether a while body is trivial
TRIVIAL_CALLS = frozenset(
    {
        "append",
        "appendleft",
        "pop",
        "popleft",
        "add",
        "discard",
        "remove",
        "bit_length",
        "bit_count",
        "len",
        "abs",
        "min",
        "max",
        "next",
        "isinstance",
        "ord",
        "chr",
        "id",
        "iter",
        # log-bounded / amortised-O(1) container ops
        "heappush",
        "heappop",
        "popitem",
        # short-circuit scans of per-iteration locals
        "all",
        "any",
    }
)

_LOOPS = (ast.While, ast.For, ast.AsyncFor)
_SCOPES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda, ast.ClassDef)


def _constant_range(node: ast.AST) -> bool:
    """``for _ in range(<literal>)`` (or two/three literal args)."""
    if not isinstance(node, (ast.For, ast.AsyncFor)):
        return False
    iterable = node.iter
    if not (
        isinstance(iterable, ast.Call)
        and isinstance(iterable.func, ast.Name)
        and iterable.func.id == "range"
        and not iterable.keywords
    ):
        return False
    return all(
        isinstance(arg, ast.Constant) and isinstance(arg.value, int)
        for arg in iterable.args
    )


def _trivial_while(node: ast.AST) -> bool:
    """A while whose body does constant local work per iteration."""
    if not isinstance(node, ast.While):
        return False
    for child in ast.walk(node):
        if child is node:
            continue
        if isinstance(child, _LOOPS):
            return False
        if isinstance(child, ast.Call):
            name = call_name(child)
            if name is None or name not in TRIVIAL_CALLS:
                return False
    return True


def _loop_body(node) -> ast.Module:
    """The loop body+else as one walkable tree (excludes the test/iter)."""
    return ast.Module(body=list(node.body) + list(node.orelse), type_ignores=[])


def _target_names(loop: ast.AST) -> Set[str]:
    names: Set[str] = set()
    target = getattr(loop, "target", None)
    if target is not None:
        for node in ast.walk(target):
            if isinstance(node, ast.Name):
                names.add(node.id)
    return names


def _has_product_nesting(outer: ast.For) -> bool:
    """Does ``outer`` contain an inner loop over an independent iterable?

    ``bound`` accumulates the loop targets *and* locals assigned from them
    (``expr = constraint.expr`` makes ``expr`` derived), so iterating a
    derived value still reads as a traversal of the outer structure.
    """

    def search(node: ast.AST, bound: Set[str]) -> bool:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.Assign, ast.AnnAssign)) and getattr(
                child, "value", None
            ) is not None:
                refs = {
                    name.id
                    for name in ast.walk(child.value)
                    if isinstance(name, ast.Name)
                }
                if refs & bound:
                    targets = (
                        child.targets
                        if isinstance(child, ast.Assign)
                        else [child.target]
                    )
                    for target in targets:
                        for name in ast.walk(target):
                            if isinstance(name, ast.Name):
                                bound.add(name.id)
            if isinstance(child, _SCOPES):
                # a nested def's loops run in its caller's context
                continue
            if isinstance(child, ast.While):
                if not _trivial_while(child):
                    return True
                continue  # a trivial while contains no further loops
            if isinstance(child, (ast.For, ast.AsyncFor)):
                if not _constant_range(child):
                    refs = {
                        name.id
                        for name in ast.walk(child.iter)
                        if isinstance(name, ast.Name)
                    }
                    if not refs & bound:
                        return True  # independent dimension: a product
                if search(child, bound | _target_names(child)):
                    return True
                continue
            if search(child, bound):
                return True
        return False

    return search(_loop_body(outer), _target_names(outer))


def _unbounded(node: ast.AST) -> bool:
    if isinstance(node, ast.While):
        return not _trivial_while(node)
    if isinstance(node, (ast.For, ast.AsyncFor)):
        return not _constant_range(node) and _has_product_nesting(node)
    return False


@register
class CheckpointCoverage(Rule):
    name = "checkpoint-coverage"
    description = (
        "while-loops and product-nested for-loops in engine modules reach a "
        "budget checkpoint (per-iteration or charged up front)"
    )

    def applies_to(self, module: ModuleInfo) -> bool:
        return any(module.in_package(package) for package in ENGINE_PACKAGES)

    def check(self, module: ModuleInfo, context: Context) -> Iterator[Finding]:
        findings: List[Finding] = []
        self._visit(module, context, module.tree, False, False, findings)
        return iter(findings)

    def _visit(
        self,
        module: ModuleInfo,
        context: Context,
        node: ast.AST,
        covered: bool,
        func_covered: bool,
        findings: List[Finding],
    ) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, _LOOPS):
                reaches = covered or context.callgraph.node_reaches_checkpoint(
                    _loop_body(child)
                )
                # for-loops terminate, so an up-front charge anywhere in
                # the enclosing function covers them; whiles need the
                # per-iteration form.
                excused = reaches or (
                    func_covered and not isinstance(child, ast.While)
                )
                if not excused and _unbounded(child):
                    kind = (
                        "while loop"
                        if isinstance(child, ast.While)
                        else "product-nested for loop"
                    )
                    findings.append(
                        self.finding(
                            module,
                            child.lineno,
                            f"{kind} never reaches a budget checkpoint "
                            "(call repro.budget.checkpoint()/check_now() in "
                            "the body, directly or via a callee)",
                        )
                    )
                    # inner loops of a flagged nest are not re-reported
                    reaches = True
                self._visit(module, context, child, reaches, func_covered, findings)
            elif isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                body = ast.Module(body=list(child.body), type_ignores=[])
                self._visit(
                    module,
                    context,
                    child,
                    False,
                    context.callgraph.node_reaches_checkpoint(body),
                    findings,
                )
            elif isinstance(child, ast.Lambda):
                self._visit(module, context, child, False, False, findings)
            else:
                self._visit(module, context, child, covered, func_covered, findings)
