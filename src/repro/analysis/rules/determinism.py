"""Rule ``determinism``: no ambient clock or RNG reads in the engine.

The solver's reproducibility contract (and the whole PR-6 step-accounting
design) assumes a check's behaviour is a pure function of the problem,
the config and the budget: wall-clock time enters **only** through
:class:`repro.budget.Budget` (whose clock is injectable for tests), and
randomness **only** through explicitly seeded ``random.Random(seed)``
instances (the benchgen generators, the chaos schedules).  A stray
``time.monotonic()`` read makes step-limit runs machine-dependent; an
unseeded RNG makes a differential failure unreproducible.

Flagged:

* clock reads — ``time.time/monotonic/perf_counter/...`` (and their
  ``_ns`` variants, ``datetime.now/utcnow/today``), including when
  imported via ``from time import monotonic``;
* ambient RNG — any ``random.<fn>()`` module-level call (these share the
  process-global, entropy-seeded generator), and ``random.Random()``
  constructed *without* a seed argument.

Allowed without suppression: ``budget.py`` (the one sanctioned clock) and
``serve/`` (job timing against client-visible wall deadlines is that
layer's purpose).  Everything else needs a written
``# repro: allow(determinism): ...`` justification.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator

from ..framework import Context, Finding, Rule, register
from ..loader import ModuleInfo

CLOCK_READS = frozenset(
    {
        "time",
        "monotonic",
        "perf_counter",
        "process_time",
        "thread_time",
        "time_ns",
        "monotonic_ns",
        "perf_counter_ns",
        "process_time_ns",
        "thread_time_ns",
    }
)
DATETIME_READS = frozenset({"now", "utcnow", "today"})
#: the only ``random`` attribute that may be called: a *seeded* Random
RANDOM_CTOR = "Random"


def _imported_names(tree: ast.Module) -> Dict[str, str]:
    """Map local name -> ``module.attr`` for ``from X import Y [as Z]``."""
    imported: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom) and node.module:
            for alias in node.names:
                imported[alias.asname or alias.name] = f"{node.module}.{alias.name}"
    return imported


@register
class Determinism(Rule):
    name = "determinism"
    description = (
        "no wall-clock reads or ambient/unseeded RNG outside budget.py and "
        "the serve timing paths"
    )

    def applies_to(self, module: ModuleInfo) -> bool:
        if module.is_test:
            return False
        if module.relpath == "src/repro/budget.py":
            return False
        if module.in_package("serve"):
            return False
        return module.relpath.startswith("src/repro/")

    def check(self, module: ModuleInfo, context: Context) -> Iterator[Finding]:
        imported = _imported_names(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
                base, attr = func.value.id, func.attr
                if base == "time" and attr in CLOCK_READS:
                    yield self.finding(
                        module,
                        node.lineno,
                        f"wall-clock read time.{attr}() — route timing through "
                        "repro.budget.Budget (injectable clock)",
                    )
                elif base in ("datetime", "date") and attr in DATETIME_READS:
                    yield self.finding(
                        module,
                        node.lineno,
                        f"wall-clock read {base}.{attr}()",
                    )
                elif base == "random" and attr != RANDOM_CTOR:
                    yield self.finding(
                        module,
                        node.lineno,
                        f"ambient RNG random.{attr}() uses the entropy-seeded "
                        "process-global generator — use a seeded "
                        "random.Random(seed)",
                    )
                elif base == "random" and attr == RANDOM_CTOR and not node.args:
                    yield self.finding(
                        module,
                        node.lineno,
                        "random.Random() without a seed is entropy-seeded — "
                        "pass an explicit seed",
                    )
            elif isinstance(func, ast.Name):
                origin = imported.get(func.id)
                if origin is None:
                    continue
                top, _, leaf = origin.rpartition(".")
                if top == "time" and leaf in CLOCK_READS:
                    yield self.finding(
                        module,
                        node.lineno,
                        f"wall-clock read {func.id}() (from time import {leaf})",
                    )
                elif origin == "random.Random" and not node.args:
                    yield self.finding(
                        module,
                        node.lineno,
                        "Random() without a seed is entropy-seeded — pass an "
                        "explicit seed",
                    )
                elif top == "random" and leaf != RANDOM_CTOR:
                    yield self.finding(
                        module,
                        node.lineno,
                        f"ambient RNG {func.id}() (from random import {leaf})",
                    )
