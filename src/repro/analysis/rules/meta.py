"""Meta rule: suppression comments must be well formed and justified.

``# repro: allow(<rule>): <reason>`` is the only escape hatch the other
rules honour, so its own hygiene is load-bearing: a suppression without a
reason is an unaudited exemption, and a suppression naming a rule that
does not exist is (at best) a typo silently suppressing nothing.  Both
are violations — and deliberately *cannot* be suppressed themselves.
"""

from __future__ import annotations

from typing import Iterator

from ..framework import Context, Finding, Rule, register
from ..loader import ModuleInfo


@register
class SuppressionHygiene(Rule):
    name = "suppression"
    description = (
        "every `# repro: allow(rule)` carries a written reason and names a "
        "registered rule"
    )

    def applies_to(self, module: ModuleInfo) -> bool:
        # Suppressions appear anywhere findings do, tests included.
        return True

    def check(self, module: ModuleInfo, context: Context) -> Iterator[Finding]:
        from ..framework import rule_names

        known = set(rule_names())
        for line, text in module.malformed_allows:
            yield self.finding(
                module,
                line,
                "malformed suppression (expected "
                f"`# repro: allow(<rule>): <reason>`): {text}",
            )
        for line, specs in sorted(module.suppressions.items()):
            for spec in specs:
                if spec.rule == self.name:
                    yield self.finding(
                        module, line, "the suppression rule cannot be suppressed"
                    )
                elif spec.rule not in known:
                    yield self.finding(
                        module,
                        line,
                        f"suppression names unknown rule {spec.rule!r}",
                    )
