"""Rule ``cache-discipline``: ``Nfa`` internals are written only in nfa.py.

Motivating incident (PR 7): the dense automata compilation is cached on
the ``Nfa`` instance and invalidated by the *managed properties*
(``states``/``initial``/``final`` setters) and the class's own mutators.
A noodler helper that re-pointed segment endpoints through a raw
attribute left a stale dense form attached to a shared copy — the
segment-endpoint aliasing bug the differential suite caught.  Writes that
bypass the managed surface are therefore banned everywhere outside
``automata/nfa.py`` itself: assignment, augmented assignment, deletion,
subscript stores and in-place mutator calls (``.add``/``.update``/...)
on ``_states``/``_initial``/``_final``/``_dense``/``_delta``/
``_by_symbol``/``_next_state`` attributes.  *Reads* stay legal — the
legacy oracles and the dense compiler walk ``_delta`` freely.

Tests are in scope: a test mutating automaton internals directly is
exactly how a stale-cache bug sneaks past the suite that exists to catch
it.  Build automata through the public mutators or assign whole sets
through the managed properties instead.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from ..framework import Context, Finding, Rule, register
from ..loader import ModuleInfo

#: Nfa.__slots__ members that make up the mutable core + dense cache
PROTECTED = frozenset(
    {"_states", "_initial", "_final", "_dense", "_delta", "_by_symbol", "_next_state"}
)
#: method names that mutate a set/dict in place
MUTATORS = frozenset(
    {
        "add",
        "append",
        "clear",
        "discard",
        "extend",
        "pop",
        "popitem",
        "remove",
        "setdefault",
        "update",
        "difference_update",
        "intersection_update",
        "symmetric_difference_update",
    }
)


def _protected_attr(node: ast.AST) -> Optional[str]:
    """The protected attribute name when ``node`` dereferences one."""
    if isinstance(node, ast.Attribute) and node.attr in PROTECTED:
        return node.attr
    if isinstance(node, ast.Subscript):
        return _protected_attr(node.value)
    return None


@register
class CacheDiscipline(Rule):
    name = "cache-discipline"
    description = (
        "no writes to Nfa._states/_initial/_final/_delta/_by_symbol/_dense "
        "outside automata/nfa.py"
    )

    def applies_to(self, module: ModuleInfo) -> bool:
        return module.relpath != "src/repro/automata/nfa.py"

    def check(self, module: ModuleInfo, context: Context) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                targets = node.targets if isinstance(node, ast.Assign) else [node.target]
                for target in targets:
                    elements = (
                        target.elts
                        if isinstance(target, (ast.Tuple, ast.List))
                        else [target]
                    )
                    for element in elements:
                        attr = _protected_attr(element)
                        if attr is not None:
                            yield self._write(module, node.lineno, attr)
            elif isinstance(node, ast.Delete):
                for target in node.targets:
                    attr = _protected_attr(target)
                    if attr is not None:
                        yield self._write(module, node.lineno, attr)
            elif isinstance(node, ast.Call):
                func = node.func
                if (
                    isinstance(func, ast.Attribute)
                    and func.attr in MUTATORS
                    and _protected_attr(func.value) is not None
                ):
                    yield self._write(
                        module, node.lineno, _protected_attr(func.value), func.attr
                    )

    def _write(
        self, module: ModuleInfo, line: int, attr: str, mutator: str = ""
    ) -> Finding:
        how = f".{mutator}(...)" if mutator else "assignment"
        return self.finding(
            module,
            line,
            f"direct write to Nfa internals ({attr} via {how}) bypasses the "
            "dense-cache invalidation — use the public mutators or the "
            "managed states/initial/final properties",
        )
