"""The initial ruleset — importing this package populates the registry.

Registration order is report order; keep the meta ``suppression`` rule
first so malformed allow-comments are always surfaced before the findings
they failed to suppress.
"""

from . import meta  # noqa: F401  (suppression hygiene)
from . import checkpoints  # noqa: F401
from . import determinism  # noqa: F401
from . import cache_discipline  # noqa: F401
from . import exceptions  # noqa: F401
from . import async_safety  # noqa: F401
from . import spawn_safety  # noqa: F401
