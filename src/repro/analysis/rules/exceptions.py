"""Rule ``exception-hygiene``: no silent blanket handlers in the engine.

The PR-6 robustness contract is that *every* non-verdict has a typed
:class:`repro.budget.UnknownReason` and that budget exhaustion
(:class:`repro.budget.BudgetExceeded`) always unwinds a check — a bare
``except:`` or ``except Exception:`` deep in an engine layer can swallow
both, turning a clean structured timeout into a wrong answer or a silent
stall (the seed codebase's blanket handler in ``solver.py`` did exactly
that before PR 6 replaced it).

Flagged in engine layers (``automata/``, ``core/``, ``eqsolver/``,
``lia/``, ``solver/``, ``strings/``): any ``except`` clause catching
nothing-in-particular (bare), ``Exception`` or ``BaseException``, unless
the handler visibly keeps the contract by

* re-raising (a bare ``raise``, or raising/propagating
  ``BudgetExceeded``), or
* converting to the typed layer (the handler references
  ``UnknownReason``/``UnknownKind``/``BudgetExceeded``).

Boundary layers (``serve/``, ``smtlib/``, ``benchgen/``, ``testing/``)
are exempt: a server keeping a connection alive or a best-effort warmup
loop legitimately catches everything.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..framework import Context, Finding, Rule, register
from ..loader import ModuleInfo

ENGINE_PACKAGES = ("automata", "core", "eqsolver", "lia", "solver", "strings")
#: names whose appearance in a handler shows typed-reason conversion
TYPED_NAMES = frozenset({"UnknownReason", "UnknownKind", "BudgetExceeded"})


def _blanket(handler: ast.ExceptHandler) -> str:
    """The blanket class name this handler catches, or ''."""
    if handler.type is None:
        return "bare except"
    types = (
        handler.type.elts if isinstance(handler.type, ast.Tuple) else [handler.type]
    )
    for entry in types:
        if isinstance(entry, ast.Name) and entry.id in ("Exception", "BaseException"):
            return f"except {entry.id}"
    return ""


def _keeps_contract(handler: ast.ExceptHandler) -> bool:
    for node in ast.walk(handler):
        if isinstance(node, ast.Raise):
            return True
        if isinstance(node, ast.Name) and node.id in TYPED_NAMES:
            return True
    return False


@register
class ExceptionHygiene(Rule):
    name = "exception-hygiene"
    description = (
        "no bare/blanket except in engine layers unless it re-raises or "
        "converts to a typed UnknownReason"
    )

    def applies_to(self, module: ModuleInfo) -> bool:
        return any(module.in_package(package) for package in ENGINE_PACKAGES)

    def check(self, module: ModuleInfo, context: Context) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            blanket = _blanket(node)
            if not blanket or _keeps_contract(node):
                continue
            yield self.finding(
                module,
                node.lineno,
                f"{blanket} swallows BudgetExceeded and engine errors — "
                "catch the specific exception, re-raise, or convert to a "
                "typed UnknownReason",
            )
