"""Rule ``async-safety``: no blocking calls inside ``async def`` bodies.

``repro.serve`` runs one asyncio event loop in the parent process; every
coroutine that blocks stalls *all* connections, the portfolio timers and
the hung-fleet watchdog at once.  The codebase's idiom for unavoidable
blocking work is ``await asyncio.to_thread(...)`` (warm payload builds,
executor shutdown) — this rule catches the direct calls that bypass it:

* ``time.sleep`` (use ``await asyncio.sleep``),
* synchronous file I/O via the ``open`` builtin,
* the ``socket`` module's blocking constructors/calls,
* ``subprocess`` invocations,
* ``<pool>.submit(...).result()`` — the chained form synchronously joins
  a worker future on the loop (``await asyncio.wrap_future`` instead).

Nested synchronous ``def``s are excluded from the scan: a closure defined
inside a coroutine typically runs elsewhere (an executor, a done
callback), so only code the coroutine itself executes is held to the
rule.  The rule scans the whole tree — any module may grow a coroutine —
and reports nothing where no ``async def`` exists.
"""

from __future__ import annotations

import ast
from typing import Iterator, List

from ..framework import Context, Finding, Rule, register
from ..loader import ModuleInfo

#: module-level call bases that block by nature
BLOCKING_MODULES = frozenset({"socket", "subprocess"})


def _async_body_nodes(func: ast.AsyncFunctionDef) -> Iterator[ast.AST]:
    """Nodes executed by the coroutine itself (nested sync defs excluded)."""
    stack: List[ast.AST] = list(func.body)
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.Lambda)):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


@register
class AsyncSafety(Rule):
    name = "async-safety"
    description = (
        "no time.sleep / sync file-socket-subprocess I/O / future.result() "
        "joins inside async def bodies"
    )

    def applies_to(self, module: ModuleInfo) -> bool:
        return not module.is_test

    def check(self, module: ModuleInfo, context: Context) -> Iterator[Finding]:
        for outer in ast.walk(module.tree):
            if not isinstance(outer, ast.AsyncFunctionDef):
                continue
            for node in _async_body_nodes(outer):
                if not isinstance(node, ast.Call):
                    continue
                message = self._blocking_call(node)
                if message:
                    yield self.finding(
                        module,
                        node.lineno,
                        f"blocking call in async def {outer.name}(): {message}",
                    )

    @staticmethod
    def _blocking_call(node: ast.Call) -> str:
        func = node.func
        if isinstance(func, ast.Name) and func.id == "open":
            return "open() — wrap in await asyncio.to_thread(...)"
        if isinstance(func, ast.Attribute):
            if isinstance(func.value, ast.Name):
                base, attr = func.value.id, func.attr
                if base == "time" and attr == "sleep":
                    return "time.sleep() — use await asyncio.sleep()"
                if base in BLOCKING_MODULES:
                    return f"{base}.{attr}() — blocking {base} call on the loop"
            if (
                func.attr == "result"
                and isinstance(func.value, ast.Call)
                and isinstance(func.value.func, ast.Attribute)
                and func.value.func.attr == "submit"
            ):
                return (
                    "submit(...).result() joins a worker future on the loop — "
                    "await asyncio.wrap_future(...) instead"
                )
        return ""
