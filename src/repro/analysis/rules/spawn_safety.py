"""Rule ``spawn-safety``: only spawn-picklable objects cross to workers.

The serve fleet uses the ``spawn`` multiprocessing context (the only one
safe with an asyncio parent), so everything handed to
``executor.submit(...)`` or ``ProcessPoolExecutor(initializer=...,
initargs=...)`` is pickled in the parent and unpickled in a fresh
interpreter.  Lambdas, functions/classes defined inside another function,
and bound methods of local objects all fail that round-trip — but only at
*runtime*, in the worker, where the traceback surfaces as a broken pool
and a retried job (``tests/test_serve_pickle.py`` exists because of
exactly this failure mode).

Statically flagged inside ``serve/``:

* a ``lambda`` anywhere in a submit/initializer argument,
* a name that resolves to a ``def``/``class`` nested inside a function in
  the same module (module-level callables pickle by qualified name and
  are fine), and
* comprehensions producing lambdas in ``initargs``.

The rule is syntactic and local by design: it will not chase a callable
through a variable reassignment, but the fleet code keeps submissions
direct (``submit(run_job, spec)``), so the simple form is the one worth
locking in.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Set

from ..framework import Context, Finding, Rule, register
from ..loader import ModuleInfo


def _locally_defined(tree: ast.Module) -> Set[str]:
    """Names of defs/classes nested inside any function scope."""
    nested: Set[str] = set()

    def visit(node: ast.AST, inside_function: bool) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                if inside_function:
                    nested.add(child.name)
                visit(
                    child,
                    inside_function
                    or isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)),
                )
            else:
                visit(child, inside_function)

    visit(tree, False)
    return nested


@register
class SpawnSafety(Rule):
    name = "spawn-safety"
    description = (
        "no lambdas, closures or locally-defined classes submitted to the "
        "spawn-based worker fleet"
    )

    def applies_to(self, module: ModuleInfo) -> bool:
        return module.in_package("serve")

    def check(self, module: ModuleInfo, context: Context) -> Iterator[Finding]:
        nested_names = _locally_defined(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            arguments: List[ast.expr] = []
            where = ""
            func = node.func
            if isinstance(func, ast.Attribute) and func.attr == "submit":
                arguments = list(node.args) + [kw.value for kw in node.keywords]
                where = "submit(...)"
            elif isinstance(func, ast.Name) and func.id == "ProcessPoolExecutor":
                for keyword in node.keywords:
                    if keyword.arg in ("initializer", "initargs"):
                        arguments.append(keyword.value)
                where = "ProcessPoolExecutor(...)"
            if not arguments:
                continue
            for argument in arguments:
                for finding in self._audit(module, argument, where, nested_names):
                    yield finding

    def _audit(
        self,
        module: ModuleInfo,
        argument: ast.expr,
        where: str,
        nested_names: Set[str],
    ) -> Iterator[Finding]:
        for node in ast.walk(argument):
            if isinstance(node, ast.Lambda):
                yield self.finding(
                    module,
                    node.lineno,
                    f"lambda passed through {where} cannot be pickled by the "
                    "spawn context — use a module-level function",
                )
            elif isinstance(node, ast.Name) and node.id in nested_names:
                yield self.finding(
                    module,
                    node.lineno,
                    f"{node.id!r} is defined inside a function and passed "
                    f"through {where} — spawn pickling needs module-level "
                    "defs/classes",
                )
