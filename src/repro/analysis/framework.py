"""Rule framework: findings, the registry, suppression accounting.

A :class:`Rule` inspects one :class:`~repro.analysis.loader.ModuleInfo` at
a time (with the whole-program :class:`~repro.analysis.callgraph.CallGraph`
available through the :class:`Context`) and yields :class:`Finding`s.
The runner applies the in-source suppressions afterwards, so rules stay
pure detectors — they never need to know about ``# repro: allow``.

Rules self-register via :func:`register`, which keeps the CLI, the
reporters and the test fixtures all working from one list.
"""

from __future__ import annotations

import fnmatch
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence

from .loader import ModuleInfo


class AnalysisError(Exception):
    """A usage or configuration error (unknown rule, unreadable path)."""


@dataclass
class Finding:
    """One rule violation at one source location."""

    rule: str
    relpath: str
    line: int
    message: str
    #: set by the runner when an in-source allow-comment covers the finding
    suppressed: bool = False
    suppression_reason: str = ""

    def location(self) -> str:
        return f"{self.relpath}:{self.line}"

    def to_json(self) -> Dict[str, object]:
        data: Dict[str, object] = {
            "rule": self.rule,
            "path": self.relpath,
            "line": self.line,
            "message": self.message,
        }
        if self.suppressed:
            data["suppressed"] = True
            data["reason"] = self.suppression_reason
        return data


class Rule:
    """Base class for one checkable invariant.

    Subclasses set ``name``/``description`` and implement :meth:`check`;
    :meth:`applies_to` is the scope predicate (default: engine sources
    only, not tests).  Rules must be deterministic and side-effect free —
    the analyzer runs them in registration order over modules in path
    order, so output is stable across runs and machines.
    """

    name: str = ""
    description: str = ""

    def applies_to(self, module: ModuleInfo) -> bool:
        return not module.is_test

    def check(self, module: ModuleInfo, context: "Context") -> Iterator[Finding]:
        raise NotImplementedError

    def finding(self, module: ModuleInfo, line: int, message: str) -> Finding:
        return Finding(rule=self.name, relpath=module.relpath, line=line, message=message)


class Context:
    """Whole-program facts shared by every rule invocation."""

    def __init__(self, modules: Sequence[ModuleInfo]) -> None:
        from .callgraph import CallGraph

        self.modules = list(modules)
        self.callgraph = CallGraph(self.modules)


_REGISTRY: List[Rule] = []


def register(cls):
    """Class decorator adding one rule instance to the global registry."""
    if not cls.name:
        raise ValueError(f"rule {cls.__name__} must set a name")
    if any(rule.name == cls.name for rule in _REGISTRY):
        raise ValueError(f"duplicate rule name {cls.name!r}")
    _REGISTRY.append(cls())
    return cls


def all_rules() -> List[Rule]:
    """Every registered rule, in registration order (import triggers it)."""
    from . import rules as _rules  # noqa: F401  (import populates the registry)

    return list(_REGISTRY)


def rule_names() -> List[str]:
    return [rule.name for rule in all_rules()]


def select_rules(names: Optional[Iterable[str]]) -> List[Rule]:
    """Resolve ``--rule`` selections (exact names or fnmatch patterns)."""
    rules = all_rules()
    if not names:
        return rules
    selected: List[Rule] = []
    for pattern in names:
        matched = [rule for rule in rules if fnmatch.fnmatchcase(rule.name, pattern)]
        if not matched:
            known = ", ".join(rule.name for rule in rules)
            raise AnalysisError(f"unknown rule {pattern!r} (known: {known})")
        for rule in matched:
            if rule not in selected:
                selected.append(rule)
    return selected


@dataclass
class Report:
    """The outcome of one analysis run."""

    findings: List[Finding] = field(default_factory=list)
    files_scanned: int = 0
    rules_run: List[str] = field(default_factory=list)
    #: wall seconds for the full run, recorded so the CI lint job can
    #: assert the analyzer stays cheap enough to never be skipped
    runtime_seconds: float = 0.0

    @property
    def unsuppressed(self) -> List[Finding]:
        return [finding for finding in self.findings if not finding.suppressed]

    @property
    def suppressed(self) -> List[Finding]:
        return [finding for finding in self.findings if finding.suppressed]

    @property
    def ok(self) -> bool:
        return not self.unsuppressed

    def by_rule(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for finding in self.unsuppressed:
            counts[finding.rule] = counts.get(finding.rule, 0) + 1
        return counts

    def to_json(self) -> Dict[str, object]:
        return {
            "ok": self.ok,
            "files_scanned": self.files_scanned,
            "rules": self.rules_run,
            "runtime_seconds": round(self.runtime_seconds, 4),
            "violations": len(self.unsuppressed),
            "suppressed": len(self.suppressed),
            "by_rule": self.by_rule(),
            "findings": [finding.to_json() for finding in self.findings],
        }
