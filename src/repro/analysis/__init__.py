"""Repo-invariant static analysis (``python -m repro.analysis``).

Every standing invariant this solver depends on is, at run time, enforced
only by whichever dynamic test happens to trip it: the un-checkpointed
presolve loop of PR 6 was found by a timeout sweep, the dense-cache
aliasing bug of PR 7 by the differential suite.  This package turns those
invariants into *static* rules checked on every push, the same way
verification tooling encodes system-specific soundness conditions as
checkable side conditions rather than test luck.

Architecture (one module per box)::

    loader      parse src/repro + tests into ModuleInfo (AST + comments)
    callgraph   cheap name-based interprocedural "reaches a checkpoint"
    framework   Rule base class, registry, Finding, suppressions, Report
    rules/      one module per invariant (see below)
    report      human and --json renderers
    __main__    the CLI entry point (exit 0 iff no unsuppressed finding)

The initial ruleset — each rule's docstring names the incident that
motivated it:

* ``checkpoint-coverage`` — unbounded loops in engine modules must reach
  :func:`repro.budget.checkpoint` directly or via a callee.
* ``determinism`` — no wall-clock or ambient-RNG reads outside the budget
  layer and the serve timing paths.
* ``cache-discipline`` — no writes to ``Nfa`` internals outside
  ``automata/nfa.py`` (the managed properties invalidate the dense cache;
  raw attribute writes silently don't).
* ``exception-hygiene`` — no bare/blanket exception handlers in engine
  layers unless they re-raise or convert to a typed ``UnknownReason``.
* ``async-safety`` — no blocking calls inside ``async def`` bodies.
* ``spawn-safety`` — nothing unpicklable submitted to the worker fleet.

Findings are suppressed in place with ``# repro: allow(<rule>): <reason>``
— the reason is mandatory, and a reason-less suppression is itself a
violation (rule ``suppression``).
"""

from __future__ import annotations

from .framework import AnalysisError, Finding, Report, Rule, all_rules, rule_names
from .loader import ModuleInfo, load_modules, repo_root
from .runner import analyze, analyze_paths

__all__ = [
    "AnalysisError",
    "Finding",
    "ModuleInfo",
    "Report",
    "Rule",
    "all_rules",
    "analyze",
    "analyze_paths",
    "load_modules",
    "repo_root",
    "rule_names",
]
