"""Render an analysis :class:`~repro.analysis.framework.Report`."""

from __future__ import annotations

import json
from typing import List

from .framework import Report


def render_human(report: Report, verbose: bool = False) -> str:
    """The terminal report: one line per violation, then a summary."""
    lines: List[str] = []
    for finding in report.unsuppressed:
        lines.append(f"{finding.location()}: [{finding.rule}] {finding.message}")
    if verbose and report.suppressed:
        lines.append("")
        lines.append("suppressed:")
        for finding in report.suppressed:
            lines.append(
                f"  {finding.location()}: [{finding.rule}] {finding.message} "
                f"(allowed: {finding.suppression_reason})"
            )
    summary = (
        f"{len(report.unsuppressed)} violation"
        f"{'' if len(report.unsuppressed) == 1 else 's'} "
        f"({len(report.suppressed)} suppressed) in {report.files_scanned} files "
        f"[{report.runtime_seconds:.2f}s, rules: {', '.join(report.rules_run)}]"
    )
    if lines:
        lines.append("")
    lines.append(summary)
    return "\n".join(lines)


def render_json(report: Report) -> str:
    return json.dumps(report.to_json(), indent=2, sort_keys=True)
