"""Pre-dense set-based automata algorithms, kept as differential oracles.

These are the straightforward dict-of-dict-of-set implementations that
:mod:`repro.automata.operations` and :class:`repro.automata.nfa.Nfa` used
before the integer-dense rewrite.  They are no longer on any solver path;
they exist so that

* ``tests/test_automata_dense.py`` can differential-test the dense
  implementations against an independent oracle on randomized inputs, and
* the ``automata`` workload in ``benchmarks/perf/bench_lia.py`` can measure
  the dense speedup as an in-process legacy/dense wall-time ratio.

They deliberately do not call :func:`repro.budget.checkpoint` — as oracles
they must be pure functions of their inputs, independent of any active
budget.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, FrozenSet, Iterable, Optional, Set, Tuple

from .nfa import EPSILON, Nfa, State
from .operations import StateBudgetExceeded


def legacy_accepts(nfa: Nfa, word: str) -> bool:
    """Membership by explicit ε-closure subset simulation."""
    current = nfa.epsilon_closure(nfa.initial)
    for ch in word:
        nxt: Set[State] = set()
        for state in current:
            nxt |= nfa._delta.get(state, {}).get(ch, set())
        if not nxt:
            return False
        current = nfa.epsilon_closure(nxt)
    return any(state in nfa.final for state in current)


def legacy_reachable_states(nfa: Nfa) -> Set[State]:
    """Forward reachability with an explicit set-based worklist."""
    seen: Set[State] = set(nfa.initial)
    work = deque(nfa.initial)
    while work:
        state = work.popleft()
        for _, dst in nfa.transitions_from(state):
            if dst not in seen:
                seen.add(dst)
                work.append(dst)
    return seen


def legacy_coreachable_states(nfa: Nfa) -> Set[State]:
    """Backward reachability from the final states."""
    predecessors: Dict[State, Set[State]] = {}
    for src, _, dst in nfa.iter_transitions():
        predecessors.setdefault(dst, set()).add(src)
    seen: Set[State] = set(nfa.final)
    work = deque(nfa.final)
    while work:
        state = work.popleft()
        for src in predecessors.get(state, set()):
            if src not in seen:
                seen.add(src)
                work.append(src)
    return seen


def legacy_is_empty(nfa: Nfa) -> bool:
    """Emptiness via materialised forward reachability."""
    return not (legacy_reachable_states(nfa) & nfa.final)


def legacy_trim(nfa: Nfa) -> Nfa:
    """Restriction to useful states, re-adding transitions one by one."""
    useful = legacy_reachable_states(nfa) & legacy_coreachable_states(nfa)
    result = Nfa(nfa.alphabet)
    result.states = set(useful)
    result.initial = nfa.initial & useful
    result.final = nfa.final & useful
    for src, symbol, dst in nfa.iter_transitions():
        if src in useful and dst in useful:
            result.add_transition(src, symbol, dst)
    result.states &= useful | result.initial | result.final
    if not result.states and nfa.initial & nfa.final:
        state = next(iter(nfa.initial & nfa.final))
        result.states = {state}
        result.initial = {state}
        result.final = {state}
    result._sync_state_counter()
    return result


def legacy_remove_epsilon(nfa: Nfa) -> Nfa:
    """ε-elimination by per-state frozenset closures."""
    result = Nfa(nfa.alphabet)
    result.states = set(nfa.states)
    result.initial = set(nfa.initial)
    result._sync_state_counter()
    closures: Dict[State, FrozenSet[State]] = {
        state: nfa.epsilon_closure([state]) for state in nfa.states
    }
    for state in nfa.states:
        closure = closures[state]
        if closure & nfa.final:
            result.make_final(state)
        for member in closure:
            for symbol, dst in nfa.transitions_from(member):
                if symbol is EPSILON:
                    continue
                result.add_transition(state, symbol, dst)
    return result


def legacy_determinize(
    nfa: Nfa,
    alphabet: Optional[Iterable[str]] = None,
    max_states: Optional[int] = None,
) -> Tuple[Nfa, Dict[FrozenSet[State], State]]:
    """Subset construction on frozensets of states."""
    sigma = set(alphabet) if alphabet is not None else set(nfa.alphabet)
    dfa = Nfa(sigma)
    subset_to_state: Dict[FrozenSet[State], State] = {}

    def state_for(subset: FrozenSet[State]) -> State:
        if subset not in subset_to_state:
            if max_states is not None and len(subset_to_state) >= max_states:
                raise StateBudgetExceeded(f"more than {max_states} DFA states")
            subset_to_state[subset] = dfa.add_state()
            if subset & nfa.final:
                dfa.make_final(subset_to_state[subset])
        return subset_to_state[subset]

    start = nfa.epsilon_closure(nfa.initial)
    start_state = state_for(start)
    dfa.make_initial(start_state)
    work = deque([start])
    processed: Set[FrozenSet[State]] = {start}
    while work:
        subset = work.popleft()
        src = state_for(subset)
        for symbol in sigma:
            on_symbol = nfa.transitions_on(symbol)
            targets: Set[State] = set()
            if on_symbol:
                for state in subset:
                    dsts = on_symbol.get(state)
                    if dsts:
                        targets |= dsts
            closure = nfa.epsilon_closure(targets)
            dst = state_for(closure)
            dfa.add_transition(src, symbol, dst)
            if closure not in processed:
                processed.add(closure)
                work.append(closure)
    return dfa, subset_to_state


def legacy_complement(nfa: Nfa, alphabet: Iterable[str]) -> Nfa:
    """Complement through the frozenset subset construction."""
    sigma = set(alphabet)
    dfa, _ = legacy_determinize(nfa, sigma)
    result = dfa.copy()
    result.final = set(dfa.states) - set(dfa.final)
    return result


def legacy_intersection(left: Nfa, right: Nfa) -> Nfa:
    """Fully materialised pair-product construction."""
    left_nf = legacy_remove_epsilon(left) if left.has_epsilon() else left
    right_nf = legacy_remove_epsilon(right) if right.has_epsilon() else right
    result = Nfa(left_nf.alphabet & right_nf.alphabet)
    pair_to_state: Dict[Tuple[State, State], State] = {}

    def state_for(pair: Tuple[State, State]) -> State:
        if pair not in pair_to_state:
            pair_to_state[pair] = result.add_state()
            if pair[0] in left_nf.final and pair[1] in right_nf.final:
                result.make_final(pair_to_state[pair])
        return pair_to_state[pair]

    work: deque = deque()
    for p in left_nf.initial:
        for q in right_nf.initial:
            state = state_for((p, q))
            result.make_initial(state)
            work.append((p, q))
    seen: Set[Tuple[State, State]] = set(
        (p, q) for p in left_nf.initial for q in right_nf.initial
    )
    while work:
        p, q = work.popleft()
        src = state_for((p, q))
        left_on = left_nf.transitions_map(p)
        right_on = right_nf.transitions_map(q)
        if len(right_on) < len(left_on):
            common = right_on.keys() & left_on.keys()
        else:
            common = left_on.keys() & right_on.keys()
        for symbol in common:
            for p_dst in left_on[symbol]:
                for q_dst in right_on[symbol]:
                    dst_pair = (p_dst, q_dst)
                    dst = state_for(dst_pair)
                    result.add_transition(src, symbol, dst)
                    if dst_pair not in seen:
                        seen.add(dst_pair)
                        work.append(dst_pair)
    return result


def legacy_intersection_empty(left: Nfa, right: Nfa) -> bool:
    """Product emptiness by building and trimming the whole product."""
    return legacy_is_empty(legacy_intersection(left, right))


def legacy_difference(left: Nfa, right: Nfa, alphabet: Iterable[str]) -> Nfa:
    """Difference via complementation of the right operand."""
    return legacy_intersection(left, legacy_complement(right, alphabet))


def legacy_is_subset(
    left: Nfa, right: Nfa, alphabet: Optional[Iterable[str]] = None
) -> bool:
    """Inclusion by materialising the difference automaton."""
    sigma = set(alphabet) if alphabet is not None else left.alphabet | right.alphabet
    return legacy_is_empty(legacy_trim(legacy_difference(left, right, sigma)))
