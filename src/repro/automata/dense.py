"""Integer-dense automata core: bitset state sets and hash-consed interning.

This module is the data-layout rewrite behind the :class:`~repro.automata.nfa.Nfa`
facade.  A :class:`DenseNfa` is a *frozen* compilation of an ``Nfa``:

* states are contiguous integers ``0 .. n-1`` (``state_ids`` maps them back
  to the facade's identifiers),
* state sets are Python-int **bitsets** — CPython's arbitrary-precision
  integers make every union/intersection/step a word-parallel bitwise op,
  one machine word for blocks of ≤64 states and chunked 30-bit limbs above
  that, with no numpy dependency,
* transitions are stored twice: as per-symbol successor-mask rows (the form
  subset construction and products consume) and as a flat ``array``-backed
  edge list (the form iteration, serialisation and conversions consume).

On top of the layout the module provides the lazy product walks — emptiness
of an intersection and language inclusion decided on the fly, stopping at
the first accepting pair instead of materialising the product — and the
**hash-consed interning** table: structurally identical automata (modulo
state renaming) are collapsed onto one canonical ``Nfa``/``DenseNfa`` pair,
which is what lets :class:`~repro.strings.normal_form.NormalizationCache`
share automata across atoms *and across sessions*.

Budget accounting: every loop whose trip count depends on the input charges
:func:`repro.budget.checkpoint` with a cost scaled by the number of 64-bit
words per bitset (``(n + 63) // 64``), so the step-limit determinism
contract of the budget layer (same step cap ⇒ same verdict) holds on the
dense paths — costs are a pure function of the automaton's structure.
"""

from __future__ import annotations

from array import array
from collections import deque
from typing import Dict, Iterator, List, Optional, Tuple

from ..budget import checkpoint
from .nfa import EPSILON, Nfa, State

Mask = int

#: module-wide counters surfaced through ``SolveResult.stats`` /
#: ``Session.statistics()`` (the solver snapshots deltas around each check)
GLOBAL_STATS: Dict[str, int] = {
    "automata_dense_compilations": 0,
    "automata_interning_hits": 0,
    "automata_interning_misses": 0,
    # Hits on entries seeded by a warm-start payload (the server's worker
    # fleet re-interns the parent's hot automata at startup; this counter
    # is the proof that cross-worker sharing actually engages).
    "automata_interning_warm_hits": 0,
}


def stats_snapshot() -> Dict[str, int]:
    """A copy of the module counters (for before/after deltas)."""
    return dict(GLOBAL_STATS)


def iter_bits(mask: Mask) -> Iterator[int]:
    """Iterate over the set bit positions of ``mask`` (ascending)."""
    while mask:
        low = mask & -mask
        yield low.bit_length() - 1
        mask ^= low


class DenseNfa:
    """A frozen, integer-dense compilation of an :class:`Nfa`.

    Instances are immutable once built; every mutating method and managed
    attribute assignment on the source ``Nfa`` drops its cached ``DenseNfa``.
    """

    __slots__ = (
        "n",
        "alphabet",
        "symbols",
        "symbol_index",
        "rows",
        "eps",
        "initial",
        "final",
        "state_ids",
        "index",
        "edge_src",
        "edge_sym",
        "edge_dst",
        "_words",
        "_closures",
        "_out_masks",
        "_in_masks",
        "_reachable",
        "_coreachable",
        "_eps_free",
        "_key",
    )

    def __init__(
        self,
        n: int,
        alphabet: Tuple[str, ...],
        symbols: Tuple[str, ...],
        rows: Tuple[Tuple[Mask, ...], ...],
        eps: Optional[Tuple[Mask, ...]],
        initial: Mask,
        final: Mask,
        state_ids: Tuple[State, ...],
    ) -> None:
        self.n = n
        #: the declared alphabet (complementation depends on it, so it is
        #: part of the canonical key even when some symbols are unused)
        self.alphabet = alphabet
        #: sorted symbols that actually label a transition
        self.symbols = symbols
        self.symbol_index = {symbol: k for k, symbol in enumerate(symbols)}
        #: rows[k][s] = bitset of successors of state s on symbols[k]
        self.rows = rows
        #: eps[s] = bitset of ε-successors (``None`` when ε-free)
        self.eps = eps
        self.initial = initial
        self.final = final
        #: dense index -> original Nfa state id (sorted order)
        self.state_ids = state_ids
        self.index = {state: i for i, state in enumerate(state_ids)}
        #: 64-bit words per bitset: the unit of budget-cost accounting
        self._words = max(1, (n + 63) >> 6)
        self._closures: Optional[List[Mask]] = None
        self._out_masks: Optional[List[Mask]] = None
        self._in_masks: Optional[List[Mask]] = None
        self._reachable: Optional[Mask] = None
        self._coreachable: Optional[Mask] = None
        self._eps_free: Optional["DenseNfa"] = None
        self._key: Optional[Tuple] = None
        # Flat array-backed edge list (symbol index, -1 for ε): compact,
        # cache-friendly iteration for conversions and serialisation.
        # Charge the matrix scan at the door so every construction site —
        # not just from_nfa — pays for the build.
        checkpoint("automata.dense", (len(symbols) + 1) * self._words)
        srcs: array = array("l")
        syms: array = array("l")
        dsts: array = array("l")
        for k, row in enumerate(rows):
            for s in range(n):
                mask = row[s]
                while mask:
                    low = mask & -mask
                    srcs.append(s)
                    syms.append(k)
                    dsts.append(low.bit_length() - 1)
                    mask ^= low
        if eps is not None:
            for s in range(n):
                mask = eps[s]
                while mask:
                    low = mask & -mask
                    srcs.append(s)
                    syms.append(-1)
                    dsts.append(low.bit_length() - 1)
                    mask ^= low
        self.edge_src = srcs
        self.edge_sym = syms
        self.edge_dst = dsts

    # ------------------------------------------------------------------
    # Compilation
    # ------------------------------------------------------------------
    @classmethod
    def from_nfa(cls, nfa: Nfa) -> "DenseNfa":
        """Compile ``nfa`` into the dense form (states in sorted-id order)."""
        order = tuple(sorted(nfa.states))
        index = {state: i for i, state in enumerate(order)}
        n = len(order)
        symbols = tuple(sorted(nfa.alphabet))
        rows_list: List[List[Mask]] = []
        used_symbols: List[str] = []
        for symbol in symbols:
            on_symbol = nfa.transitions_on(symbol)
            if not on_symbol:
                continue
            row = [0] * n
            for src, dsts in on_symbol.items():
                mask = 0
                for dst in dsts:
                    mask |= 1 << index[dst]
                row[index[src]] = mask
            used_symbols.append(symbol)
            rows_list.append(row)
        eps_map = nfa.transitions_on(EPSILON)
        eps: Optional[Tuple[Mask, ...]] = None
        if eps_map:
            eps_row = [0] * n
            for src, dsts in eps_map.items():
                mask = 0
                for dst in dsts:
                    mask |= 1 << index[dst]
                eps_row[index[src]] = mask
            eps = tuple(eps_row)
        initial = 0
        for state in nfa.initial:
            initial |= 1 << index[state]
        final = 0
        for state in nfa.final:
            final |= 1 << index[state]
        GLOBAL_STATS["automata_dense_compilations"] += 1
        # One charge per compilation, scaled by the edge count: compiling is
        # a single pass over the transition structure.
        checkpoint("automata.dense", 1 + sum(len(r) for r in rows_list) // 64)
        return cls(
            n,
            symbols,
            tuple(used_symbols),
            tuple(tuple(row) for row in rows_list),
            eps,
            initial,
            final,
            order,
        )

    # ------------------------------------------------------------------
    # Conversions
    # ------------------------------------------------------------------
    def ids_of(self, mask: Mask) -> set:
        """The original state ids of the dense states set in ``mask``."""
        ids = self.state_ids
        return {ids[i] for i in iter_bits(mask)}

    def to_nfa(self) -> Nfa:
        """Materialise a facade :class:`Nfa` with contiguous states 0..n-1.

        The returned automaton carries this dense form pre-cached (when the
        compiled ids are already contiguous), so consumers pay no second
        compilation.
        """
        checkpoint("automata.dense", (len(self.symbols) + 1) * self._words)
        nfa = Nfa(self.alphabet)
        nfa.states = set(range(self.n))
        nfa.initial = set(iter_bits(self.initial))
        nfa.final = set(iter_bits(self.final))
        nfa._sync_state_counter()
        delta = nfa._delta
        by_symbol = nfa._by_symbol
        for k, symbol in enumerate(self.symbols):
            row = self.rows[k]
            on_symbol: Dict[State, set] = {}
            for s in range(self.n):
                mask = row[s]
                if mask:
                    targets = set(iter_bits(mask))
                    on_symbol[s] = targets
                    delta.setdefault(s, {})[symbol] = targets
            if on_symbol:
                by_symbol[symbol] = on_symbol
        if self.eps is not None:
            on_eps: Dict[State, set] = {}
            for s in range(self.n):
                mask = self.eps[s]
                if mask:
                    targets = set(iter_bits(mask))
                    on_eps[s] = targets
                    delta.setdefault(s, {})[EPSILON] = targets
            if on_eps:
                by_symbol[EPSILON] = on_eps
        if self.state_ids == tuple(range(self.n)):
            # repro: allow(cache-discipline): priming a freshly built Nfa with its own dense form — nothing stale can be cached yet
            nfa._dense = self
        return nfa

    # ------------------------------------------------------------------
    # Canonical key (hash-consing)
    # ------------------------------------------------------------------
    def canonical_key(self) -> Tuple:
        """A structural key: equal iff the automata are identical modulo
        state renaming (compilation sorts states, so two renamings of the
        same structure compile to equal rows)."""
        key = self._key
        if key is None:
            key = self._key = (
                self.n,
                self.alphabet,
                self.symbols,
                self.initial,
                self.final,
                self.rows,
                self.eps,
            )
        return key

    # ------------------------------------------------------------------
    # Bitset primitives
    # ------------------------------------------------------------------
    def closures(self) -> List[Mask]:
        """Per-state ε-closure masks (identity rows when ε-free)."""
        closures = self._closures
        if closures is None:
            n = self.n
            if self.eps is None:
                closures = [1 << s for s in range(n)]
            else:
                eps = self.eps
                closures = [(1 << s) | eps[s] for s in range(n)]
                # Iterate to fixpoint: each round ORs successors' closures in.
                # Rounds are bounded by the ε-graph's longest simple path.
                changed = True
                while changed:
                    changed = False
                    checkpoint("automata.dense", self._words)
                    for s in range(n):
                        mask = closures[s]
                        merged = mask
                        rest = mask & ~(1 << s)
                        while rest:
                            low = rest & -rest
                            merged |= closures[low.bit_length() - 1]
                            rest ^= low
                        if merged != mask:
                            closures[s] = merged
                            changed = True
            self._closures = closures
        return closures

    def closure_of(self, mask: Mask) -> Mask:
        """The ε-closure of a state-set mask."""
        if self.eps is None:
            return mask
        closures = self.closures()
        result = mask
        for s in iter_bits(mask):
            result |= closures[s]
        return result

    def step(self, mask: Mask, k: int) -> Mask:
        """One symbol step: the union of ``rows[k][s]`` over set states."""
        row = self.rows[k]
        result = 0
        while mask:
            low = mask & -mask
            result |= row[low.bit_length() - 1]
            mask ^= low
        return result

    def out_masks(self) -> List[Mask]:
        """Per-state union of all successor masks (every symbol + ε)."""
        masks = self._out_masks
        if masks is None:
            checkpoint("automata.dense", (len(self.rows) + 1) * self._words)
            masks = [0] * self.n
            for row in self.rows:
                for s in range(self.n):
                    if row[s]:
                        masks[s] |= row[s]
            if self.eps is not None:
                for s in range(self.n):
                    if self.eps[s]:
                        masks[s] |= self.eps[s]
            self._out_masks = masks
        return masks

    def in_masks(self) -> List[Mask]:
        """Per-state union of all predecessor masks (transposed adjacency)."""
        masks = self._in_masks
        if masks is None:
            checkpoint("automata.dense", (len(self.rows) + 1) * self._words)
            masks = [0] * self.n
            for row in self.rows:
                for s in range(self.n):
                    mask = row[s]
                    bit = 1 << s
                    while mask:
                        low = mask & -mask
                        masks[low.bit_length() - 1] |= bit
                        mask ^= low
            if self.eps is not None:
                for s in range(self.n):
                    mask = self.eps[s]
                    bit = 1 << s
                    while mask:
                        low = mask & -mask
                        masks[low.bit_length() - 1] |= bit
                        mask ^= low
            self._in_masks = masks
        return masks

    # ------------------------------------------------------------------
    # Reachability / emptiness
    # ------------------------------------------------------------------
    def reachable_mask(self) -> Mask:
        """Bitset of states reachable from the initial set."""
        reach = self._reachable
        if reach is None:
            out = self.out_masks()
            reach = self.initial
            frontier = self.initial
            while frontier:
                checkpoint("automata.reachable", self._words)
                step = 0
                while frontier:
                    low = frontier & -frontier
                    step |= out[low.bit_length() - 1]
                    frontier ^= low
                frontier = step & ~reach
                reach |= frontier
            self._reachable = reach
        return reach

    def coreachable_mask(self) -> Mask:
        """Bitset of states from which a final state is reachable."""
        reach = self._coreachable
        if reach is None:
            incoming = self.in_masks()
            reach = self.final
            frontier = self.final
            while frontier:
                checkpoint("automata.coreachable", self._words)
                step = 0
                while frontier:
                    low = frontier & -frontier
                    step |= incoming[low.bit_length() - 1]
                    frontier ^= low
                frontier = step & ~reach
                reach |= frontier
            self._coreachable = reach
        return reach

    def is_empty(self) -> bool:
        return not (self.reachable_mask() & self.final)

    def accepts(self, word: str) -> bool:
        current = self.closure_of(self.initial)
        for ch in word:
            k = self.symbol_index.get(ch)
            if k is None:
                return False
            nxt = self.step(current, k)
            if not nxt:
                return False
            current = self.closure_of(nxt)
        return bool(current & self.final)

    # ------------------------------------------------------------------
    # Derived automata (cheap views)
    # ------------------------------------------------------------------
    def with_endpoints(self, initial: Mask, final: Mask) -> "DenseNfa":
        """A view with different initial/final masks sharing the rows.

        This is what noodlification's per-boundary segments use instead of
        copying the whole target automaton per split point.
        """
        view = DenseNfa.__new__(DenseNfa)
        view.n = self.n
        view.alphabet = self.alphabet
        view.symbols = self.symbols
        view.symbol_index = self.symbol_index
        view.rows = self.rows
        view.eps = self.eps
        view.initial = initial
        view.final = final
        view.state_ids = self.state_ids
        view.index = self.index
        view._words = self._words
        view._closures = self._closures
        view._out_masks = self._out_masks
        view._in_masks = self._in_masks
        view._reachable = None
        view._coreachable = None
        view._eps_free = None
        view._key = None
        view.edge_src = self.edge_src
        view.edge_sym = self.edge_sym
        view.edge_dst = self.edge_dst
        return view

    def eps_free(self) -> "DenseNfa":
        """An equivalent ε-free dense automaton (self when already ε-free).

        Same construction as :func:`repro.automata.operations.remove_epsilon`:
        ``s --a--> t`` iff some member of ``closure(s)`` steps to ``t`` on
        ``a``, and ``s`` is final iff its closure meets the final set.
        """
        if self.eps is None:
            return self
        cached = self._eps_free
        if cached is None:
            closures = self.closures()
            n = self.n
            new_rows: List[Tuple[Mask, ...]] = []
            for k in range(len(self.symbols)):
                row = self.rows[k]
                new_row = [0] * n
                for s in range(n):
                    mask = closures[s]
                    merged = 0
                    while mask:
                        low = mask & -mask
                        merged |= row[low.bit_length() - 1]
                        mask ^= low
                    new_row[s] = merged
                checkpoint("automata.remove_epsilon", self._words)
                new_rows.append(tuple(new_row))
            final = 0
            for s in range(n):
                if closures[s] & self.final:
                    final |= 1 << s
            cached = DenseNfa(
                n,
                self.alphabet,
                self.symbols,
                tuple(new_rows),
                None,
                self.initial,
                final,
                self.state_ids,
            )
            self._eps_free = cached
        return cached


# ----------------------------------------------------------------------
# Form adapters: every rewired consumer accepts either representation
# ----------------------------------------------------------------------
def as_dense(automaton) -> DenseNfa:
    """Coerce an :class:`Nfa` or :class:`DenseNfa` to the dense form."""
    if isinstance(automaton, DenseNfa):
        return automaton
    return automaton.dense()


def as_nfa(automaton) -> Nfa:
    """Coerce an :class:`Nfa` or :class:`DenseNfa` to the facade form."""
    if isinstance(automaton, DenseNfa):
        return automaton.to_nfa()
    return automaton


# ----------------------------------------------------------------------
# Lazy product walks
# ----------------------------------------------------------------------
def product_is_empty(left, right) -> bool:
    """Decide ``L(left) ∩ L(right) = ∅`` without materialising the product.

    Walks the reachable pairs of the (ε-eliminated) product, keeping for
    every left state the bitset of right states it is paired with — the
    right side advances word-parallel — and stops at the first accepting
    pair.  Sound and complete; cost is bounded by the materialised product
    but typically far below it (satisfiable products exit at the first
    witness, refuted ones never allocate result states).
    """
    l = as_dense(left).eps_free()
    r = as_dense(right).eps_free()
    if not l.initial or not r.initial or not l.final or not r.final:
        return True
    common = [
        (l.rows[l.symbol_index[symbol]], r.rows[r.symbol_index[symbol]])
        for symbol in l.symbols
        if symbol in r.symbol_index
    ]
    # reach[p] = mask of right states paired with left state p
    reach: List[Mask] = [0] * l.n
    work: deque = deque()
    for p in iter_bits(l.initial):
        reach[p] = r.initial
        work.append(p)
        if (1 << p) & l.final and r.initial & r.final:
            return False
    lfinal = l.final
    rfinal = r.final
    in_queue = l.initial
    while work:
        p = work.popleft()
        in_queue &= ~(1 << p)
        mask = reach[p]
        checkpoint("automata.empty", r._words)
        for lrow, rrow in common:
            succ_l = lrow[p]
            if not succ_l:
                continue
            succ_r = 0
            rest = mask
            while rest:
                low = rest & -rest
                succ_r |= rrow[low.bit_length() - 1]
                rest ^= low
            if not succ_r:
                continue
            targets = succ_l
            while targets:
                low = targets & -targets
                q = low.bit_length() - 1
                targets ^= low
                grown = succ_r & ~reach[q]
                if grown:
                    reach[q] |= grown
                    if (1 << q) & lfinal and reach[q] & rfinal:
                        return False
                    if not ((1 << q) & in_queue):
                        in_queue |= 1 << q
                        work.append(q)
    return True


def dense_is_subset(left, right, alphabet=None) -> bool:
    """Decide ``L(left) ⊆ L(right)`` lazily over ``alphabet``.

    On-the-fly inclusion: pairs a left state with the determinised subset
    mask of the right automaton and stops at the first counterexample pair
    (left accepting, right subset missing every final state).  Neither the
    complement nor the difference automaton is ever materialised.

    Matching the eager construction's semantics, only symbols of ``left``
    that lie in ``alphabet`` can extend a counterexample word.
    """
    l = as_dense(left).eps_free()
    r = as_dense(right).eps_free()
    if alphabet is None:
        sigma = set(l.alphabet) | set(r.alphabet)
    else:
        sigma = set(alphabet)
    rows = [
        (
            l.rows[l.symbol_index[symbol]],
            r.rows[r.symbol_index[symbol]] if symbol in r.symbol_index else None,
        )
        for symbol in l.symbols
        if symbol in sigma
    ]
    start_r = r.initial
    lfinal = l.final
    rfinal = r.final
    visited: Dict[Tuple[int, Mask], None] = {}
    work: deque = deque()
    for p in iter_bits(l.initial):
        pair = (p, start_r)
        if pair not in visited:
            visited[pair] = None
            work.append(pair)
            if (1 << p) & lfinal and not (start_r & rfinal):
                return False
    while work:
        p, mask = work.popleft()
        checkpoint("automata.inclusion", r._words)
        for lrow, rrow in rows:
            succ_l = lrow[p]
            if not succ_l:
                continue
            if rrow is None:
                succ_r = 0
            else:
                succ_r = 0
                rest = mask
                while rest:
                    low = rest & -rest
                    succ_r |= rrow[low.bit_length() - 1]
                    rest ^= low
            targets = succ_l
            while targets:
                low = targets & -targets
                q = low.bit_length() - 1
                targets ^= low
                pair = (q, succ_r)
                if pair not in visited:
                    if (1 << q) & lfinal and not (succ_r & rfinal):
                        return False
                    visited[pair] = None
                    work.append(pair)
    return True


# ----------------------------------------------------------------------
# Hash-consed interning
# ----------------------------------------------------------------------
class InternTable:
    """Canonical-automaton table keyed by the dense structural key.

    ``intern`` maps every automaton with the same structure (modulo state
    renaming) to one canonical ``Nfa`` whose dense form is pre-compiled.
    The canonical object must never be mutated — the normalisation layer
    treats all produced automata as immutable, which is the same contract
    the identity-keyed downstream caches already rely on.  FIFO eviction
    bounds the table like the NormalizationCache memos.
    """

    def __init__(self, capacity: int = 4096) -> None:
        self.capacity = capacity
        self._table: Dict[Tuple, Nfa] = {}
        #: keys seeded from a warm-start payload (hits on these bump the
        #: ``automata_interning_warm_hits`` counter)
        self._warm: set = set()

    def __len__(self) -> int:
        return len(self._table)

    def mark_all_warm(self) -> None:
        """Flag every current entry as warm-seeded (worker-fleet startup)."""
        self._warm.update(self._table.keys())

    def entries(self) -> List[Nfa]:
        """The canonical automata currently interned (insertion order)."""
        return list(self._table.values())

    def intern(self, automaton) -> Nfa:
        dense = as_dense(automaton)
        key = dense.canonical_key()
        hit = self._table.get(key)
        if hit is not None:
            GLOBAL_STATS["automata_interning_hits"] += 1
            if key in self._warm:
                GLOBAL_STATS["automata_interning_warm_hits"] += 1
            return hit
        GLOBAL_STATS["automata_interning_misses"] += 1
        if isinstance(automaton, Nfa) and dense.state_ids == tuple(range(dense.n)):
            # Already contiguous: adopt the object itself as canonical
            # (callers hand over freshly-built automata they no longer
            # mutate; adopting keeps existing identities stable).
            canonical = automaton
        else:
            canonical = dense.to_nfa()
        self._table[key] = canonical
        while len(self._table) > self.capacity:
            evicted = next(iter(self._table))
            self._table.pop(evicted)
            self._warm.discard(evicted)
        return canonical


#: the process-wide intern table (shared across sessions by design: the
#: whole point is that two sessions solving related problems reuse one
#: compiled automaton)
_GLOBAL_INTERN = InternTable()


def intern_nfa(automaton) -> Nfa:
    """Intern ``automaton`` in the process-wide table (see :class:`InternTable`)."""
    return _GLOBAL_INTERN.intern(automaton)


def intern_table_size() -> int:
    return len(_GLOBAL_INTERN)


def intern_table_entries() -> List[Nfa]:
    """The canonical automata of the process-wide table (insertion order).

    The server layer serialises these (``serialization.intern_snapshot``)
    into the warm-start payload its worker fleet re-interns at startup.
    """
    return _GLOBAL_INTERN.entries()


def intern_mark_warm() -> None:
    """Flag every currently interned automaton as warm-seeded.

    Subsequent interning hits on the flagged entries count into
    ``GLOBAL_STATS["automata_interning_warm_hits"]`` — the counter worker
    processes report to prove the cross-worker sharing engaged.
    """
    _GLOBAL_INTERN.mark_all_warm()
