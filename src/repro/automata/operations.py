"""Classical operations on NFAs: boolean algebra, concatenation, iteration.

These operations back both the regex compiler and the string solver: regular
membership constraints are intersected per variable, complements are needed
for negated regular memberships, and concatenation/star implement regex
operators.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, FrozenSet, Iterable, Optional, Set, Tuple

from ..budget import checkpoint
from .nfa import EPSILON, Nfa, State


def union(left: Nfa, right: Nfa) -> Nfa:
    """Return an NFA for ``L(left) ∪ L(right)``."""
    result = Nfa(left.alphabet | right.alphabet)
    left_copy, left_map = left.renumbered(0)
    offset = left_copy._next_state
    right_copy, right_map = right.renumbered(offset)
    for part in (left_copy, right_copy):
        result.states |= part.states
        result.initial |= part.initial
        result.final |= part.final
        result._sync_state_counter()
        for src, symbol, dst in part.iter_transitions():
            result.add_transition(src, symbol, dst)
    return result


def concat(left: Nfa, right: Nfa) -> Nfa:
    """Return an NFA for the concatenation ``L(left) · L(right)``.

    The construction links final states of ``left`` to initial states of
    ``right`` with epsilon transitions (the ε-concatenation of the paper).
    """
    result = Nfa(left.alphabet | right.alphabet)
    left_copy, _ = left.renumbered(0)
    offset = left_copy._next_state
    right_copy, _ = right.renumbered(offset)
    result.states = left_copy.states | right_copy.states
    result.initial = set(left_copy.initial)
    result.final = set(right_copy.final)
    result._sync_state_counter()
    for part in (left_copy, right_copy):
        for src, symbol, dst in part.iter_transitions():
            result.add_transition(src, symbol, dst)
    for final_state in left_copy.final:
        for initial_state in right_copy.initial:
            result.add_transition(final_state, EPSILON, initial_state)
    return result


def star(nfa: Nfa) -> Nfa:
    """Return an NFA for the Kleene star ``L(nfa)*``."""
    result, _ = nfa.renumbered(0)
    fresh = result.add_state()
    for initial_state in set(result.initial):
        result.add_transition(fresh, EPSILON, initial_state)
    for final_state in set(result.final):
        result.add_transition(final_state, EPSILON, fresh)
    result.initial = {fresh}
    result.final = result.final | {fresh}
    return result


def plus(nfa: Nfa) -> Nfa:
    """Return an NFA for ``L(nfa)+`` (one or more repetitions)."""
    return concat(nfa, star(nfa))


def optional(nfa: Nfa) -> Nfa:
    """Return an NFA for ``L(nfa) ∪ {ε}``."""
    result, _ = nfa.renumbered(0)
    fresh = result.add_state()
    result.make_initial(fresh)
    result.make_final(fresh)
    for initial_state in set(result.initial) - {fresh}:
        result.add_transition(fresh, EPSILON, initial_state)
    result.initial = {fresh}
    return result


def repeat(nfa: Nfa, low: int, high: Optional[int]) -> Nfa:
    """Return an NFA for ``L(nfa){low,high}`` (``high=None`` means unbounded)."""
    if low < 0:
        raise ValueError("lower repetition bound must be non-negative")
    pieces = [nfa] * low
    if high is None:
        pieces.append(star(nfa))
    else:
        if high < low:
            raise ValueError("upper repetition bound must be at least the lower bound")
        pieces.extend([optional(nfa)] * (high - low))
    if not pieces:
        return Nfa.epsilon_language()
    result = pieces[0]
    for piece in pieces[1:]:
        result = concat(result, piece)
    return result


def remove_epsilon(nfa: Nfa) -> Nfa:
    """Return an equivalent NFA without epsilon transitions."""
    result = Nfa(nfa.alphabet)
    result.states = set(nfa.states)
    result.initial = set(nfa.initial)
    result._sync_state_counter()
    closures: Dict[State, FrozenSet[State]] = {
        state: nfa.epsilon_closure([state]) for state in nfa.states
    }
    for state in nfa.states:
        checkpoint("automata.remove_epsilon")
        closure = closures[state]
        if closure & nfa.final:
            result.make_final(state)
        for member in closure:
            for symbol, dst in nfa.transitions_from(member):
                if symbol is EPSILON:
                    continue
                result.add_transition(state, symbol, dst)
    return result


class StateBudgetExceeded(Exception):
    """Raised by :func:`determinize` when ``max_states`` would be exceeded."""


def determinize(
    nfa: Nfa,
    alphabet: Optional[Iterable[str]] = None,
    max_states: Optional[int] = None,
) -> Tuple[Nfa, Dict[FrozenSet[State], State]]:
    """Subset construction.

    Returns a complete DFA (represented as an :class:`Nfa` whose transition
    relation is deterministic and total over ``alphabet``) together with the
    mapping from subsets of states to DFA states.  The empty subset acts as
    the sink state.  ``max_states`` caps the construction (the subset space
    is worst-case exponential); exceeding it raises
    :class:`StateBudgetExceeded`.
    """
    sigma = set(alphabet) if alphabet is not None else set(nfa.alphabet)
    dfa = Nfa(sigma)
    subset_to_state: Dict[FrozenSet[State], State] = {}

    def state_for(subset: FrozenSet[State]) -> State:
        if subset not in subset_to_state:
            if max_states is not None and len(subset_to_state) >= max_states:
                raise StateBudgetExceeded(f"more than {max_states} DFA states")
            subset_to_state[subset] = dfa.add_state()
            if subset & nfa.final:
                dfa.make_final(subset_to_state[subset])
        return subset_to_state[subset]

    start = nfa.epsilon_closure(nfa.initial)
    start_state = state_for(start)
    dfa.make_initial(start_state)
    work = deque([start])
    processed: Set[FrozenSet[State]] = {start}
    while work:
        # One budget step per explored subset — the unit the worst-case
        # exponential blowup is measured in.
        checkpoint("automata.determinize")
        subset = work.popleft()
        src = state_for(subset)
        for symbol in sigma:
            # Alphabet-partitioned lookup: one dict fetch per symbol instead
            # of probing every subset state's whole symbol dict.
            on_symbol = nfa.transitions_on(symbol)
            targets: Set[State] = set()
            if on_symbol:
                for state in subset:
                    dsts = on_symbol.get(state)
                    if dsts:
                        targets |= dsts
            closure = nfa.epsilon_closure(targets)
            dst = state_for(closure)
            dfa.add_transition(src, symbol, dst)
            if closure not in processed:
                processed.add(closure)
                work.append(closure)
    return dfa, subset_to_state


def complement(nfa: Nfa, alphabet: Iterable[str]) -> Nfa:
    """Return an NFA for ``alphabet* \\ L(nfa)``."""
    sigma = set(alphabet)
    dfa, _ = determinize(nfa, sigma)
    result = dfa.copy()
    result.final = set(dfa.states) - set(dfa.final)
    return result


def intersection(left: Nfa, right: Nfa) -> Nfa:
    """Return the product automaton for ``L(left) ∩ L(right)``."""
    left_nf = remove_epsilon(left) if left.has_epsilon() else left
    right_nf = remove_epsilon(right) if right.has_epsilon() else right
    result = Nfa(left_nf.alphabet & right_nf.alphabet)
    pair_to_state: Dict[Tuple[State, State], State] = {}

    def state_for(pair: Tuple[State, State]) -> State:
        if pair not in pair_to_state:
            pair_to_state[pair] = result.add_state()
            if pair[0] in left_nf.final and pair[1] in right_nf.final:
                result.make_final(pair_to_state[pair])
        return pair_to_state[pair]

    work: deque = deque()
    for p in left_nf.initial:
        for q in right_nf.initial:
            state = state_for((p, q))
            result.make_initial(state)
            work.append((p, q))
    seen: Set[Tuple[State, State]] = set(
        (p, q) for p in left_nf.initial for q in right_nf.initial
    )
    while work:
        checkpoint("automata.intersection")
        p, q = work.popleft()
        src = state_for((p, q))
        # Intersect the symbol partitions of both states: the product only
        # follows symbols both sides can take, so neither side's symbol
        # dict is scanned for transitions the other cannot match.
        left_on = left_nf.transitions_map(p)
        right_on = right_nf.transitions_map(q)
        if len(right_on) < len(left_on):
            common = right_on.keys() & left_on.keys()
        else:
            common = left_on.keys() & right_on.keys()
        for symbol in common:
            for p_dst in left_on[symbol]:
                for q_dst in right_on[symbol]:
                    dst_pair = (p_dst, q_dst)
                    dst = state_for(dst_pair)
                    result.add_transition(src, symbol, dst)
                    if dst_pair not in seen:
                        seen.add(dst_pair)
                        work.append(dst_pair)
    return result


def difference(left: Nfa, right: Nfa, alphabet: Iterable[str]) -> Nfa:
    """Return an NFA for ``L(left) \\ L(right)`` over ``alphabet``."""
    return intersection(left, complement(right, alphabet))


def reverse(nfa: Nfa) -> Nfa:
    """Return an NFA for the reversed language."""
    result = Nfa(nfa.alphabet)
    result.states = set(nfa.states)
    result.initial = set(nfa.final)
    result.final = set(nfa.initial)
    result._sync_state_counter()
    for src, symbol, dst in nfa.iter_transitions():
        result.add_transition(dst, symbol, src)
    return result


def is_subset(left: Nfa, right: Nfa, alphabet: Optional[Iterable[str]] = None) -> bool:
    """Decide language inclusion ``L(left) ⊆ L(right)``."""
    sigma = set(alphabet) if alphabet is not None else left.alphabet | right.alphabet
    return difference(left, right, sigma).trim().is_empty()


def equivalent(left: Nfa, right: Nfa, alphabet: Optional[Iterable[str]] = None) -> bool:
    """Decide language equivalence of the two automata."""
    sigma = set(alphabet) if alphabet is not None else left.alphabet | right.alphabet
    return is_subset(left, right, sigma) and is_subset(right, left, sigma)
