"""Classical operations on NFAs: boolean algebra, concatenation, iteration.

These operations back both the regex compiler and the string solver: regular
membership constraints are intersected per variable, complements are needed
for negated regular memberships, and concatenation/star implement regex
operators.

The hot operations (subset construction, products, ε-elimination and the
emptiness/inclusion decisions) run on the integer-dense form of
:mod:`repro.automata.dense` — bitset state sets and per-symbol successor-mask
rows — and accept either an :class:`Nfa` or a :class:`DenseNfa`.  Results
are materialised back into facade :class:`Nfa` objects (with the dense form
cached on them whenever it is already known), so the public contracts are
unchanged.  The pre-rewrite set-based implementations live on in
:mod:`repro.automata.legacy` as differential-test oracles and as the bench
baseline.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from ..budget import checkpoint
from .dense import DenseNfa, as_dense, dense_is_subset, iter_bits, product_is_empty
from .nfa import EPSILON, Nfa, State


def union(left: Nfa, right: Nfa) -> Nfa:
    """Return an NFA for ``L(left) ∪ L(right)``."""
    result = Nfa(left.alphabet | right.alphabet)
    left_part = left.copy_into(result, 0)
    right_part = right.copy_into(result)
    result.initial = left_part.initial | right_part.initial
    result.final = left_part.final | right_part.final
    return result


def concat(left: Nfa, right: Nfa) -> Nfa:
    """Return an NFA for the concatenation ``L(left) · L(right)``.

    The construction links final states of ``left`` to initial states of
    ``right`` with epsilon transitions (the ε-concatenation of the paper).
    """
    result = Nfa(left.alphabet | right.alphabet)
    left_part = left.copy_into(result, 0)
    right_part = right.copy_into(result)
    for final_state in left_part.final:
        for initial_state in right_part.initial:
            result.add_transition(final_state, EPSILON, initial_state)
    result.initial = set(left_part.initial)
    result.final = set(right_part.final)
    return result


def star(nfa: Nfa) -> Nfa:
    """Return an NFA for the Kleene star ``L(nfa)*``."""
    result = Nfa(nfa.alphabet)
    part = nfa.copy_into(result, 0)
    fresh = result.add_state()
    for initial_state in part.initial:
        result.add_transition(fresh, EPSILON, initial_state)
    for final_state in part.final:
        result.add_transition(final_state, EPSILON, fresh)
    result.initial = {fresh}
    result.final = part.final | {fresh}
    return result


def plus(nfa: Nfa) -> Nfa:
    """Return an NFA for ``L(nfa)+`` (one or more repetitions)."""
    return concat(nfa, star(nfa))


def optional(nfa: Nfa) -> Nfa:
    """Return an NFA for ``L(nfa) ∪ {ε}``."""
    result = Nfa(nfa.alphabet)
    part = nfa.copy_into(result, 0)
    fresh = result.add_state()
    for initial_state in part.initial:
        result.add_transition(fresh, EPSILON, initial_state)
    result.initial = {fresh}
    result.final = part.final | {fresh}
    return result


def repeat(nfa: Nfa, low: int, high: Optional[int]) -> Nfa:
    """Return an NFA for ``L(nfa){low,high}`` (``high=None`` means unbounded)."""
    if low < 0:
        raise ValueError("lower repetition bound must be non-negative")
    pieces = [nfa] * low
    if high is None:
        pieces.append(star(nfa))
    else:
        if high < low:
            raise ValueError("upper repetition bound must be at least the lower bound")
        pieces.extend([optional(nfa)] * (high - low))
    if not pieces:
        return Nfa.epsilon_language()
    result = pieces[0]
    for piece in pieces[1:]:
        result = concat(result, piece)
    return result


def remove_epsilon(nfa) -> Nfa:
    """Return an equivalent NFA without epsilon transitions.

    Accepts either form; the closure saturation runs on ε-closure bitsets
    (:meth:`DenseNfa.eps_free`) and the facade result keeps the input's
    state identifiers with the ε-free dense form pre-cached.
    """
    if isinstance(nfa, Nfa) and not nfa.has_epsilon():
        return nfa.copy()
    compiled = as_dense(nfa)
    eps_free = compiled.eps_free()
    result = Nfa(set(compiled.alphabet))
    ids = compiled.state_ids
    result.states = set(ids)
    result.initial = {ids[i] for i in iter_bits(eps_free.initial)}
    result.final = {ids[i] for i in iter_bits(eps_free.final)}
    delta = result._delta
    by_symbol = result._by_symbol
    for k, symbol in enumerate(eps_free.symbols):
        row = eps_free.rows[k]
        on_symbol: Dict[State, Set[State]] = {}
        for index in range(eps_free.n):
            mask = row[index]
            if mask:
                targets = {ids[i] for i in iter_bits(mask)}
                on_symbol[ids[index]] = targets
                delta.setdefault(ids[index], {})[symbol] = targets
        if on_symbol:
            by_symbol[symbol] = on_symbol
    result._sync_state_counter()
    if ids == tuple(range(eps_free.n)):
        # repro: allow(cache-discipline): priming the freshly materialised Nfa with the dense form it was built from — the two are the same automaton
        result._dense = eps_free
    return result


class StateBudgetExceeded(Exception):
    """Raised by :func:`determinize` when ``max_states`` would be exceeded."""


def determinize(
    nfa,
    alphabet: Optional[Iterable[str]] = None,
    max_states: Optional[int] = None,
    want_subsets: bool = True,
) -> Tuple[Nfa, Dict[FrozenSet[State], State]]:
    """Subset construction (bitset-based).

    Returns a complete DFA (represented as an :class:`Nfa` whose transition
    relation is deterministic and total over ``alphabet``) together with the
    mapping from subsets of states to DFA states.  The empty subset acts as
    the sink state.  ``max_states`` caps the construction (the subset space
    is worst-case exponential); exceeding it raises
    :class:`StateBudgetExceeded`.

    Subsets are single Python-int bitsets: the per-symbol move of a subset
    is a word-parallel OR of precomputed closed successor masks, and subset
    identity is integer hashing instead of frozenset hashing.  Materialising
    the subset map costs a frozenset per DFA state; callers that only need
    the automaton pass ``want_subsets=False`` and get an empty map.
    """
    compiled = as_dense(nfa)
    sigma = set(alphabet) if alphabet is not None else set(compiled.alphabet)
    sigma_sorted = sorted(sigma)
    n = compiled.n
    closures = compiled.closures() if compiled.eps is not None else None
    # Per sigma symbol: successor rows with the ε-closure already applied,
    # so each subset move is one OR per member state.  ``None`` marks
    # symbols with no transitions anywhere (they always move to the sink).
    closed_rows: List[Optional[List[int]]] = []
    for symbol in sigma_sorted:
        k = compiled.symbol_index.get(symbol)
        if k is None:
            closed_rows.append(None)
            continue
        row = compiled.rows[k]
        if closures is None:
            closed_rows.append(list(row))
        else:
            closed: List[int] = []
            for s in range(n):
                mask = row[s]
                merged = 0
                while mask:
                    low = mask & -mask
                    merged |= closures[low.bit_length() - 1]
                    mask ^= low
                closed.append(merged)
            closed_rows.append(closed)

    dfa = Nfa(sigma)
    delta = dfa._delta
    by_symbol = dfa._by_symbol
    final_mask = compiled.final
    mask_to_state: Dict[int, State] = {}
    finals: Set[State] = set()

    def state_for(mask: int) -> State:
        state = mask_to_state.get(mask)
        if state is None:
            if max_states is not None and len(mask_to_state) >= max_states:
                raise StateBudgetExceeded(f"more than {max_states} DFA states")
            state = len(mask_to_state)
            mask_to_state[mask] = state
            if mask & final_mask:
                finals.add(state)
        return state

    start = compiled.closure_of(compiled.initial)
    start_state = state_for(start)
    work = deque([(start, start_state)])
    words = compiled._words
    sym_maps = [by_symbol.setdefault(symbol, {}) for symbol in sigma_sorted]
    while work:
        # One budget step per explored subset (scaled by the bitset width)
        # — the unit the worst-case exponential blowup is measured in.
        checkpoint("automata.determinize", words)
        subset, src = work.popleft()
        # Every subset is popped exactly once, so its transition dict is
        # built fresh here rather than probed with setdefault/get.
        src_delta = delta[src] = {}
        for position, symbol in enumerate(sigma_sorted):
            row = closed_rows[position]
            target = 0
            if row is not None:
                rest = subset
                while rest:
                    low = rest & -rest
                    target |= row[low.bit_length() - 1]
                    rest ^= low
            dst = mask_to_state.get(target)
            if dst is None:
                dst = state_for(target)
                work.append((target, dst))
            targets = {dst}
            src_delta[symbol] = targets
            sym_maps[position][src] = targets
    dfa.states = set(range(len(mask_to_state)))
    dfa.initial = {start_state}
    dfa.final = finals
    dfa._sync_state_counter()
    if not want_subsets:
        return dfa, {}
    ids = compiled.state_ids
    subset_to_state = {
        frozenset(ids[i] for i in iter_bits(mask)): state
        for mask, state in mask_to_state.items()
    }
    return dfa, subset_to_state


def complement(nfa, alphabet: Iterable[str]) -> Nfa:
    """Return an NFA for ``alphabet* \\ L(nfa)``."""
    sigma = set(alphabet)
    dfa, _ = determinize(nfa, sigma, want_subsets=False)
    # ``determinize`` builds a fresh complete DFA, so flipping its finals in
    # place is safe (nothing else holds a reference).
    dfa.final = set(dfa.states) - set(dfa.final)
    dfa._sync_state_counter()
    return dfa


def intersection(left, right) -> Nfa:
    """Return the product automaton for ``L(left) ∩ L(right)``.

    Accepts either form on both sides.  The pair walk runs on the ε-free
    dense rows: the common-symbol lists are intersected once up front and
    successor pairs come from bitset rows instead of per-state dict probes.
    """
    left_dense = as_dense(left).eps_free()
    right_dense = as_dense(right).eps_free()
    result = Nfa(set(left_dense.alphabet) & set(right_dense.alphabet))
    common = [
        (
            symbol,
            left_dense.rows[left_dense.symbol_index[symbol]],
            right_dense.rows[right_dense.symbol_index[symbol]],
        )
        for symbol in left_dense.symbols
        if symbol in right_dense.symbol_index
    ]
    left_final = left_dense.final
    right_final = right_dense.final
    pair_to_state: Dict[Tuple[int, int], State] = {}
    finals: Set[State] = set()
    delta = result._delta
    by_symbol = result._by_symbol

    def state_for(p: int, q: int) -> State:
        state = pair_to_state.get((p, q))
        if state is None:
            state = len(pair_to_state)
            pair_to_state[(p, q)] = state
            if (left_final >> p) & 1 and (right_final >> q) & 1:
                finals.add(state)
        return state

    work: deque = deque()
    initial: Set[State] = set()
    for p in iter_bits(left_dense.initial):
        for q in iter_bits(right_dense.initial):
            initial.add(state_for(p, q))
            work.append((p, q))
    seen = set(pair_to_state)
    while work:
        checkpoint("automata.intersection")
        p, q = work.popleft()
        src = state_for(p, q)
        src_delta = None
        for symbol, left_row, right_row in common:
            left_mask = left_row[p]
            if not left_mask:
                continue
            right_mask = right_row[q]
            if not right_mask:
                continue
            if src_delta is None:
                src_delta = delta.setdefault(src, {})
            targets = src_delta.get(symbol)
            if targets is None:
                targets = src_delta[symbol] = set()
                by_symbol.setdefault(symbol, {})[src] = targets
            rest_left = left_mask
            while rest_left:
                low_left = rest_left & -rest_left
                p_dst = low_left.bit_length() - 1
                rest_left ^= low_left
                rest_right = right_mask
                while rest_right:
                    low_right = rest_right & -rest_right
                    q_dst = low_right.bit_length() - 1
                    rest_right ^= low_right
                    dst_pair = (p_dst, q_dst)
                    targets.add(state_for(p_dst, q_dst))
                    if dst_pair not in seen:
                        seen.add(dst_pair)
                        work.append(dst_pair)
    result.states = set(range(len(pair_to_state)))
    result.initial = initial
    result.final = finals
    result._sync_state_counter()
    return result


def intersection_empty(left, right) -> bool:
    """Decide ``L(left) ∩ L(right) = ∅`` without materialising the product.

    The on-the-fly lazy check of :func:`repro.automata.dense.product_is_empty`:
    stops at the first accepting pair, never allocates product states.  Used
    by the eqsolver consequence pre-pass, the normalisation guard pruning
    and the solver's vacuous-¬contains filter.
    """
    return product_is_empty(left, right)


def difference(left, right, alphabet: Iterable[str]) -> Nfa:
    """Return an NFA for ``L(left) \\ L(right)`` over ``alphabet``."""
    return intersection(left, complement(right, alphabet))


def reverse(nfa: Nfa) -> Nfa:
    """Return an NFA for the reversed language."""
    result = Nfa(nfa.alphabet)
    result.states = set(nfa.states)
    result.initial = set(nfa.final)
    result.final = set(nfa.initial)
    result._sync_state_counter()
    for src, symbol, dst in nfa.iter_transitions():
        result.add_transition(dst, symbol, src)
    return result


def is_subset(left, right, alphabet: Optional[Iterable[str]] = None) -> bool:
    """Decide language inclusion ``L(left) ⊆ L(right)``.

    Decided lazily on the fly (left state × determinised right subset mask,
    stopping at the first counterexample) — the complement and difference
    automata of the classical construction are never built.
    """
    return dense_is_subset(left, right, alphabet)


def equivalent(left, right, alphabet: Optional[Iterable[str]] = None) -> bool:
    """Decide language equivalence of the two automata."""
    if alphabet is None:
        sigma: Set[str] = set(as_dense(left).alphabet) | set(as_dense(right).alphabet)
    else:
        sigma = set(alphabet)
    return is_subset(left, right, sigma) and is_subset(right, left, sigma)
