"""DFA minimisation (Hopcroft's algorithm) and canonicalisation helpers."""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from . import operations as ops
from .nfa import Nfa, State


def minimize(
    nfa: Nfa,
    alphabet: Optional[Iterable[str]] = None,
    max_states: Optional[int] = None,
) -> Nfa:
    """Return the minimal complete DFA equivalent to ``nfa``.

    The result is represented as an :class:`Nfa` whose transition relation is
    deterministic.  Hopcroft's partition-refinement algorithm is used on the
    determinised, completed automaton; unreachable blocks are trimmed at the
    end but the sink may be kept when it is needed for completeness.

    ``max_states`` bounds the subset construction (worst-case exponential):
    when the cap is hit the *input* automaton is returned unchanged —
    minimisation is best-effort, the language never changes.
    """
    sigma = sorted(set(alphabet) if alphabet is not None else nfa.alphabet)
    if not sigma:
        # Language is either {} or {ε}; both are already minimal as 1-state DFAs.
        if nfa.accepts(""):
            return Nfa.epsilon_language()
        return Nfa.empty_language()
    try:
        dfa, _ = ops.determinize(nfa, sigma, max_states=max_states)
    except ops.StateBudgetExceeded:
        return nfa

    states = sorted(dfa.states)
    finals = set(dfa.final)
    nonfinals = set(states) - finals

    # Hopcroft partition refinement.
    partition: List[Set[State]] = [block for block in (finals, nonfinals) if block]
    worklist: List[Set[State]] = [min(partition, key=len)] if len(partition) == 2 else list(partition)

    # Predecessor index: symbol -> state -> set of predecessors.
    preds: Dict[str, Dict[State, Set[State]]] = {symbol: {} for symbol in sigma}
    for src, symbol, dst in dfa.iter_transitions():
        preds[symbol].setdefault(dst, set()).add(src)

    while worklist:
        splitter = worklist.pop()
        for symbol in sigma:
            incoming: Set[State] = set()
            for state in splitter:
                incoming |= preds[symbol].get(state, set())
            new_partition: List[Set[State]] = []
            for block in partition:
                inside = block & incoming
                outside = block - incoming
                if inside and outside:
                    new_partition.extend([inside, outside])
                    if block in worklist:
                        worklist.remove(block)
                        worklist.extend([inside, outside])
                    else:
                        worklist.append(min(inside, outside, key=len))
                else:
                    new_partition.append(block)
            partition = new_partition

    block_of: Dict[State, int] = {}
    for index, block in enumerate(partition):
        for state in block:
            block_of[state] = index

    result = Nfa(sigma)
    for index in range(len(partition)):
        result.add_state(index)
    for index, block in enumerate(partition):
        representative = next(iter(block))
        if representative in dfa.final:
            result.make_final(index)
        if block & dfa.initial:
            result.make_initial(index)
        for symbol in sigma:
            successors = dfa.successors(representative, symbol)
            if successors:
                result.add_transition(index, symbol, block_of[next(iter(successors))])
    trimmed = result.trim()
    if not trimmed.states:
        return Nfa.empty_language()
    return trimmed


def canonical_signature(nfa: Nfa, alphabet: Optional[Iterable[str]] = None) -> Tuple:
    """Return a hashable canonical signature of the language of ``nfa``.

    Two automata have the same signature iff their languages coincide (over
    the supplied alphabet).  Implemented by a breadth-first canonical
    numbering of the minimal DFA.
    """
    sigma = sorted(set(alphabet) if alphabet is not None else nfa.alphabet)
    minimal = minimize(nfa, sigma)
    if not minimal.states:
        return ("empty",)
    order: Dict[State, int] = {}
    queue: List[State] = sorted(minimal.initial)
    for state in queue:
        order[state] = len(order)
    index = 0
    while index < len(queue):
        state = queue[index]
        index += 1
        for symbol in sigma:
            for dst in sorted(minimal.successors(state, symbol)):
                if dst not in order:
                    order[dst] = len(order)
                    queue.append(dst)
    transitions = tuple(
        sorted(
            (order[src], symbol, order[dst])
            for src, symbol, dst in minimal.iter_transitions()
            if src in order and dst in order
        )
    )
    finals = tuple(sorted(order[state] for state in minimal.final if state in order))
    return (len(order), transitions, finals)
