"""DFA minimisation (Hopcroft's algorithm) and canonicalisation helpers.

Hopcroft's partition refinement runs on bitset blocks: a block of DFA states
is a single Python-int mask, splitting a block against a splitter's
predecessor set is two bitwise ANDs, and the worklist holds masks.  The
determinised automaton has contiguous states ``0..n-1`` (the dense subset
construction numbers them in discovery order), so masks index directly.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from ..budget import checkpoint
from . import operations as ops
from .dense import as_nfa, iter_bits
from .nfa import Nfa, State


def minimize(
    nfa,
    alphabet: Optional[Iterable[str]] = None,
    max_states: Optional[int] = None,
) -> Nfa:
    """Return the minimal complete DFA equivalent to ``nfa``.

    Accepts either automaton form.  The result is represented as an
    :class:`Nfa` whose transition relation is deterministic.  Hopcroft's
    partition-refinement algorithm is used on the determinised, completed
    automaton; unreachable blocks are trimmed at the end but the sink may be
    kept when it is needed for completeness.

    ``max_states`` bounds the subset construction (worst-case exponential):
    when the cap is hit the *input* automaton is returned unchanged —
    minimisation is best-effort, the language never changes.
    """
    source = as_nfa(nfa)
    sigma = sorted(set(alphabet) if alphabet is not None else source.alphabet)
    if not sigma:
        # Language is either {} or {ε}; both are already minimal as 1-state DFAs.
        if source.accepts(""):
            return Nfa.epsilon_language()
        return Nfa.empty_language()
    try:
        dfa, _ = ops.determinize(source, sigma, max_states=max_states, want_subsets=False)
    except ops.StateBudgetExceeded:
        return source

    dense = dfa.dense()
    n = dense.n
    all_mask = (1 << n) - 1
    final_mask = dense.final

    # Per-symbol predecessor masks: preds[k][dst] = mask of DFA states with
    # a k-transition into dst.  The DFA is complete, so every (state, symbol)
    # contributes exactly one entry.
    preds: List[List[int]] = []
    for k in range(len(dense.symbols)):
        row = dense.rows[k]
        pred = [0] * n
        for src in range(n):
            mask = row[src]
            bit = 1 << src
            while mask:
                low = mask & -mask
                pred[low.bit_length() - 1] |= bit
                mask ^= low
        preds.append(pred)
    words = dense._words

    # Hopcroft partition refinement on block masks.
    partition: List[int] = [
        block for block in (final_mask, all_mask & ~final_mask) if block
    ]
    if len(partition) == 2:
        worklist = [min(partition, key=int.bit_count)]
    else:
        worklist = list(partition)
    while worklist:
        checkpoint("automata.minimize", words)
        splitter = worklist.pop()
        for pred in preds:
            incoming = 0
            rest = splitter
            while rest:
                low = rest & -rest
                incoming |= pred[low.bit_length() - 1]
                rest ^= low
            if not incoming:
                continue
            new_partition: List[int] = []
            for block in partition:
                inside = block & incoming
                if inside and inside != block:
                    outside = block & ~incoming
                    new_partition.append(inside)
                    new_partition.append(outside)
                    try:
                        position = worklist.index(block)
                    except ValueError:
                        if inside.bit_count() <= outside.bit_count():
                            worklist.append(inside)
                        else:
                            worklist.append(outside)
                    else:
                        worklist[position] = inside
                        worklist.append(outside)
                else:
                    new_partition.append(block)
            partition = new_partition

    block_of: Dict[State, int] = {}
    for index, block in enumerate(partition):
        for state in iter_bits(block):
            block_of[state] = index

    result = Nfa(sigma)
    for index in range(len(partition)):
        result.add_state(index)
    initial_mask = dense.initial
    for index, block in enumerate(partition):
        representative = (block & -block).bit_length() - 1
        if (final_mask >> representative) & 1:
            result.make_final(index)
        if block & initial_mask:
            result.make_initial(index)
        for k, symbol in enumerate(dense.symbols):
            successors = dense.rows[k][representative]
            if successors:
                dst = (successors & -successors).bit_length() - 1
                result.add_transition(index, symbol, block_of[dst])
    trimmed = result.trim()
    if not trimmed.states:
        return Nfa.empty_language()
    return trimmed


def canonical_signature(nfa, alphabet: Optional[Iterable[str]] = None) -> Tuple:
    """Return a hashable canonical signature of the language of ``nfa``.

    Two automata have the same signature iff their languages coincide (over
    the supplied alphabet).  Implemented by a breadth-first canonical
    numbering of the minimal DFA.
    """
    source = as_nfa(nfa)
    sigma = sorted(set(alphabet) if alphabet is not None else source.alphabet)
    minimal = minimize(source, sigma)
    if not minimal.states:
        return ("empty",)
    order: Dict[State, int] = {}
    queue: List[State] = sorted(minimal.initial)
    for state in queue:
        order[state] = len(order)
    index = 0
    while index < len(queue):
        checkpoint("automata.minimize", 1)
        state = queue[index]
        index += 1
        for symbol in sigma:
            for dst in sorted(minimal.successors(state, symbol)):
                if dst not in order:
                    order[dst] = len(order)
                    queue.append(dst)
    transitions = tuple(
        sorted(
            (order[src], symbol, order[dst])
            for src, symbol, dst in minimal.iter_transitions()
            if src in order and dst in order
        )
    )
    finals = tuple(sorted(order[state] for state in minimal.final if state in order))
    return (len(order), transitions, finals)
