"""Finite-automata substrate (the reproduction's analogue of the Mata library).

Public surface:

* :class:`~repro.automata.nfa.Nfa` — the NFA data structure,
* :mod:`~repro.automata.operations` — union/concat/star/intersection/complement/...,
* :func:`~repro.automata.regex.compile_regex` — regex → NFA compilation,
* :func:`~repro.automata.flatness.is_flat` — flatness check (§2 / §6.4),
* :mod:`~repro.automata.enumeration` — bounded language enumeration,
* :func:`~repro.automata.minimization.minimize` — Hopcroft minimisation.
"""

from .nfa import EPSILON, Nfa
from .dense import DenseNfa, as_dense, as_nfa, intern_nfa
from .operations import (
    complement,
    concat,
    determinize,
    difference,
    equivalent,
    intersection,
    intersection_empty,
    is_subset,
    optional,
    plus,
    remove_epsilon,
    repeat,
    reverse,
    star,
    union,
)
from .serialization import from_dict, intern_restore, intern_snapshot, to_dict
from .regex import DEFAULT_ALPHABET, RegexError, compile_regex, parse
from .flatness import is_flat, strongly_connected_components
from .enumeration import count_words_of_length, is_finite, shortest_word, words_up_to
from .minimization import canonical_signature, minimize

__all__ = [
    "EPSILON",
    "Nfa",
    "DenseNfa",
    "as_dense",
    "as_nfa",
    "intern_nfa",
    "intersection_empty",
    "to_dict",
    "from_dict",
    "intern_snapshot",
    "intern_restore",
    "union",
    "concat",
    "star",
    "plus",
    "optional",
    "repeat",
    "remove_epsilon",
    "determinize",
    "complement",
    "intersection",
    "difference",
    "reverse",
    "is_subset",
    "equivalent",
    "compile_regex",
    "parse",
    "RegexError",
    "DEFAULT_ALPHABET",
    "is_flat",
    "strongly_connected_components",
    "shortest_word",
    "words_up_to",
    "count_words_of_length",
    "is_finite",
    "minimize",
    "canonical_signature",
]
