"""Language enumeration utilities.

These functions back the brute-force oracle solver and the test suite:
bounded enumeration of a regular language, shortest accepted word, counting
words per length, and random sampling of accepted words.
"""

from __future__ import annotations

import random
from collections import deque
from typing import Dict, FrozenSet, Iterator, List, Optional, Set, Tuple

from . import operations as ops
from .nfa import EPSILON, Nfa, State


def shortest_word(nfa: Nfa) -> Optional[str]:
    """Return a shortest accepted word, or ``None`` when the language is empty."""
    start = nfa.epsilon_closure(nfa.initial)
    if start & nfa.final:
        return ""
    queue: deque = deque([(start, "")])
    seen: Set[FrozenSet[State]] = {start}
    while queue:
        states, word = queue.popleft()
        symbols = set()
        for state in states:
            for symbol, _ in nfa.transitions_from(state):
                if symbol is not EPSILON:
                    symbols.add(symbol)
        for symbol in sorted(symbols):
            targets: Set[State] = set()
            for state in states:
                targets |= nfa.successors(state, symbol)
            closure = nfa.epsilon_closure(targets)
            if not closure:
                continue
            if closure & nfa.final:
                return word + symbol
            if closure not in seen:
                seen.add(closure)
                queue.append((closure, word + symbol))
    return None


def words_up_to(nfa: Nfa, max_length: int) -> Iterator[str]:
    """Yield every accepted word of length at most ``max_length`` (sorted by length)."""
    start = nfa.epsilon_closure(nfa.initial)
    layer: List[Tuple[FrozenSet[State], str]] = [(start, "")]
    if start & nfa.final:
        yield ""
    for _ in range(max_length):
        next_layer: List[Tuple[FrozenSet[State], str]] = []
        for states, word in layer:
            symbols = set()
            for state in states:
                for symbol, _ in nfa.transitions_from(state):
                    if symbol is not EPSILON:
                        symbols.add(symbol)
            for symbol in sorted(symbols):
                targets: Set[State] = set()
                for state in states:
                    targets |= nfa.successors(state, symbol)
                closure = nfa.epsilon_closure(targets)
                if not closure:
                    continue
                new_word = word + symbol
                if closure & nfa.final:
                    yield new_word
                next_layer.append((closure, new_word))
        layer = next_layer
        if not layer:
            return


def count_words_of_length(nfa: Nfa, length: int) -> int:
    """Return the number of distinct accepted words of exactly ``length``."""
    # Determinise so that distinct paths correspond to distinct words.
    sigma = nfa.alphabet
    if not sigma:
        return 1 if length == 0 and nfa.accepts("") else 0
    dfa, _ = ops.determinize(nfa, sigma)
    counts: Dict[State, int] = {state: 1 for state in dfa.initial}
    for _ in range(length):
        new_counts: Dict[State, int] = {}
        for state, count in counts.items():
            for symbol, dst in dfa.transitions_from(state):
                new_counts[dst] = new_counts.get(dst, 0) + count
        counts = new_counts
    return sum(count for state, count in counts.items() if state in dfa.final)


def is_finite(nfa: Nfa) -> bool:
    """Decide whether the language of ``nfa`` is finite."""
    trimmed = nfa.trim()
    # A trimmed automaton has an infinite language iff it contains a cycle.
    from .flatness import strongly_connected_components

    for component in strongly_connected_components(trimmed):
        internal = any(
            src in component and dst in component for src, _, dst in trimmed.iter_transitions()
        )
        if internal:
            return False
    return True


def sample_word(nfa: Nfa, max_length: int, rng: Optional[random.Random] = None) -> Optional[str]:
    """Sample a random accepted word of length at most ``max_length``.

    Returns ``None`` when no accepted word of that length exists.  The
    distribution is not uniform; the function simply performs a random walk
    biased towards states that can still reach a final state.
    """
    rng = rng or random.Random()
    words = list(words_up_to(nfa, max_length))
    if not words:
        return None
    return rng.choice(words)
