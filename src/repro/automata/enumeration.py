"""Language enumeration utilities.

These functions back the brute-force oracle solver and the test suite:
bounded enumeration of a regular language, shortest accepted word, counting
words per length, and random sampling of accepted words.

All entry points accept either automaton form (:class:`Nfa` or
:class:`DenseNfa`).  The breadth-first walks run on dense bitset subsets —
one int per frontier entry, ε-closures from the precomputed closure masks —
while preserving the sorted-symbol enumeration order the oracle tests rely
on (``DenseNfa.symbols`` is sorted by construction).
"""

from __future__ import annotations

import random
from collections import deque
from typing import Dict, Iterator, List, Optional, Tuple

from . import operations as ops
from .dense import as_dense, as_nfa
from .nfa import State


def shortest_word(nfa) -> Optional[str]:
    """Return a shortest accepted word, or ``None`` when the language is empty."""
    dense = as_dense(nfa)
    start = dense.closure_of(dense.initial)
    final = dense.final
    if start & final:
        return ""
    queue: deque = deque([(start, "")])
    seen = {start}
    symbol_range = range(len(dense.symbols))
    symbols = dense.symbols
    while queue:
        mask, word = queue.popleft()
        for k in symbol_range:
            targets = dense.step(mask, k)
            if not targets:
                continue
            closure = dense.closure_of(targets)
            if closure & final:
                return word + symbols[k]
            if closure not in seen:
                seen.add(closure)
                queue.append((closure, word + symbols[k]))
    return None


def words_up_to(nfa, max_length: int) -> Iterator[str]:
    """Yield every accepted word of length at most ``max_length`` (sorted by length)."""
    dense = as_dense(nfa)
    start = dense.closure_of(dense.initial)
    final = dense.final
    layer: List[Tuple[int, str]] = [(start, "")]
    if start & final:
        yield ""
    symbol_range = range(len(dense.symbols))
    symbols = dense.symbols
    for _ in range(max_length):
        next_layer: List[Tuple[int, str]] = []
        for mask, word in layer:
            for k in symbol_range:
                targets = dense.step(mask, k)
                if not targets:
                    continue
                closure = dense.closure_of(targets)
                new_word = word + symbols[k]
                if closure & final:
                    yield new_word
                next_layer.append((closure, new_word))
        layer = next_layer
        if not layer:
            return


def count_words_of_length(nfa, length: int) -> int:
    """Return the number of distinct accepted words of exactly ``length``."""
    # Determinise so that distinct paths correspond to distinct words.
    source = as_nfa(nfa)
    sigma = source.alphabet
    if not sigma:
        return 1 if length == 0 and source.accepts("") else 0
    dfa, _ = ops.determinize(source, sigma, want_subsets=False)
    counts: Dict[State, int] = {state: 1 for state in dfa.initial}
    for _ in range(length):
        new_counts: Dict[State, int] = {}
        for state, count in counts.items():
            for symbol, dst in dfa.transitions_from(state):
                new_counts[dst] = new_counts.get(dst, 0) + count
        counts = new_counts
    return sum(count for state, count in counts.items() if state in dfa.final)


def is_finite(nfa) -> bool:
    """Decide whether the language of ``nfa`` is finite."""
    trimmed = as_nfa(nfa).trim()
    # A trimmed automaton has an infinite language iff it contains a cycle.
    from .flatness import strongly_connected_components

    for component in strongly_connected_components(trimmed):
        internal = any(
            src in component and dst in component for src, _, dst in trimmed.iter_transitions()
        )
        if internal:
            return False
    return True


def sample_word(nfa, max_length: int, rng: Optional[random.Random] = None) -> Optional[str]:
    """Sample a random accepted word of length at most ``max_length``.

    Returns ``None`` when no accepted word of that length exists.  The
    distribution is not uniform; the function simply performs a random walk
    biased towards states that can still reach a final state.
    """
    # A fixed default seed keeps sampling reproducible run-to-run; callers
    # wanting variety pass their own Random.
    rng = rng or random.Random(0)
    words = list(words_up_to(nfa, max_length))
    if not words:
        return None
    return rng.choice(words)
