"""Serialisation of NFAs to and from simple dictionary / DOT formats.

The JSON-friendly dictionary format is used by the benchmark generators to
store workloads on disk, and the DOT output is a debugging convenience.
"""

from __future__ import annotations

from typing import Any, Dict, List

from .nfa import EPSILON, Nfa


def to_dict(nfa: Nfa) -> Dict[str, Any]:
    """Return a JSON-serialisable description of ``nfa``."""
    return {
        "states": sorted(nfa.states),
        "initial": sorted(nfa.initial),
        "final": sorted(nfa.final),
        "alphabet": sorted(nfa.alphabet),
        "transitions": sorted(
            [src, symbol if symbol is not None else "", dst]
            for src, symbol, dst in nfa.iter_transitions()
        ),
    }


def from_dict(data: Dict[str, Any]) -> Nfa:
    """Reconstruct an :class:`Nfa` from :func:`to_dict` output."""
    nfa = Nfa(data.get("alphabet", []))
    for state in data["states"]:
        nfa.add_state(state)
    for state in data["initial"]:
        nfa.make_initial(state)
    for state in data["final"]:
        nfa.make_final(state)
    for src, symbol, dst in data["transitions"]:
        nfa.add_transition(src, symbol if symbol != "" else EPSILON, dst)
    return nfa


def to_dot(nfa: Nfa, name: str = "nfa") -> str:
    """Render ``nfa`` in Graphviz DOT format (for inspection/debugging)."""
    lines: List[str] = [f"digraph {name} {{", "  rankdir=LR;"]
    for state in sorted(nfa.states):
        shape = "doublecircle" if state in nfa.final else "circle"
        lines.append(f'  q{state} [shape={shape}, label="{state}"];')
    for index, state in enumerate(sorted(nfa.initial)):
        lines.append(f"  __start{index} [shape=point];")
        lines.append(f"  __start{index} -> q{state};")
    for src, symbol, dst in sorted(
        nfa.iter_transitions(), key=lambda t: (t[0], t[1] or "", t[2])
    ):
        label = symbol if symbol is not None else "ε"
        lines.append(f'  q{src} -> q{dst} [label="{label}"];')
    lines.append("}")
    return "\n".join(lines)
