"""Serialisation of NFAs to and from simple dictionary / DOT formats.

The JSON-friendly dictionary format is used by the benchmark generators to
store workloads on disk, and the DOT output is a debugging convenience.

Two dictionary formats round-trip:

* the original transition-list format of :func:`to_dict` (states, initial,
  final, alphabet, explicit transition triples), and
* the integer-dense format of :func:`dense_to_dict` — bitset masks and
  per-symbol successor rows straight out of
  :class:`repro.automata.dense.DenseNfa`.  Python's arbitrary-precision ints
  are JSON numbers, so masks serialise directly.  Deserialising a dense
  payload goes through the global intern table: loading the same automaton
  twice (even across sessions of the same process) yields the *same*
  canonical ``Nfa`` object, which is what lets worker processes share
  normalised automata cheaply.
"""

from __future__ import annotations

from typing import Any, Dict, List

from .dense import (
    DenseNfa,
    as_dense,
    intern_mark_warm,
    intern_nfa,
    intern_table_entries,
)
from .nfa import EPSILON, Nfa


def to_dict(nfa: Nfa) -> Dict[str, Any]:
    """Return a JSON-serialisable description of ``nfa``."""
    return {
        "states": sorted(nfa.states),
        "initial": sorted(nfa.initial),
        "final": sorted(nfa.final),
        "alphabet": sorted(nfa.alphabet),
        "transitions": sorted(
            [src, symbol if symbol is not None else "", dst]
            for src, symbol, dst in nfa.iter_transitions()
        ),
    }


def from_dict(data: Dict[str, Any]) -> Nfa:
    """Reconstruct an :class:`Nfa` from :func:`to_dict` or
    :func:`dense_to_dict` output (the payload self-describes its format)."""
    if data.get("format") == "dense":
        return dense_from_dict(data)
    nfa = Nfa(data.get("alphabet", []))
    for state in data["states"]:
        nfa.add_state(state)
    for state in data["initial"]:
        nfa.make_initial(state)
    for state in data["final"]:
        nfa.make_final(state)
    for src, symbol, dst in data["transitions"]:
        nfa.add_transition(src, symbol if symbol != "" else EPSILON, dst)
    return nfa


def dense_to_dict(automaton) -> Dict[str, Any]:
    """Serialise either automaton form as its integer-dense structure.

    The payload is the canonical-key content of the dense form: state count,
    declared alphabet, used symbols, initial/final bitset masks and the
    per-symbol successor-mask rows (plus the ε rows when present).  State
    identity is positional — original facade state ids are deliberately not
    recorded, so structurally identical automata serialise identically.
    """
    dense = as_dense(automaton)
    payload: Dict[str, Any] = {
        "format": "dense",
        "n": dense.n,
        "alphabet": sorted(dense.alphabet),
        "symbols": list(dense.symbols),
        "initial": dense.initial,
        "final": dense.final,
        "rows": [list(row) for row in dense.rows],
    }
    if dense.eps is not None:
        payload["eps"] = list(dense.eps)
    return payload


def dense_from_dict(data: Dict[str, Any]) -> Nfa:
    """Reconstruct the canonical interned :class:`Nfa` from
    :func:`dense_to_dict` output.

    The result is hash-consed: two loads of the same structure return the
    same object (``is``-identical), matching what :func:`intern_nfa` returns
    for a live automaton with that structure.
    """
    eps = data.get("eps")
    dense = DenseNfa(
        data["n"],
        tuple(data["alphabet"]),
        tuple(data["symbols"]),
        tuple(tuple(row) for row in data["rows"]),
        tuple(eps) if eps is not None else None,
        data["initial"],
        data["final"],
        tuple(range(data["n"])),
    )
    return intern_nfa(dense)


def intern_snapshot(limit: int = 1024) -> List[Dict[str, Any]]:
    """Serialise the process-wide intern table as a warm-start payload.

    The payload is a list of :func:`dense_to_dict` dictionaries — pure
    JSON/pickle-friendly data, the wire format the solver server ships to
    its worker fleet.  ``limit`` caps the payload (oldest entries first:
    the table is insertion-ordered and the base alphabet/word automata are
    interned before the derived products built on top of them).
    """
    return [dense_to_dict(nfa) for nfa in intern_table_entries()[:limit]]


def intern_restore(payload: List[Dict[str, Any]]) -> int:
    """Re-intern a warm-start payload and flag the entries as warm-seeded.

    Returns the number of automata restored.  Subsequent interning hits on
    the restored entries count into the ``automata_interning_warm_hits``
    statistic (reported through ``SolveResult.stats`` and accumulated by
    ``Session.statistics()``), which is how a worker proves it is reusing
    the shared automata instead of rebuilding them.
    """
    restored = 0
    for data in payload:
        dense_from_dict(data)
        restored += 1
    intern_mark_warm()
    return restored


def to_dot(nfa: Nfa, name: str = "nfa") -> str:
    """Render ``nfa`` in Graphviz DOT format (for inspection/debugging)."""
    lines: List[str] = [f"digraph {name} {{", "  rankdir=LR;"]
    for state in sorted(nfa.states):
        shape = "doublecircle" if state in nfa.final else "circle"
        lines.append(f'  q{state} [shape={shape}, label="{state}"];')
    for index, state in enumerate(sorted(nfa.initial)):
        lines.append(f"  __start{index} [shape=point];")
        lines.append(f"  __start{index} -> q{state};")
    for src, symbol, dst in sorted(
        nfa.iter_transitions(), key=lambda t: (t[0], t[1] or "", t[2])
    ):
        label = symbol if symbol is not None else "ε"
        lines.append(f'  q{src} -> q{dst} [label="{label}"];')
    lines.append("}")
    return "\n".join(lines)
