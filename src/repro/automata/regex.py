"""A small regular-expression engine compiling to :class:`~repro.automata.nfa.Nfa`.

The supported syntax is the textbook fragment used in the paper plus a few
conveniences common in SMT-LIB ``re`` terms:

* literal characters, escaped characters (``\\*`` etc.),
* concatenation, alternation ``|`` (also ``+`` is *not* alternation here:
  ``+`` is the usual one-or-more postfix operator),
* grouping ``( ... )``,
* postfix ``*``, ``+``, ``?`` and bounded repetition ``{n}``, ``{n,}``,
  ``{n,m}``,
* character classes ``[abc]``, ranges ``[a-z]`` and negated classes
  ``[^abc]`` (negation requires an explicit alphabet),
* ``.`` matching any symbol of the supplied alphabet,
* intersection ``&`` (binds between ``|`` and concatenation — the SMT-LIB
  ``re.inter``) and the prefix complement ``~`` (applies to the following
  repetition unit, postfix operators included: ``~a*`` is the complement
  of ``a*`` — the SMT-LIB ``re.comp``; complementation is relative to the
  supplied alphabet),
* the empty regex denotes the empty word.

Parsing produces a small AST (:class:`RegexNode` subclasses) which is then
compiled with the Thompson construction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple

from . import operations as ops
from ..budget import checkpoint
from .nfa import Nfa

DEFAULT_ALPHABET = tuple("abcdefghijklmnopqrstuvwxyz0123456789")


class RegexError(ValueError):
    """Raised when a regular expression cannot be parsed."""


#: characters that carry meaning in the pattern syntax
PATTERN_SPECIALS = frozenset("\\()[]{}*+?|.^-&~")


def escape(text: str) -> str:
    """Escape ``text`` so it matches literally inside a pattern."""
    return "".join("\\" + char if char in PATTERN_SPECIALS else char for char in text)


# ----------------------------------------------------------------------
# AST
# ----------------------------------------------------------------------
class RegexNode:
    """Base class of regex AST nodes."""

    def compile(self, alphabet: Sequence[str]) -> Nfa:  # pragma: no cover - abstract
        raise NotImplementedError


@dataclass(frozen=True)
class Empty(RegexNode):
    """The empty word ``ε``."""

    def compile(self, alphabet: Sequence[str]) -> Nfa:
        return Nfa.epsilon_language()


@dataclass(frozen=True)
class Literal(RegexNode):
    """A single character."""

    char: str

    def compile(self, alphabet: Sequence[str]) -> Nfa:
        return Nfa.from_word(self.char)


@dataclass(frozen=True)
class AnyChar(RegexNode):
    """The ``.`` wildcard — any single symbol of the alphabet."""

    def compile(self, alphabet: Sequence[str]) -> Nfa:
        return Nfa.from_words(alphabet)


@dataclass(frozen=True)
class CharClass(RegexNode):
    """A character class, possibly negated."""

    chars: Tuple[str, ...]
    negated: bool = False

    def compile(self, alphabet: Sequence[str]) -> Nfa:
        if self.negated:
            allowed = [c for c in alphabet if c not in self.chars]
        else:
            allowed = list(self.chars)
        return Nfa.from_words(allowed)


@dataclass(frozen=True)
class Concat(RegexNode):
    """Concatenation of sub-expressions."""

    parts: Tuple[RegexNode, ...]

    def compile(self, alphabet: Sequence[str]) -> Nfa:
        result = Nfa.epsilon_language()
        for part in self.parts:
            result = ops.concat(result, part.compile(alphabet))
        return result


@dataclass(frozen=True)
class Alternation(RegexNode):
    """Union of sub-expressions."""

    options: Tuple[RegexNode, ...]

    def compile(self, alphabet: Sequence[str]) -> Nfa:
        result = self.options[0].compile(alphabet)
        for option in self.options[1:]:
            result = ops.union(result, option.compile(alphabet))
        return result


@dataclass(frozen=True)
class Repeat(RegexNode):
    """Bounded or unbounded repetition of a sub-expression."""

    inner: RegexNode
    low: int
    high: Optional[int]

    def compile(self, alphabet: Sequence[str]) -> Nfa:
        return ops.repeat(self.inner.compile(alphabet), self.low, self.high)


@dataclass(frozen=True)
class Intersection(RegexNode):
    """Intersection of sub-expressions (the SMT-LIB ``re.inter``)."""

    parts: Tuple[RegexNode, ...]

    def compile(self, alphabet: Sequence[str]) -> Nfa:
        result = self.parts[0].compile(alphabet)
        for part in self.parts[1:]:
            result = ops.intersection(result, part.compile(alphabet))
        return result


@dataclass(frozen=True)
class Complement(RegexNode):
    """Complement relative to the alphabet (the SMT-LIB ``re.comp``)."""

    inner: RegexNode

    def compile(self, alphabet: Sequence[str]) -> Nfa:
        return ops.complement(self.inner.compile(alphabet), alphabet)


# ----------------------------------------------------------------------
# Parser (recursive descent)
# ----------------------------------------------------------------------
class _Parser:
    def __init__(self, pattern: str) -> None:
        self.pattern = pattern
        self.pos = 0

    def peek(self) -> Optional[str]:
        if self.pos < len(self.pattern):
            return self.pattern[self.pos]
        return None

    def take(self) -> str:
        char = self.peek()
        if char is None:
            raise RegexError(f"unexpected end of pattern: {self.pattern!r}")
        self.pos += 1
        # One budget step per consumed character bounds pathological
        # patterns; every parser loop consumes through here.
        checkpoint("regex.parse")
        return char

    def expect(self, char: str) -> None:
        actual = self.take()
        if actual != char:
            raise RegexError(
                f"expected {char!r} at position {self.pos - 1} of {self.pattern!r}, got {actual!r}"
            )

    # alternation := intersection ('|' intersection)*
    def parse_alternation(self) -> RegexNode:
        options = [self.parse_intersection()]
        while self.peek() == "|":
            self.take()
            options.append(self.parse_intersection())
        if len(options) == 1:
            return options[0]
        return Alternation(tuple(options))

    # intersection := concat ('&' concat)*
    def parse_intersection(self) -> RegexNode:
        parts = [self.parse_concat()]
        while self.peek() == "&":
            self.take()
            parts.append(self.parse_concat())
        if len(parts) == 1:
            return parts[0]
        return Intersection(tuple(parts))

    # concat := repeat*
    def parse_concat(self) -> RegexNode:
        parts: List[RegexNode] = []
        while True:
            char = self.peek()
            if char is None or char in ")|&":
                break
            parts.append(self.parse_repeat())
        if not parts:
            return Empty()
        if len(parts) == 1:
            return parts[0]
        return Concat(tuple(parts))

    # repeat := '~' repeat | atom ('*' | '+' | '?' | '{n,m}')*
    def parse_repeat(self) -> RegexNode:
        if self.peek() == "~":
            self.take()
            return Complement(self.parse_repeat())
        node = self.parse_atom()
        while True:
            char = self.peek()
            if char == "*":
                self.take()
                node = Repeat(node, 0, None)
            elif char == "+":
                self.take()
                node = Repeat(node, 1, None)
            elif char == "?":
                self.take()
                node = Repeat(node, 0, 1)
            elif char == "{":
                node = self._parse_braces(node)
            else:
                return node

    def _parse_braces(self, node: RegexNode) -> RegexNode:
        self.expect("{")
        digits = ""
        while self.peek() is not None and self.peek().isdigit():
            digits += self.take()
        if not digits:
            raise RegexError(f"malformed repetition in {self.pattern!r}")
        low = int(digits)
        high: Optional[int] = low
        if self.peek() == ",":
            self.take()
            digits = ""
            while self.peek() is not None and self.peek().isdigit():
                digits += self.take()
            high = int(digits) if digits else None
        self.expect("}")
        return Repeat(node, low, high)

    def parse_atom(self) -> RegexNode:
        char = self.take()
        if char == "(":
            node = self.parse_alternation()
            self.expect(")")
            return node
        if char == "[":
            return self._parse_class()
        if char == ".":
            return AnyChar()
        if char == "\\":
            return Literal(self.take())
        if char in "*+?{}":
            raise RegexError(f"unexpected operator {char!r} in {self.pattern!r}")
        return Literal(char)

    def _parse_class(self) -> RegexNode:
        negated = False
        if self.peek() == "^":
            self.take()
            negated = True
        chars: List[str] = []
        while True:
            char = self.peek()
            if char is None:
                raise RegexError(f"unterminated character class in {self.pattern!r}")
            if char == "]":
                self.take()
                break
            char = self.take()
            if char == "\\":
                char = self.take()
            if self.peek() == "-" and self.pos + 1 < len(self.pattern) and self.pattern[self.pos + 1] != "]":
                self.take()
                end = self.take()
                if end == "\\":
                    end = self.take()
                if ord(end) < ord(char):
                    raise RegexError(f"invalid range {char}-{end} in {self.pattern!r}")
                chars.extend(chr(c) for c in range(ord(char), ord(end) + 1))
            else:
                chars.append(char)
        return CharClass(tuple(chars), negated)


def parse(pattern: str) -> RegexNode:
    """Parse ``pattern`` and return the regex AST."""
    parser = _Parser(pattern)
    node = parser.parse_alternation()
    if parser.pos != len(pattern):
        raise RegexError(f"trailing characters at position {parser.pos} of {pattern!r}")
    return node


def compile_regex(pattern: str, alphabet: Optional[Iterable[str]] = None) -> Nfa:
    """Compile a regular expression into an epsilon-free, trimmed NFA."""
    sigma: Sequence[str] = tuple(alphabet) if alphabet is not None else DEFAULT_ALPHABET
    node = parse(pattern)
    nfa = node.compile(sigma)
    nfa = ops.remove_epsilon(nfa).trim()
    if not nfa.states:
        # Empty language — keep a single initial state so downstream code has
        # a well-formed automaton to work with.
        nfa = Nfa.empty_language()
    return nfa
