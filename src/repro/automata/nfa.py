"""Nondeterministic finite automata (NFA) over character alphabets.

This module provides the central :class:`Nfa` data structure used throughout
the reproduction.  It plays the role of the Mata library used by Z3-Noodler:
variable languages in regular membership constraints are represented by NFAs,
and the tag-automaton construction of the paper consumes them directly.

States are plain integers, symbols are single-character strings, and
``None`` is used as the epsilon (empty-word) label.  The class is mutable
while being built and is typically treated as immutable afterwards.
"""

from __future__ import annotations

from collections import deque
from typing import (
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    NamedTuple,
    Optional,
    Set,
    Tuple,
)

#: Epsilon label used on transitions that do not consume a symbol.
EPSILON: Optional[str] = None

Symbol = Optional[str]
State = int
Transition = Tuple[State, Symbol, State]


class CopiedPart(NamedTuple):
    """What :meth:`Nfa.copy_into` spliced in: the renumbered initial/final
    sets, plus the full old→new state map when it was requested."""

    initial: Set[State]
    final: Set[State]
    mapping: Optional[Dict[State, State]]


class Nfa:
    """A nondeterministic finite automaton with optional epsilon transitions.

    The automaton is a tuple ``(Q, delta, I, F)`` as in Section 2 of the
    paper.  Transitions are stored as a nested mapping
    ``state -> symbol -> set of successor states``.
    """

    __slots__ = (
        "_states",
        "_initial",
        "_final",
        "_delta",
        "_by_symbol",
        "_alphabet",
        "_next_state",
        "_dense",
    )

    def __init__(self, alphabet: Optional[Iterable[str]] = None) -> None:
        self._dense = None
        self._states: Set[State] = set()
        self._initial: Set[State] = set()
        self._final: Set[State] = set()
        self._delta: Dict[State, Dict[Symbol, Set[State]]] = {}
        #: alphabet-partitioned transition index ``symbol -> src -> dsts``;
        #: the successor sets are shared (aliased) with ``_delta``, so both
        #: views stay consistent at no extra per-transition cost.  Product
        #: constructions and symbol-directed sweeps read this view instead
        #: of scanning every state's whole symbol dict.
        self._by_symbol: Dict[Symbol, Dict[State, Set[State]]] = {}
        self._alphabet: Set[str] = set(alphabet) if alphabet else set()
        #: next fresh state id; kept ahead of every state the mutating
        #: methods have seen so ``add_state()`` is O(1) instead of an O(n)
        #: ``max`` scan (which made loops adding many states quadratic)
        self._next_state: State = 0

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    # ``states``/``initial``/``final`` are managed attributes: assigning a
    # new set (the idiom every construction in this codebase uses, e.g.
    # ``product.initial = {...}``) must drop the cached dense compilation,
    # which may be shared with the ``copy()`` source.  In-place mutation of
    # the returned sets is reserved to this class's own methods, which
    # invalidate explicitly.
    @property
    def states(self) -> Set[State]:
        return self._states

    @states.setter
    def states(self, value: Set[State]) -> None:
        self._states = value
        self._dense = None

    @property
    def initial(self) -> Set[State]:
        return self._initial

    @initial.setter
    def initial(self, value: Set[State]) -> None:
        self._initial = value
        self._dense = None

    @property
    def final(self) -> Set[State]:
        return self._final

    @final.setter
    def final(self, value: Set[State]) -> None:
        self._final = value
        self._dense = None

    def _note_state(self, state: State) -> None:
        if state >= self._next_state:
            self._next_state = state + 1

    def _sync_state_counter(self) -> None:
        """Re-derive the fresh-id counter after a bulk ``states`` assignment."""
        self._next_state = max(self.states, default=-1) + 1
        self._dense = None

    def dense(self):
        """The cached integer-dense compilation of this automaton.

        Compiled on demand (one pass over the transition structure) and
        reused until the next mutation; see :class:`repro.automata.dense.DenseNfa`.
        Automata built by the operations layer and the normalisation cache
        arrive with the dense form pre-attached.
        """
        compiled = self._dense
        if compiled is None:
            from .dense import DenseNfa

            compiled = self._dense = DenseNfa.from_nfa(self)
        return compiled

    def add_state(self, state: Optional[State] = None) -> State:
        """Add a state (allocating a fresh identifier when none is given)."""
        if state is None:
            state = self._next_state
        self._note_state(state)
        self.states.add(state)
        self._dense = None
        return state

    def add_states(self, count: int) -> List[State]:
        """Add ``count`` fresh states and return them in order."""
        return [self.add_state() for _ in range(count)]

    def make_initial(self, state: State) -> None:
        self._note_state(state)
        self.states.add(state)
        self.initial.add(state)
        self._dense = None

    def make_final(self, state: State) -> None:
        self._note_state(state)
        self.states.add(state)
        self.final.add(state)
        self._dense = None

    def add_transition(self, src: State, symbol: Symbol, dst: State) -> None:
        """Add the transition ``src --symbol--> dst``.

        ``symbol`` may be :data:`EPSILON` for an epsilon transition or a
        single-character string.
        """
        if symbol is not None:
            if not isinstance(symbol, str) or len(symbol) != 1:
                raise ValueError(f"symbols must be single characters, got {symbol!r}")
            self._alphabet.add(symbol)
        self._note_state(src)
        self._note_state(dst)
        self._states.add(src)
        self._states.add(dst)
        self._dense = None
        by_state = self._delta.setdefault(src, {})
        targets = by_state.get(symbol)
        if targets is None:
            targets = by_state[symbol] = set()
            self._by_symbol.setdefault(symbol, {})[src] = targets
        targets.add(dst)

    def add_word_path(self, src: State, word: str, dst: State) -> None:
        """Add a chain of transitions spelling ``word`` from ``src`` to ``dst``."""
        if not word:
            self.add_transition(src, EPSILON, dst)
            return
        current = src
        for ch in word[:-1]:
            nxt = self.add_state()
            self.add_transition(current, ch, nxt)
            current = nxt
        self.add_transition(current, word[-1], dst)

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    @property
    def alphabet(self) -> Set[str]:
        """The set of symbols appearing on (non-epsilon) transitions."""
        return set(self._alphabet)

    def successors(self, state: State, symbol: Symbol) -> Set[State]:
        """Return the states reachable from ``state`` via ``symbol``."""
        return set(self._delta.get(state, {}).get(symbol, set()))

    def transitions_on(self, symbol: Symbol) -> Dict[State, Set[State]]:
        """The ``src -> dsts`` map of every transition labelled ``symbol``.

        This is the alphabet-partitioned view: symbol-directed algorithms
        (subset construction, products) fetch one symbol's transitions in a
        single lookup instead of scanning each state's full symbol dict.
        Treat the result as read-only — it aliases the internal index.
        """
        return self._by_symbol.get(symbol, {})

    def transitions_map(self, state: State) -> Dict[Symbol, Set[State]]:
        """The ``symbol -> dsts`` map of transitions leaving ``state``.

        The per-state counterpart of :meth:`transitions_on`: products and
        other symbol-directed sweeps intersect two states' key views instead
        of scanning either side's transitions one at a time.  Treat the
        result as read-only — it aliases the internal delta.
        """
        return self._delta.get(state, {})

    def transitions_from(self, state: State) -> Iterator[Tuple[Symbol, State]]:
        """Iterate over ``(symbol, dst)`` pairs leaving ``state``."""
        for symbol, dsts in self._delta.get(state, {}).items():
            for dst in dsts:
                yield symbol, dst

    def iter_transitions(self) -> Iterator[Transition]:
        """Iterate over all transitions as ``(src, symbol, dst)`` triples."""
        for src, by_symbol in self._delta.items():
            for symbol, dsts in by_symbol.items():
                for dst in dsts:
                    yield src, symbol, dst

    def num_transitions(self) -> int:
        return sum(1 for _ in self.iter_transitions())

    def size(self) -> int:
        """Return ``|Q| + |delta|`` — the size measure used by the paper."""
        return len(self.states) + self.num_transitions()

    def has_epsilon(self) -> bool:
        """Return ``True`` when the automaton contains an epsilon transition."""
        return any(symbol is None for _, symbol, _ in self.iter_transitions())

    # ------------------------------------------------------------------
    # Epsilon closure and membership
    # ------------------------------------------------------------------
    def epsilon_closure(self, states: Iterable[State]) -> FrozenSet[State]:
        """Return the epsilon closure of the given set of states."""
        closure = set(states)
        work = deque(closure)
        while work:
            state = work.popleft()
            for dst in self._delta.get(state, {}).get(EPSILON, set()):
                if dst not in closure:
                    closure.add(dst)
                    work.append(dst)
        return frozenset(closure)

    def accepts(self, word: str) -> bool:
        """Decide whether ``word`` belongs to the language of the automaton.

        Runs on the dense form: one bitset per step instead of a set of
        states (the ε-closure masks are precomputed once per compilation).
        """
        return self.dense().accepts(word)

    # ------------------------------------------------------------------
    # Reachability / emptiness
    # ------------------------------------------------------------------
    def reachable_states(self) -> Set[State]:
        """Return states reachable from some initial state.

        Computed on the dense form: a frontier bitset advanced by per-state
        successor masks (word-parallel), mapped back to facade state ids.
        """
        compiled = self.dense()
        return compiled.ids_of(compiled.reachable_mask())

    def coreachable_states(self) -> Set[State]:
        """Return states from which some final state is reachable."""
        compiled = self.dense()
        return compiled.ids_of(compiled.coreachable_mask())

    def is_empty(self) -> bool:
        """Decide whether the language of the automaton is empty."""
        compiled = self.dense()
        return not (compiled.reachable_mask() & compiled.final)

    def trim(self) -> "Nfa":
        """Return a copy restricted to useful (reachable and co-reachable) states."""
        compiled = self.dense()
        useful_mask = compiled.reachable_mask() & compiled.coreachable_mask()
        useful = compiled.ids_of(useful_mask)
        result = Nfa(self._alphabet)
        result.states = useful
        result.initial = self.initial & useful
        result.final = self.final & useful
        delta = result._delta
        by_symbol = result._by_symbol
        ids = compiled.state_ids
        symbols = compiled.symbols
        edge_src = compiled.edge_src
        edge_sym = compiled.edge_sym
        edge_dst = compiled.edge_dst
        for position in range(len(edge_src)):
            src_index = edge_src[position]
            dst_index = edge_dst[position]
            if not (useful_mask >> src_index) & 1 or not (useful_mask >> dst_index) & 1:
                continue
            src = ids[src_index]
            symbol_index = edge_sym[position]
            symbol = symbols[symbol_index] if symbol_index >= 0 else EPSILON
            by_state = delta.setdefault(src, {})
            targets = by_state.get(symbol)
            if targets is None:
                targets = by_state[symbol] = set()
                by_symbol.setdefault(symbol, {})[src] = targets
            targets.add(ids[dst_index])
        result._sync_state_counter()
        return result

    # ------------------------------------------------------------------
    # Copying / renaming
    # ------------------------------------------------------------------
    def copy(self) -> "Nfa":
        """Return a structural copy of the automaton."""
        result = Nfa(self._alphabet)
        result.states = set(self.states)
        result.initial = set(self.initial)
        result.final = set(self.final)
        for src, by_state in self._delta.items():
            new_by_state = result._delta[src] = {}
            for symbol, dsts in by_state.items():
                targets = new_by_state[symbol] = set(dsts)
                result._by_symbol.setdefault(symbol, {})[src] = targets
        result._sync_state_counter()
        # Same states, same transitions: the dense compilation (immutable)
        # is shared until either side mutates.
        result._dense = self._dense
        return result

    def copy_into(
        self,
        result: "Nfa",
        offset: Optional[int] = None,
        want_mapping: bool = False,
    ) -> CopiedPart:
        """Splice a renumbered copy of this automaton into ``result``.

        States are renamed to ``offset, offset+1, ...`` (``offset`` defaults
        to ``result``'s next fresh id) and added to ``result`` together with
        all transitions, in one bulk pass over the internal tables — the
        shared helper behind ``union``/``concat``/``star``.  The caller
        decides what to do with the returned initial/final sets; nothing is
        marked initial or final in ``result``.  The old→new state map is
        only materialised when ``want_mapping`` is set (contiguous automata
        renumber by plain offset addition, so most callers skip it).
        """
        if offset is None:
            offset = result._next_state
        count = len(self.states)
        mapping: Optional[Dict[State, State]] = None
        if want_mapping or count != self._next_state:
            # Non-contiguous state ids (or an explicit request): build the
            # sorted-order renaming map, exactly as ``renumbered`` always did.
            mapping = {
                state: offset + index
                for index, state in enumerate(sorted(self.states))
            }
            rename = mapping.__getitem__
            result.states.update(mapping.values())
        else:
            # Contiguous ids 0..n-1: renaming is a plain shift.
            rename = offset.__add__
            result.states.update(range(offset, offset + count))
        for src, by_state in self._delta.items():
            new_src = rename(src)
            dest_by_state = result._delta.setdefault(new_src, {})
            for symbol, dsts in by_state.items():
                if mapping is not None:
                    new_dsts = {mapping[dst] for dst in dsts}
                else:
                    new_dsts = {dst + offset for dst in dsts}
                targets = dest_by_state.get(symbol)
                if targets is None:
                    dest_by_state[symbol] = new_dsts
                    result._by_symbol.setdefault(symbol, {})[new_src] = new_dsts
                else:
                    targets |= new_dsts
        result._alphabet |= self._alphabet
        if result._next_state < offset + count:
            result._next_state = offset + count
        result._dense = None
        return CopiedPart(
            initial={rename(s) for s in self.initial},
            final={rename(s) for s in self.final},
            mapping=mapping,
        )

    def renumbered(self, offset: int = 0) -> Tuple["Nfa", Dict[State, State]]:
        """Return a copy with states renamed to ``offset, offset+1, ...``.

        Also returns the renaming map from old to new state identifiers.
        Callers that immediately discard the map should use
        :meth:`copy_into` instead (it skips building it).
        """
        result = Nfa(self._alphabet)
        part = self.copy_into(result, offset, want_mapping=True)
        result.initial = set(part.initial)
        result.final = set(part.final)
        return result, part.mapping

    # ------------------------------------------------------------------
    # Convenience constructors
    # ------------------------------------------------------------------
    @staticmethod
    def from_word(word: str) -> "Nfa":
        """Return an NFA accepting exactly ``{word}``."""
        nfa = Nfa()
        start = nfa.add_state()
        nfa.make_initial(start)
        end = nfa.add_state()
        nfa.make_final(end)
        nfa.add_word_path(start, word, end)
        return nfa

    @staticmethod
    def from_words(words: Iterable[str]) -> "Nfa":
        """Return an NFA accepting exactly the given finite set of words."""
        nfa = Nfa()
        start = nfa.add_state()
        nfa.make_initial(start)
        end = nfa.add_state()
        nfa.make_final(end)
        for word in words:
            nfa.add_word_path(start, word, end)
        return nfa

    @staticmethod
    def universal(alphabet: Iterable[str]) -> "Nfa":
        """Return an NFA accepting every word over ``alphabet`` (i.e. ``Γ*``)."""
        nfa = Nfa(alphabet)
        state = nfa.add_state()
        nfa.make_initial(state)
        nfa.make_final(state)
        for symbol in alphabet:
            nfa.add_transition(state, symbol, state)
        return nfa

    @staticmethod
    def empty_language() -> "Nfa":
        """Return an NFA with the empty language."""
        nfa = Nfa()
        state = nfa.add_state()
        nfa.make_initial(state)
        return nfa

    @staticmethod
    def epsilon_language() -> "Nfa":
        """Return an NFA accepting only the empty word."""
        nfa = Nfa()
        state = nfa.add_state()
        nfa.make_initial(state)
        nfa.make_final(state)
        return nfa

    # ------------------------------------------------------------------
    # Dunder methods
    # ------------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Nfa(states={len(self.states)}, transitions={self.num_transitions()}, "
            f"initial={sorted(self.initial)}, final={sorted(self.final)})"
        )
