"""Nondeterministic finite automata (NFA) over character alphabets.

This module provides the central :class:`Nfa` data structure used throughout
the reproduction.  It plays the role of the Mata library used by Z3-Noodler:
variable languages in regular membership constraints are represented by NFAs,
and the tag-automaton construction of the paper consumes them directly.

States are plain integers, symbols are single-character strings, and
``None`` is used as the epsilon (empty-word) label.  The class is mutable
while being built and is typically treated as immutable afterwards.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Set, Tuple

from ..budget import checkpoint

#: Epsilon label used on transitions that do not consume a symbol.
EPSILON: Optional[str] = None

Symbol = Optional[str]
State = int
Transition = Tuple[State, Symbol, State]


class Nfa:
    """A nondeterministic finite automaton with optional epsilon transitions.

    The automaton is a tuple ``(Q, delta, I, F)`` as in Section 2 of the
    paper.  Transitions are stored as a nested mapping
    ``state -> symbol -> set of successor states``.
    """

    __slots__ = (
        "states",
        "initial",
        "final",
        "_delta",
        "_by_symbol",
        "_alphabet",
        "_next_state",
    )

    def __init__(self, alphabet: Optional[Iterable[str]] = None) -> None:
        self.states: Set[State] = set()
        self.initial: Set[State] = set()
        self.final: Set[State] = set()
        self._delta: Dict[State, Dict[Symbol, Set[State]]] = {}
        #: alphabet-partitioned transition index ``symbol -> src -> dsts``;
        #: the successor sets are shared (aliased) with ``_delta``, so both
        #: views stay consistent at no extra per-transition cost.  Product
        #: constructions and symbol-directed sweeps read this view instead
        #: of scanning every state's whole symbol dict.
        self._by_symbol: Dict[Symbol, Dict[State, Set[State]]] = {}
        self._alphabet: Set[str] = set(alphabet) if alphabet else set()
        #: next fresh state id; kept ahead of every state the mutating
        #: methods have seen so ``add_state()`` is O(1) instead of an O(n)
        #: ``max`` scan (which made loops adding many states quadratic)
        self._next_state: State = 0

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    def _note_state(self, state: State) -> None:
        if state >= self._next_state:
            self._next_state = state + 1

    def _sync_state_counter(self) -> None:
        """Re-derive the fresh-id counter after a bulk ``states`` assignment."""
        self._next_state = max(self.states, default=-1) + 1

    def add_state(self, state: Optional[State] = None) -> State:
        """Add a state (allocating a fresh identifier when none is given)."""
        if state is None:
            state = self._next_state
        self._note_state(state)
        self.states.add(state)
        return state

    def add_states(self, count: int) -> List[State]:
        """Add ``count`` fresh states and return them in order."""
        return [self.add_state() for _ in range(count)]

    def make_initial(self, state: State) -> None:
        self._note_state(state)
        self.states.add(state)
        self.initial.add(state)

    def make_final(self, state: State) -> None:
        self._note_state(state)
        self.states.add(state)
        self.final.add(state)

    def add_transition(self, src: State, symbol: Symbol, dst: State) -> None:
        """Add the transition ``src --symbol--> dst``.

        ``symbol`` may be :data:`EPSILON` for an epsilon transition or a
        single-character string.
        """
        if symbol is not None:
            if not isinstance(symbol, str) or len(symbol) != 1:
                raise ValueError(f"symbols must be single characters, got {symbol!r}")
            self._alphabet.add(symbol)
        self._note_state(src)
        self._note_state(dst)
        self.states.add(src)
        self.states.add(dst)
        by_state = self._delta.setdefault(src, {})
        targets = by_state.get(symbol)
        if targets is None:
            targets = by_state[symbol] = set()
            self._by_symbol.setdefault(symbol, {})[src] = targets
        targets.add(dst)

    def add_word_path(self, src: State, word: str, dst: State) -> None:
        """Add a chain of transitions spelling ``word`` from ``src`` to ``dst``."""
        if not word:
            self.add_transition(src, EPSILON, dst)
            return
        current = src
        for ch in word[:-1]:
            nxt = self.add_state()
            self.add_transition(current, ch, nxt)
            current = nxt
        self.add_transition(current, word[-1], dst)

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    @property
    def alphabet(self) -> Set[str]:
        """The set of symbols appearing on (non-epsilon) transitions."""
        return set(self._alphabet)

    def successors(self, state: State, symbol: Symbol) -> Set[State]:
        """Return the states reachable from ``state`` via ``symbol``."""
        return set(self._delta.get(state, {}).get(symbol, set()))

    def transitions_on(self, symbol: Symbol) -> Dict[State, Set[State]]:
        """The ``src -> dsts`` map of every transition labelled ``symbol``.

        This is the alphabet-partitioned view: symbol-directed algorithms
        (subset construction, products) fetch one symbol's transitions in a
        single lookup instead of scanning each state's full symbol dict.
        Treat the result as read-only — it aliases the internal index.
        """
        return self._by_symbol.get(symbol, {})

    def transitions_map(self, state: State) -> Dict[Symbol, Set[State]]:
        """The ``symbol -> dsts`` map of transitions leaving ``state``.

        The per-state counterpart of :meth:`transitions_on`: products and
        other symbol-directed sweeps intersect two states' key views instead
        of scanning either side's transitions one at a time.  Treat the
        result as read-only — it aliases the internal delta.
        """
        return self._delta.get(state, {})

    def transitions_from(self, state: State) -> Iterator[Tuple[Symbol, State]]:
        """Iterate over ``(symbol, dst)`` pairs leaving ``state``."""
        for symbol, dsts in self._delta.get(state, {}).items():
            for dst in dsts:
                yield symbol, dst

    def iter_transitions(self) -> Iterator[Transition]:
        """Iterate over all transitions as ``(src, symbol, dst)`` triples."""
        for src, by_symbol in self._delta.items():
            for symbol, dsts in by_symbol.items():
                for dst in dsts:
                    yield src, symbol, dst

    def num_transitions(self) -> int:
        return sum(1 for _ in self.iter_transitions())

    def size(self) -> int:
        """Return ``|Q| + |delta|`` — the size measure used by the paper."""
        return len(self.states) + self.num_transitions()

    def has_epsilon(self) -> bool:
        """Return ``True`` when the automaton contains an epsilon transition."""
        return any(symbol is None for _, symbol, _ in self.iter_transitions())

    # ------------------------------------------------------------------
    # Epsilon closure and membership
    # ------------------------------------------------------------------
    def epsilon_closure(self, states: Iterable[State]) -> FrozenSet[State]:
        """Return the epsilon closure of the given set of states."""
        closure = set(states)
        work = deque(closure)
        while work:
            state = work.popleft()
            for dst in self._delta.get(state, {}).get(EPSILON, set()):
                if dst not in closure:
                    closure.add(dst)
                    work.append(dst)
        return frozenset(closure)

    def accepts(self, word: str) -> bool:
        """Decide whether ``word`` belongs to the language of the automaton."""
        current = self.epsilon_closure(self.initial)
        for ch in word:
            nxt: Set[State] = set()
            for state in current:
                nxt |= self._delta.get(state, {}).get(ch, set())
            if not nxt:
                return False
            current = self.epsilon_closure(nxt)
        return any(state in self.final for state in current)

    # ------------------------------------------------------------------
    # Reachability / emptiness
    # ------------------------------------------------------------------
    def reachable_states(self) -> Set[State]:
        """Return states reachable from some initial state."""
        seen: Set[State] = set()
        work = deque(self.initial)
        seen.update(self.initial)
        while work:
            checkpoint("automata.reachable")
            state = work.popleft()
            for _, dst in self.transitions_from(state):
                if dst not in seen:
                    seen.add(dst)
                    work.append(dst)
        return seen

    def coreachable_states(self) -> Set[State]:
        """Return states from which some final state is reachable."""
        predecessors: Dict[State, Set[State]] = {}
        for src, _, dst in self.iter_transitions():
            predecessors.setdefault(dst, set()).add(src)
        seen: Set[State] = set(self.final)
        work = deque(self.final)
        while work:
            checkpoint("automata.coreachable")
            state = work.popleft()
            for src in predecessors.get(state, set()):
                if src not in seen:
                    seen.add(src)
                    work.append(src)
        return seen

    def is_empty(self) -> bool:
        """Decide whether the language of the automaton is empty."""
        return not (self.reachable_states() & self.final)

    def trim(self) -> "Nfa":
        """Return a copy restricted to useful (reachable and co-reachable) states."""
        useful = self.reachable_states() & self.coreachable_states()
        result = Nfa(self._alphabet)
        result.states = set(useful)
        result.initial = self.initial & useful
        result.final = self.final & useful
        for src, symbol, dst in self.iter_transitions():
            if src in useful and dst in useful:
                result.add_transition(src, symbol, dst)
        # ``add_transition`` may have re-added states; restrict again.
        result.states &= useful | result.initial | result.final
        if not result.states and self.initial & self.final:
            # The empty word is accepted but there are no transitions.
            state = next(iter(self.initial & self.final))
            result.states = {state}
            result.initial = {state}
            result.final = {state}
        result._sync_state_counter()
        return result

    # ------------------------------------------------------------------
    # Copying / renaming
    # ------------------------------------------------------------------
    def copy(self) -> "Nfa":
        """Return a structural copy of the automaton."""
        result = Nfa(self._alphabet)
        result.states = set(self.states)
        result.initial = set(self.initial)
        result.final = set(self.final)
        result._sync_state_counter()
        for src, symbol, dst in self.iter_transitions():
            result.add_transition(src, symbol, dst)
        return result

    def renumbered(self, offset: int = 0) -> Tuple["Nfa", Dict[State, State]]:
        """Return a copy with states renamed to ``offset, offset+1, ...``.

        Also returns the renaming map from old to new state identifiers.
        """
        mapping = {state: offset + index for index, state in enumerate(sorted(self.states))}
        result = Nfa(self._alphabet)
        result.states = set(mapping.values())
        result.initial = {mapping[s] for s in self.initial}
        result.final = {mapping[s] for s in self.final}
        result._sync_state_counter()
        for src, symbol, dst in self.iter_transitions():
            result.add_transition(mapping[src], symbol, mapping[dst])
        return result, mapping

    # ------------------------------------------------------------------
    # Convenience constructors
    # ------------------------------------------------------------------
    @staticmethod
    def from_word(word: str) -> "Nfa":
        """Return an NFA accepting exactly ``{word}``."""
        nfa = Nfa()
        start = nfa.add_state()
        nfa.make_initial(start)
        end = nfa.add_state()
        nfa.make_final(end)
        nfa.add_word_path(start, word, end)
        return nfa

    @staticmethod
    def from_words(words: Iterable[str]) -> "Nfa":
        """Return an NFA accepting exactly the given finite set of words."""
        nfa = Nfa()
        start = nfa.add_state()
        nfa.make_initial(start)
        end = nfa.add_state()
        nfa.make_final(end)
        for word in words:
            nfa.add_word_path(start, word, end)
        return nfa

    @staticmethod
    def universal(alphabet: Iterable[str]) -> "Nfa":
        """Return an NFA accepting every word over ``alphabet`` (i.e. ``Γ*``)."""
        nfa = Nfa(alphabet)
        state = nfa.add_state()
        nfa.make_initial(state)
        nfa.make_final(state)
        for symbol in alphabet:
            nfa.add_transition(state, symbol, state)
        return nfa

    @staticmethod
    def empty_language() -> "Nfa":
        """Return an NFA with the empty language."""
        nfa = Nfa()
        state = nfa.add_state()
        nfa.make_initial(state)
        return nfa

    @staticmethod
    def epsilon_language() -> "Nfa":
        """Return an NFA accepting only the empty word."""
        nfa = Nfa()
        state = nfa.add_state()
        nfa.make_initial(state)
        nfa.make_final(state)
        return nfa

    # ------------------------------------------------------------------
    # Dunder methods
    # ------------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Nfa(states={len(self.states)}, transitions={self.num_transitions()}, "
            f"initial={sorted(self.initial)}, final={sorted(self.final)})"
        )
