"""Flatness of NFAs.

Section 2 of the paper defines an NFA to be *flat* when any two runs with the
same Parikh image (counting transitions) are equal.  Structurally, a trimmed
automaton is flat iff every cycle is a simple loop and no state lies on two
distinct cycles — i.e. every strongly connected component is either a single
state without a self-structure or one simple cycle whose states have exactly
one successor inside the component.

Flatness matters for the ¬contains procedure (§6.4): only for flat automata
does a model of the Parikh formula determine the accepted word uniquely.
"""

from __future__ import annotations

from typing import Dict, List, Set

from .dense import as_nfa
from .nfa import Nfa, State


def strongly_connected_components(nfa) -> List[Set[State]]:
    """Return the SCCs of the transition graph (Tarjan's algorithm, iterative)."""
    nfa = as_nfa(nfa)
    graph: Dict[State, List[State]] = {state: [] for state in nfa.states}
    for src, _, dst in nfa.iter_transitions():
        graph.setdefault(src, []).append(dst)
        graph.setdefault(dst, [])

    index_counter = 0
    indices: Dict[State, int] = {}
    lowlinks: Dict[State, int] = {}
    on_stack: Set[State] = set()
    stack: List[State] = []
    components: List[Set[State]] = []

    for root in graph:
        if root in indices:
            continue
        work: List[tuple] = [(root, iter(graph[root]))]
        indices[root] = lowlinks[root] = index_counter
        index_counter += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, successors = work[-1]
            advanced = False
            for succ in successors:
                if succ not in indices:
                    indices[succ] = lowlinks[succ] = index_counter
                    index_counter += 1
                    stack.append(succ)
                    on_stack.add(succ)
                    work.append((succ, iter(graph[succ])))
                    advanced = True
                    break
                if succ in on_stack:
                    lowlinks[node] = min(lowlinks[node], indices[succ])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlinks[parent] = min(lowlinks[parent], lowlinks[node])
            if lowlinks[node] == indices[node]:
                component: Set[State] = set()
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.add(member)
                    if member == node:
                        break
                components.append(component)
    return components


def is_flat(nfa: Nfa) -> bool:
    """Decide whether the (trimmed) automaton is flat.

    The check is structural: inside every non-trivial SCC each state must
    have exactly one outgoing transition that stays inside the SCC, and the
    SCC must form a single simple cycle.  Single states with several parallel
    self-loop symbols are *not* flat (two runs ``ab`` and ``ba`` share a
    Parikh image), so parallel intra-SCC transitions also violate flatness.
    Accepts either automaton form.
    """
    trimmed = as_nfa(nfa).trim()
    components = strongly_connected_components(trimmed)
    for component in components:
        internal_out: Dict[State, int] = {state: 0 for state in component}
        has_internal_edge = False
        for src, _, dst in trimmed.iter_transitions():
            if src in component and dst in component:
                internal_out[src] += 1
                has_internal_edge = True
        if not has_internal_edge:
            continue
        # Every state of a cyclic SCC must have exactly one internal successor
        # transition — this forces the SCC to be one simple (non-nested) loop
        # without parallel edges.
        if any(count != 1 for count in internal_out.values()):
            return False
    return True


def flat_witness(nfa) -> str:
    """Return a human-readable explanation of why ``nfa`` is or is not flat."""
    trimmed = as_nfa(nfa).trim()
    for component in strongly_connected_components(trimmed):
        internal = [
            (src, symbol, dst)
            for src, symbol, dst in trimmed.iter_transitions()
            if src in component and dst in component
        ]
        if not internal:
            continue
        out_degree: Dict[State, int] = {state: 0 for state in component}
        for src, _, _ in internal:
            out_degree[src] += 1
        offenders = [state for state, degree in out_degree.items() if degree != 1]
        if offenders:
            return (
                f"not flat: component {sorted(component)} has states {sorted(offenders)} "
                f"with internal out-degree != 1"
            )
    return "flat"
