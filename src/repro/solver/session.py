"""The incremental session API (`repro.Session`).

A :class:`Session` is the solver-side of an SMT-LIB-style interaction: a
stack of named assertions manipulated with :meth:`~Session.add`,
:meth:`~Session.push` and :meth:`~Session.pop`, decided by
:meth:`~Session.check` (optionally under extra *assumptions*), with
:meth:`~Session.model`, :meth:`~Session.statistics` and
:meth:`~Session.unsat_core` reporting on the last verdict.

Every session owns one :class:`~repro.solver.solver.IncrementalPipeline`,
so chains of related checks reuse normalisation, decomposition, the
tag-automaton encodings and the per-branch LIA assertion stacks across
calls — the access pattern of symbolic-execution clients, where each path
extends the previous one by a constraint or two.  Assertions may use the
extended extraction atoms (:class:`~repro.strings.ast.SubstrAtom`,
:class:`~repro.strings.ast.IndexOfAtom`,
:class:`~repro.strings.ast.ReplaceAtom`); the pipeline compiles them away
per check and maps cores back.  A session is *not* thread-safe; give each
worker its own.

Unsat cores
-----------

``check`` seeds a core from the refutation participants the pipeline
threads up from the LIA layer (``SolveResult.core_atoms``): integer atoms
are *exact* — each travels as a labelled assumption literal and an UNSAT
answer's final-conflict analysis names precisely the ones it needed — while
string atoms map through the conflict-variable provenance.
:meth:`~Session.unsat_core` verifies that the candidate set really is
unsatisfiable on its own (one re-check, falling back to the full assertion
set when the over-approximation turns out incomplete) and reports it in
assertion order — every reported core is a set of assertions that was
*checked* to be jointly unsatisfiable, and bystander assertions never
appear in it.  The historical deletion-test minimiser is kept behind
``SolverConfig.core_deletion_check`` as an independent cross-check.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from ..budget import Budget
from ..strings.ast import Atom, Problem
from .config import SolverConfig
from .result import SolveResult, Status, StringModel
from .solver import IncrementalPipeline

#: assumptions accepted by :meth:`Session.check`: bare atoms or named pairs
Assumption = Union[Atom, Tuple[str, Atom]]

#: deletion tests are skipped above this candidate-core size (the
#: provenance-seeded candidate set is still verified and returned)
_MINIMIZE_LIMIT = 24


class Session:
    """An incremental solving session over a stack of named assertions."""

    def __init__(
        self,
        config: Optional[SolverConfig] = None,
        alphabet: Sequence[str] = ("a", "b"),
        name: str = "",
        normalization_cache=None,
    ) -> None:
        self.config = config or SolverConfig()
        self.alphabet: Tuple[str, ...] = tuple(alphabet)
        self.name = name
        self._pipeline = IncrementalPipeline(
            self.config, normalization_cache=normalization_cache
        )
        #: assertion stack: one list of (name, atom) pairs per level
        self._frames: List[List[Tuple[str, Atom]]] = [[]]
        #: names of the active assertions (kept in sync with the frames so
        #: that ``add`` stays O(1) — scripts assert thousands of atoms)
        self._active_names: set = set()
        self._auto = 0
        self._cumulative: Dict[str, int] = {}
        self._last: Optional[SolveResult] = None
        #: the exact (name, atom) list the last check decided
        self._last_atoms: List[Tuple[str, Atom]] = []
        self._last_core: Optional[Tuple[str, ...]] = None

    # ------------------------------------------------------------------
    # Assertion stack
    # ------------------------------------------------------------------
    def add(self, atom: Atom, name: Optional[str] = None) -> str:
        """Assert ``atom`` at the current level; returns its (unique) name."""
        if name is None:
            while True:
                name = f"a{self._auto}"
                self._auto += 1
                if name not in self._active_names:
                    break
        elif name in self._active_names:
            raise ValueError(f"assertion name {name!r} is already in use")
        self._active_names.add(name)
        self._frames[-1].append((name, atom))
        return name

    def push(self) -> None:
        """Open a new assertion-stack level."""
        self._frames.append([])

    def pop(self, levels: int = 1) -> None:
        """Drop the most recent ``levels`` assertion-stack levels."""
        if levels < 0:
            raise ValueError("cannot pop a negative number of levels")
        if levels >= len(self._frames):
            raise IndexError("pop past the base assertion level")
        # repro: allow(checkpoint-coverage): pops only already-asserted frames — bounded by the assertion stack, no solving happens here
        for _ in range(levels):
            for name, _atom in self._frames.pop():
                self._active_names.discard(name)

    def assertions(self) -> Tuple[Tuple[str, Atom], ...]:
        """The active assertions, bottom of the stack first."""
        return tuple(pair for frame in self._frames for pair in frame)

    def __len__(self) -> int:
        return sum(len(frame) for frame in self._frames)

    @property
    def depth(self) -> int:
        """Number of pushed levels (0 at the base)."""
        return len(self._frames) - 1

    # ------------------------------------------------------------------
    # Solving
    # ------------------------------------------------------------------
    def _named_assumptions(self, assumptions: Iterable[Assumption]) -> List[Tuple[str, Atom]]:
        named: List[Tuple[str, Atom]] = []
        taken = set(self._active_names)
        counter = 0
        for entry in assumptions:
            if isinstance(entry, tuple) and len(entry) == 2 and isinstance(entry[0], str):
                name, atom = entry
                if name in taken:
                    raise ValueError(f"assumption name {name!r} shadows an assertion")
            else:
                atom = entry
                while True:
                    name = f"assume{counter}"
                    counter += 1
                    if name not in taken:
                        break
            taken.add(name)
            named.append((name, atom))
        return named

    def _problem_for(self, entries: Sequence[Tuple[str, Atom]]) -> Problem:
        return Problem(
            atoms=[atom for _, atom in entries], alphabet=self.alphabet, name=self.name
        )

    def check(
        self,
        assumptions: Iterable[Assumption] = (),
        *,
        timeout: Optional[float] = None,
        budget: Optional[Budget] = None,
    ) -> SolveResult:
        """Decide the conjunction of the active assertions (+ assumptions).

        Assumptions are one-check assertions: they participate in the
        verdict, the model and the unsat core of *this* call only.

        ``timeout`` overrides ``config.timeout`` for this call; ``budget``
        passes a caller-built :class:`~repro.budget.Budget` instead (for
        shared deadlines, step limits or fault-injection hooks) and wins
        over ``timeout``.  A check that runs out of budget answers
        ``timeout``/``unknown`` with a structured
        :class:`~repro.budget.UnknownReason`; the session itself stays
        usable — caches are transactional, so a later check (e.g. with a
        larger budget) picks up exactly where a fresh solver would.
        """
        if budget is None and timeout is not None:
            budget = Budget(timeout, max_steps=self.config.max_steps)
        entries = list(self.assertions()) + self._named_assumptions(assumptions)
        result = self._pipeline.check(self._problem_for(entries), budget=budget)
        for key, value in result.stats.items():
            self._cumulative[key] = self._cumulative.get(key, 0) + value
        self._last = result
        self._last_atoms = entries
        self._last_core = None
        return result

    def model(self) -> Optional[StringModel]:
        """The model of the last ``sat`` verdict (``None`` otherwise)."""
        if self._last is None:
            return None
        return self._last.model

    def statistics(self) -> Dict[str, int]:
        """Cumulative counters: pipeline cache reuse plus LIA solve stats.

        The automata-layer entries (``automata_cache_*``, the dense
        compilation and interning counters) accumulate from the per-check
        deltas each :class:`~repro.solver.result.SolveResult` reports in
        ``stats`` — the same numbers, summed over this session's checks.
        """
        stats = dict(self._pipeline.counters)
        for key, value in self._cumulative.items():
            stats[key] = stats.get(key, 0) + value
        return stats

    # ------------------------------------------------------------------
    # Unsat cores
    # ------------------------------------------------------------------
    def unsat_core(self, minimize: bool = True) -> Tuple[str, ...]:
        """Names of assertions that are jointly unsatisfiable.

        Requires the last :meth:`check` to have answered ``unsat``.  The
        candidate set is seeded from the pipeline's refutation provenance —
        integer atoms exactly, via the LIA layer's assumption literals and
        final-conflict analysis; string atoms through the conflict-variable
        mapping — and verified by one re-check when it is a proper subset.
        Core atoms are reported **in assertion order** (deterministic across
        runs).  The historical deletion-test minimiser (one re-solve per
        candidate atom) only runs when
        :attr:`~repro.solver.config.SolverConfig.core_deletion_check` is
        set; it remains available as an independent cross-check of the
        assumption-literal cores.  The result is cached until the next
        ``check``.
        """
        if self._last is None or self._last.status is not Status.UNSAT:
            raise RuntimeError("unsat_core requires the last check to be unsat")
        if self._last_core is not None:
            return self._last_core

        entries = self._last_atoms
        everything = list(range(len(entries)))
        if self._last.core_atoms is None:
            kept = everything
        else:
            # Candidates from tight to wide; the first whose verification
            # re-check stays unsat wins, the full (already-verified)
            # assertion set is the last resort.  Assertion-index order,
            # never set-iteration order: cores must be stable across runs
            # and hash seeds.
            candidates = [sorted(self._last.core_atoms)]
            if self._last.core_atoms_widened is not None:
                candidates.append(sorted(self._last.core_atoms_widened))
            kept = everything
            for candidate in candidates:
                if candidate == everything:
                    break
                verdict = self._pipeline.check(
                    self._problem_for([entries[i] for i in candidate])
                )
                if verdict.status is Status.UNSAT:
                    kept = candidate
                    break

        if (
            self.config.core_deletion_check
            and minimize
            and len(kept) <= _MINIMIZE_LIMIT
        ):
            position = 0
            while position < len(kept) and len(kept) > 1:
                trial = kept[:position] + kept[position + 1 :]
                verdict = self._pipeline.check(
                    self._problem_for([entries[i] for i in trial])
                )
                if verdict.status is Status.UNSAT:
                    kept = trial
                else:
                    position += 1

        self._last_core = tuple(entries[i][0] for i in kept)
        return self._last_core
