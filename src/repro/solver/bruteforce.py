"""Bounded brute-force oracle.

Unlike :class:`repro.solver.enumerative.EnumerativeSolver` (which is one of
the benchmark baselines), this oracle is a *testing* device: it answers SAT
or UNSAT only when the answer is certain within the given bound (finite
languages, bounded integers) and is used to cross-check the other solvers.
"""

from __future__ import annotations

from itertools import product
from typing import Dict, List, Optional, Tuple

from ..automata.enumeration import is_finite, words_up_to
from ..automata.nfa import Nfa
from ..strings.ast import EXTENDED_ATOMS, Problem
from ..strings.normal_form import normalize
from ..strings.semantics import eval_problem
from .result import SolveResult, Status, StringModel, Stopwatch


def brute_force_check(
    problem: Problem,
    max_length: int = 4,
    integer_bounds: Tuple[int, int] = (-1, 8),
    timeout: Optional[float] = None,
) -> SolveResult:
    """Exhaustively search for a model within the given bounds.

    Returns SAT with a model, UNSAT when the search space provably covers
    every candidate (all languages finite within the bound and no integer
    variables beyond the supplied range matter), and UNKNOWN otherwise.
    """
    watch = Stopwatch(timeout)
    # The normal form only exists for the conjunctive core; the extended
    # atoms (substr/indexof/replace) contribute no membership constraints
    # and are checked purely by evaluation below.
    core = Problem(
        atoms=[atom for atom in problem.atoms if not isinstance(atom, EXTENDED_ATOMS)],
        alphabet=problem.alphabet,
        name=problem.name,
    )
    normal_form = normalize(core)
    variables = list(problem.string_variables())
    integer_variables = list(problem.integer_variables())

    candidate_words: Dict[str, List[str]] = {}
    exhaustive = True
    alphabet = tuple(problem.alphabet)
    for name in variables:
        nfa = normal_form.automata.get(name)
        if nfa is None:
            # Only extended atoms mention the variable: every word over the
            # alphabet is a candidate (never an exhaustive enumeration).
            nfa = Nfa.universal(alphabet)
        candidate_words[name] = list(words_up_to(nfa, max_length))
        if not is_finite(nfa):
            exhaustive = False

    low, high = integer_bounds
    integer_domain = list(range(low, high + 1))

    names = sorted(candidate_words)
    for choice in product(*(candidate_words[name] for name in names)):
        if watch.expired():
            return SolveResult(Status.TIMEOUT, elapsed=watch.elapsed())
        strings = dict(zip(names, choice))
        for values in product(integer_domain, repeat=len(integer_variables)):
            integers = dict(zip(integer_variables, values))
            if eval_problem(problem, strings, integers):
                return SolveResult(
                    Status.SAT,
                    model=StringModel(strings=strings, integers=integers),
                    elapsed=watch.elapsed(),
                )

    if exhaustive and not integer_variables:
        return SolveResult(Status.UNSAT, elapsed=watch.elapsed())
    return SolveResult(Status.UNKNOWN, elapsed=watch.elapsed(), reason="bounded search exhausted")
