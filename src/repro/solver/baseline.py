"""Baseline solver: eager reduction of position constraints to word equations.

This reproduces the strategy the paper improves upon (§1, §3): instead of the
dedicated position procedure, every position constraint is rewritten into
word equations plus length constraints *before* solving, and the resulting
(much harder) equation system is handed to the standard pipeline
(stabilization + Parikh/LIA without any position predicates).

The reduction enumerates the mismatching letter pair, e.g. for a disequality

    t ≠ t'   ⇝   len(t) ≠ len(t')
               ∨ ⋁_{a≠b} ∃ p s s' :  t = p·a·s  ∧  t' = p·b·s'

Negated ``str.at`` and ¬contains have no quantifier-free reduction of this
kind; on inputs containing them the baseline answers ``UNKNOWN`` (real
solvers resort to incomplete heuristics here, as discussed in §9).
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import permutations
from typing import List, Optional, Tuple

from ..budget import checkpoint
from ..lia import ne as lia_ne
from ..lia import gt as lia_gt
from ..strings.ast import (
    Contains,
    LengthConstraint,
    PrefixOf,
    Problem,
    StrAtAtom,
    StringLiteral,
    StringTerm,
    StringVar,
    SuffixOf,
    WordEquation,
    str_len,
    term,
)
from .config import SolverConfig
from .result import SolveResult, Status, Stopwatch
from .solver import PositionSolver


def _term_length(string_term: StringTerm):
    """LIA expression for the length of a string term."""
    total = None
    from ..lia import LinExpr

    total = LinExpr.constant(0)
    for element in string_term:
        if isinstance(element, StringVar):
            total = total + str_len(element.name)
        else:
            total = total + len(element.value)
    return total


class EagerReductionSolver:
    """The "reduce to equations first" baseline (original Z3-Noodler strategy)."""

    def __init__(self, config: Optional[SolverConfig] = None) -> None:
        self.config = config or SolverConfig()
        self._fresh = 0

    def _fresh_var(self) -> StringVar:
        self._fresh += 1
        return StringVar(f"_bl{self._fresh}")

    # ------------------------------------------------------------------
    def _mismatch_alternatives(
        self, lhs: StringTerm, rhs: StringTerm, alphabet, length_atom
    ) -> List[List]:
        """Alternatives for "lhs and rhs differ": length or a letter mismatch."""
        alternatives: List[List] = [[length_atom]]
        for a in alphabet:
            # |Σ|² alternatives: the baseline's blow-up must stay budgeted.
            checkpoint("solver.baseline", len(alphabet))
            for b in alphabet:
                if a == b:
                    continue
                prefix = self._fresh_var()
                left_rest = self._fresh_var()
                right_rest = self._fresh_var()
                alternatives.append(
                    [
                        WordEquation(lhs, (prefix, StringLiteral(a), left_rest)),
                        WordEquation(rhs, (prefix, StringLiteral(b), right_rest)),
                    ]
                )
        return alternatives

    def _reduce_atom(self, atom, alphabet) -> Optional[List[List]]:
        """Return a list of alternatives (each a list of atoms), or ``None``."""
        if isinstance(atom, WordEquation) and not atom.positive:
            length_atom = LengthConstraint(lia_ne(_term_length(atom.lhs), _term_length(atom.rhs)))
            return self._mismatch_alternatives(atom.lhs, atom.rhs, alphabet, length_atom)
        if isinstance(atom, PrefixOf) and not atom.positive:
            length_atom = LengthConstraint(lia_gt(_term_length(atom.lhs), _term_length(atom.rhs)))
            return self._mismatch_alternatives(atom.lhs, atom.rhs, alphabet, length_atom)
        if isinstance(atom, SuffixOf) and not atom.positive:
            # Mismatch counted from the end: reduce via reversed padding
            # t not a suffix of t'  <=>  len(t) > len(t')  ∨  ∃ s a b s1 s2:
            #     t = s1·a·s ∧ t' = s2·b·s ∧ a ≠ b   (same suffix s after the mismatch)
            alternatives: List[List] = [
                [LengthConstraint(lia_gt(_term_length(atom.lhs), _term_length(atom.rhs)))]
            ]
            for a in alphabet:
                checkpoint("solver.baseline", len(alphabet))
                for b in alphabet:
                    if a == b:
                        continue
                    shared = self._fresh_var()
                    left_head = self._fresh_var()
                    right_head = self._fresh_var()
                    alternatives.append(
                        [
                            WordEquation(atom.lhs, (left_head, StringLiteral(a), shared)),
                            WordEquation(atom.rhs, (right_head, StringLiteral(b), shared)),
                        ]
                    )
            return alternatives
        if isinstance(atom, StrAtAtom) and atom.positive:
            # target = str.at(h, i): either out of bounds and target = ε, or
            # h = p · target · s with len(p) = i and len(target) = 1.
            from ..lia import conj as lia_conj
            from ..lia import ge as lia_ge
            from ..lia import lt as lia_lt, eq as lia_eq, disj as lia_disj

            prefix, suffix = self._fresh_var(), self._fresh_var()
            target_term = (atom.target,)
            in_bounds = [
                WordEquation(atom.haystack, (prefix, atom.target, suffix)),
                LengthConstraint(lia_eq(str_len(prefix.name), atom.index)),
                LengthConstraint(lia_eq(_term_length(target_term), 1)),
            ]
            out_of_bounds = [
                WordEquation(target_term, (StringLiteral(""),)),
                LengthConstraint(
                    lia_disj([lia_lt(atom.index, 0), lia_ge(atom.index, _term_length(atom.haystack))])
                ),
            ]
            return [in_bounds, out_of_bounds]
        return None

    # ------------------------------------------------------------------
    def check(self, problem: Problem) -> SolveResult:
        """Decide satisfiability by eager reduction + the equation pipeline."""
        watch = Stopwatch(self.config.timeout)
        base_atoms = []
        alternative_sets: List[List[List]] = []
        for atom in problem.atoms:
            if isinstance(atom, (WordEquation, PrefixOf, SuffixOf)) and not atom.positive:
                reduced = self._reduce_atom(atom, problem.alphabet)
                alternative_sets.append(reduced)
            elif isinstance(atom, StrAtAtom) and atom.positive:
                alternative_sets.append(self._reduce_atom(atom, problem.alphabet))
            elif isinstance(atom, (Contains, StrAtAtom)) and not atom.positive:
                return SolveResult(Status.UNKNOWN, elapsed=watch.elapsed(),
                                   reason="eager baseline cannot reduce this predicate")
            else:
                base_atoms.append(atom)

        # Cartesian product of alternatives, explored depth-first.
        inner_config = SolverConfig(
            timeout=None,  # the outer stopwatch governs the budget
            max_branches=self.config.max_branches,
            max_noodles=self.config.max_noodles,
            lia=self.config.lia,
        )
        solver = PositionSolver(inner_config)

        saw_unknown = False
        explored = 0

        def explore(index: int, atoms: List) -> Optional[SolveResult]:
            nonlocal saw_unknown, explored
            if watch.expired():
                return SolveResult(Status.TIMEOUT, elapsed=watch.elapsed(), reason="timeout")
            if index == len(alternative_sets):
                explored += 1
                candidate = Problem(list(atoms), alphabet=problem.alphabet)
                remaining = None if watch.timeout is None else max(0.5, watch.timeout - watch.elapsed())
                solver.config.timeout = remaining
                result = solver.check(candidate)
                if result.status is Status.SAT:
                    return result
                if result.status in (Status.UNKNOWN, Status.TIMEOUT):
                    saw_unknown = True
                return None
            for alternative in alternative_sets[index]:
                result = explore(index + 1, atoms + alternative)
                if result is not None:
                    return result
            return None

        result = explore(0, list(base_atoms))
        if result is not None:
            result.branches_explored = explored
            return result
        if watch.expired():
            return SolveResult(Status.TIMEOUT, elapsed=watch.elapsed(), reason="timeout",
                               branches_explored=explored)
        if saw_unknown:
            return SolveResult(Status.UNKNOWN, elapsed=watch.elapsed(),
                               reason="some reduced system could not be decided",
                               branches_explored=explored)
        return SolveResult(Status.UNSAT, elapsed=watch.elapsed(), branches_explored=explored)
