"""Result types shared by all solver frontends."""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, Optional


class Status(Enum):
    """Verdict of a satisfiability check."""

    SAT = "sat"
    UNSAT = "unsat"
    UNKNOWN = "unknown"
    TIMEOUT = "timeout"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass
class StringModel:
    """A model: words for string variables, integers for integer variables."""

    strings: Dict[str, str] = field(default_factory=dict)
    integers: Dict[str, int] = field(default_factory=dict)

    def __getitem__(self, name: str) -> str:
        return self.strings[name]


@dataclass
class SolveResult:
    """Status plus optional model, timing and diagnostic information."""

    status: Status
    model: Optional[StringModel] = None
    elapsed: float = 0.0
    reason: str = ""
    #: number of decomposition branches explored
    branches_explored: int = 0
    #: number of LIA queries issued
    lia_queries: int = 0
    #: aggregated SAT/simplex counters (decisions, propagations, conflicts,
    #: theory_checks, learned_clauses, restarts, pivots, cache_hits, ...)
    stats: Dict[str, int] = field(default_factory=dict)

    @property
    def is_sat(self) -> bool:
        return self.status is Status.SAT

    @property
    def is_unsat(self) -> bool:
        return self.status is Status.UNSAT

    @property
    def solved(self) -> bool:
        return self.status in (Status.SAT, Status.UNSAT)


class Stopwatch:
    """Tiny helper measuring elapsed wall-clock time and deadlines."""

    def __init__(self, timeout: Optional[float] = None) -> None:
        self.start = time.monotonic()
        self.timeout = timeout

    @property
    def deadline(self) -> Optional[float]:
        if self.timeout is None:
            return None
        return self.start + self.timeout

    def elapsed(self) -> float:
        return time.monotonic() - self.start

    def expired(self) -> bool:
        return self.timeout is not None and time.monotonic() > self.start + self.timeout
