"""Result types shared by all solver frontends."""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, FrozenSet, Iterator, Optional, Union

from ..budget import Budget, UnknownReason


class Status(Enum):
    """Verdict of a satisfiability check."""

    SAT = "sat"
    UNSAT = "unsat"
    UNKNOWN = "unknown"
    TIMEOUT = "timeout"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass
class StringModel:
    """A model: words for string variables, integers for integer variables.

    The mapping interface spans *both* sorts: ``model["x"]`` returns the
    word of a string variable or the value of an integer variable (string
    variables win on a name clash), ``in`` / iteration / ``get`` behave
    accordingly, and :meth:`to_smtlib` renders the model the way the
    ``get-model`` command of the SMT-LIB frontend prints it.
    """

    strings: Dict[str, str] = field(default_factory=dict)
    integers: Dict[str, int] = field(default_factory=dict)

    def __getitem__(self, name: str) -> Union[str, int]:
        if name in self.strings:
            return self.strings[name]
        return self.integers[name]

    def __contains__(self, name: object) -> bool:
        return name in self.strings or name in self.integers

    def __iter__(self) -> Iterator[str]:
        seen = dict.fromkeys(self.strings)
        for name in self.integers:
            seen.setdefault(name, None)
        return iter(seen)

    def __len__(self) -> int:
        return len(set(self.strings) | set(self.integers))

    def get(self, name: str, default=None):
        if name in self.strings:
            return self.strings[name]
        return self.integers.get(name, default)

    def to_smtlib(self) -> str:
        """Render the model as an SMT-LIB ``get-model`` response."""
        # One source of truth for literal rendering: the frontend printer.
        # (Imported lazily — repro.smtlib is a sibling package that loads
        # after this module.)
        from ..smtlib.printer import _int_literal, _string_literal

        lines = ["("]
        for name in sorted(self.strings):
            literal = _string_literal(self.strings[name])
            lines.append(f"  (define-fun {name} () String {literal})")
        for name in sorted(self.integers):
            lines.append(f"  (define-fun {name} () Int {_int_literal(self.integers[name])})")
        lines.append(")")
        return "\n".join(lines)


@dataclass
class SolveResult:
    """Status plus optional model, timing and diagnostic information."""

    status: Status
    model: Optional[StringModel] = None
    elapsed: float = 0.0
    #: why the verdict is not sat/unsat: a typed :class:`UnknownReason`
    #: for unknown/timeout results from the main pipeline ("" otherwise).
    #: Legacy frontends may still fill in a free-text string; ``str(reason)``
    #: is always the displayable form.
    reason: Union[str, UnknownReason] = ""
    #: number of decomposition branches explored
    branches_explored: int = 0
    #: number of LIA queries issued
    lia_queries: int = 0
    #: aggregated SAT/simplex counters (decisions, propagations, conflicts,
    #: theory_checks, learned_clauses, restarts, pivots, cache_hits, ...)
    stats: Dict[str, int] = field(default_factory=dict)
    #: for UNSAT: indices (into the checked problem's atom list) of the
    #: atoms the refutation participants map back to — an over-approximated
    #: unsat core seeded from the LIA conflict provenance (integer atoms are
    #: exact, via assumption-literal final-conflict analysis).  ``None``
    #: means the participants could not be tracked (callers must treat
    #: every atom as a candidate).
    core_atoms: Optional[FrozenSet[int]] = None
    #: for UNSAT: ``core_atoms`` widened by the word equations and their
    #: variables' atoms — the fallback candidate when branches were pruned
    #: inside the decomposition (whose refutations implicate the equations
    #: without reporting participants).  ``None`` when identical to
    #: ``core_atoms``.
    core_atoms_widened: Optional[FrozenSet[int]] = None

    @property
    def is_sat(self) -> bool:
        return self.status is Status.SAT

    @property
    def is_unsat(self) -> bool:
        return self.status is Status.UNSAT

    @property
    def solved(self) -> bool:
        return self.status in (Status.SAT, Status.UNSAT)


#: Backward-compatible alias: the old elapsed/deadline helper grew into the
#: repo-wide :class:`repro.budget.Budget`; ``Stopwatch(timeout)`` still
#: works and now additionally supports cooperative checkpoints.
Stopwatch = Budget
