"""An enumerative (guess-and-check) solver.

This plays the role of the "guessing" strategy the paper attributes to
eager/value-based solvers: satisfiable instances with small models are found
quickly by enumerating candidate words from the regular constraints and
evaluating the constraint directly, but unsatisfiable instances over infinite
languages can never be refuted (the solver answers ``UNKNOWN``), and hard
combinatorial instances (the position-hard set) time out.
"""

from __future__ import annotations

from itertools import product
from typing import Dict, Iterable, List, Optional

from ..automata.enumeration import is_finite, words_up_to
from ..strings.ast import Problem
from ..strings.normal_form import normalize
from ..strings.semantics import eval_problem
from .config import SolverConfig
from .result import SolveResult, Status, Stopwatch, StringModel


class EnumerativeSolver:
    """Bounded enumeration of candidate models."""

    def __init__(self, config: Optional[SolverConfig] = None, max_length: int = 6,
                 max_index: int = 8) -> None:
        self.config = config or SolverConfig()
        self.max_length = max_length
        self.max_index = max_index

    def check(self, problem: Problem) -> SolveResult:
        watch = Stopwatch(self.config.timeout)
        normal_form = normalize(problem)

        variables = list(problem.string_variables())
        automata = {name: normal_form.automata[name] for name in variables if name in normal_form.automata}
        for name in variables:
            automata.setdefault(name, None)

        integer_variables = list(problem.integer_variables())
        candidates: Dict[str, List[str]] = {}
        exhaustive = True
        for name, nfa in automata.items():
            if nfa is None:
                from ..automata.nfa import Nfa

                nfa = Nfa.universal(problem.alphabet)
                exhaustive = False
            words = list(words_up_to(nfa, self.max_length))
            if not is_finite(nfa):
                exhaustive = False
            candidates[name] = words
            if not words:
                return SolveResult(Status.UNSAT, elapsed=watch.elapsed())
        if integer_variables:
            exhaustive = False

        integer_domain = list(range(-1, self.max_index + 1))
        names = sorted(candidates)
        checked = 0
        for choice in product(*(candidates[name] for name in names)):
            if watch.expired():
                return SolveResult(Status.TIMEOUT, elapsed=watch.elapsed(), reason="timeout")
            strings = dict(zip(names, choice))
            if integer_variables:
                for values in product(integer_domain, repeat=len(integer_variables)):
                    integers = dict(zip(integer_variables, values))
                    checked += 1
                    if eval_problem(problem, strings, integers):
                        return SolveResult(
                            Status.SAT,
                            model=StringModel(strings=strings, integers=integers),
                            elapsed=watch.elapsed(),
                        )
            else:
                checked += 1
                if eval_problem(problem, strings, {}):
                    return SolveResult(
                        Status.SAT, model=StringModel(strings=strings), elapsed=watch.elapsed()
                    )

        if exhaustive:
            return SolveResult(Status.UNSAT, elapsed=watch.elapsed())
        return SolveResult(
            Status.UNKNOWN,
            elapsed=watch.elapsed(),
            reason=f"no model among {checked} bounded candidates (languages are infinite)",
        )
