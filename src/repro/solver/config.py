"""Configuration of the string solvers."""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from ..lia import LiaConfig


@dataclass
class SolverConfig:
    """Tunable limits of :class:`repro.solver.solver.PositionSolver`.

    The defaults are sized for the scaled-down benchmark suite; the paper's
    experiments used a 120 s timeout per instance.
    """

    #: wall-clock budget per ``check`` call (seconds); ``None`` = unlimited
    timeout: Optional[float] = 60.0
    #: cooperative step budget per ``check`` call: caps the total number of
    #: engine checkpoints (subset-construction expansions, product pairs,
    #: noodles, SAT iterations, ...) independently of the clock — a
    #: deterministic, machine-independent bound.  ``None`` = unlimited
    max_steps: Optional[int] = None
    #: maximum number of monadic-decomposition branches explored
    max_branches: int = 128
    #: maximum number of noodles per equation split
    max_noodles: int = 256
    #: MBQI rounds for ¬contains (lemma instantiations per check)
    max_instantiation_rounds: int = 40
    #: solve the MBQI refinement loop on one incremental LIA assertion stack
    #: (push/add/check per lemma); ``False`` falls back to a from-scratch
    #: ``LiaSolver.check`` per round (the seed behaviour, kept for perf
    #: comparisons and differential testing)
    incremental_lia: bool = True
    #: configuration of the underlying LIA solver
    lia: LiaConfig = field(default_factory=LiaConfig)
    #: cutting planes in the LIA integer core (Gomory cut rounds plus the
    #: Omega-test pre-pass); ``False`` zeroes the cut budgets in ``lia`` at
    #: construction time — the pre-cuts behaviour, kept for ablation and
    #: differential testing.  Budgets are tuned via
    #: ``lia.gomory_cut_rounds`` / ``lia.max_gomory_cuts`` /
    #: ``lia.omega_elimination``; toggling this field after construction has
    #: no effect.
    lia_cuts: bool = True
    #: verify every SAT model against the original problem (cheap, keeps the
    #: solver sound even in the presence of encoder bugs)
    verify_models: bool = True
    #: answer pairwise-distinct groups (conjunctions of single-variable
    #: disequalities) by greedily picking distinct short words from the
    #: variables' automata — verified against the original problem by the
    #: semantics oracle — instead of encoding the n-predicate ``A^III``
    #: system; groups whose automata lack enough short words (or whose
    #: greedy model fails verification) fall through to the encoding.
    #: ``False`` always takes the encoding (ablation / differential testing)
    distinct_shortcut: bool = True
    #: hand per-atom integer conjuncts to the LIA layer as labelled
    #: assumption literals: an UNSAT verdict then names the exact integer
    #: atoms of the core via final-conflict analysis (no deletion-test
    #: re-solving).  ``False`` asserts them like any other part (the
    #: pre-assumption behaviour, kept for differential testing)
    assumption_cores: bool = True
    #: cross-check (and shrink) `Session.unsat_core` candidates by deletion
    #: testing — one pipeline re-solve per candidate atom.  Off by default:
    #: the assumption-literal provenance already yields verified cores; the
    #: deletion verifier remains available as an independent oracle
    core_deletion_check: bool = False
    #: cap on the case product of the extended-function reduction
    #: (``str.substr`` expands into 1 case, ``str.indexof`` into 4,
    #: ``str.replace`` into 3 — see :mod:`repro.strings.reductions`);
    #: a problem whose product exceeds the cap answers ``unknown``
    max_reduction_cases: int = 64
    #: decomposition branch budget for reduced (extended-function) case
    #: problems: several structural splits of one haystack overlap through
    #: Levi alignment, which needs more room than the chain-free
    #: ``max_branches`` default
    reduction_max_branches: int = 512
    #: capacity of the session pipeline's component-encoding memo (entries
    #: are tag-automaton encodings keyed by predicate set and automata)
    session_encoding_cache: int = 256
    #: number of pinned per-branch incremental LIA solvers a session keeps
    #: warm (least-recently-used branches beyond this are rebuilt on demand)
    session_branch_solvers: int = 16

    def __post_init__(self) -> None:
        if not self.lia_cuts:
            # Zero the budgets on a copy: a caller-provided LiaConfig may be
            # shared with other SolverConfigs that do want cutting planes.
            self.lia = replace(
                self.lia,
                gomory_cut_rounds=0,
                max_gomory_cuts=0,
                omega_elimination=False,
            )
