"""The main string solver (the reproduction's analogue of Z3-Noodler-pos).

Pipeline for an input problem (a conjunction of string atoms):

0. **Reduction** (:mod:`repro.strings.reductions`): the extended atoms
   (``str.substr`` / ``str.indexof`` / ``str.replace``) are compiled into
   core-only case conjunctions; each case runs through the stages below
   and the verdicts are merged (first sat case wins, all-unsat merges the
   provenance-mapped cores).
1. **Normalisation** (:mod:`repro.strings.normal_form`) into
   ``E ∧ R ∧ I ∧ P``.
2. **Stabilization** (:mod:`repro.eqsolver.noodler`): the word equations
   ``E`` are eliminated, producing a disjunction of monadic decompositions
   (refined regular constraints plus a substitution map).
3. **Position procedure** (:mod:`repro.core`): for every branch the
   remaining position constraints are partitioned into components of
   predicates sharing variables; each component is encoded into one LIA
   formula over the Parikh image of a tag automaton — the single-predicate
   construction ``A^II`` (§5.2) when the component has one predicate, the
   system construction ``A^III`` (§5.3/§6.5) otherwise.  ¬contains
   predicates over flat languages are handled by model-based quantifier
   instantiation (§6.4).
4. **LIA solving** (:mod:`repro.lia`) and **model reconstruction**
   (:mod:`repro.core.witness`): every SAT verdict comes with a concrete
   string model which is verified against the original problem.

``UNSAT`` is only reported when every branch was refuted exactly (no budget
was exceeded, no approximation was used); otherwise the solver answers
``UNKNOWN`` — mirroring the OOR/unknown accounting of the paper's Table 1.

Incremental architecture
------------------------

The pipeline is built to be driven repeatedly with *closely related*
problems — the access pattern of :class:`repro.Session`, whose clients
(symbolic executors, the SMT-LIB frontend) issue long chains of checks over
a growing/shrinking assertion stack.  Every stage is cached, keyed by the
content of the assertion prefix it depends on:

* **normalisation** — :class:`NormalForm` per atom-tuple, with a shared
  :class:`~repro.strings.normal_form.NormalizationCache` keeping the
  per-variable automata identity-stable across calls;
* **decomposition** — :func:`repro.eqsolver.decompose` memoized on the
  equations plus the (identity-stable) automata of the equation variables,
  so the produced :class:`Branch` objects are reused verbatim;
* **component encodings** — the tag-automaton encodings are memoized by the
  component's predicate set and automata; a new atom only re-encodes the
  component whose variables it touches (prefixes are content-derived, so an
  untouched component keeps its LIA variable names);
* **branch LIA solvers** — one incremental :class:`~repro.lia.LiaSolver`
  assertion stack is pinned per live branch.  Each check computes the set
  of LIA *parts* the branch needs, pops solver levels whose parts are no
  longer wanted, and pushes one level with the delta.  The solver's CNF
  cache, learned theory clauses and simplex rows survive across checks —
  extending PR 1's within-check MBQI reuse to whole sessions.  MBQI
  instantiation lemmas ride along in the level that derived them and are
  retracted exactly when a dependency of that level disappears.

On ``UNSAT`` the pipeline reports *refutation participants*: the
:class:`~repro.lia.LiaResult.conflict_vars` of each branch refutation are
mapped through the asserted parts back to normal-form variables and then —
via :meth:`NormalForm.atoms_touching` provenance — to input-atom indices
(surfaced as ``SolveResult.core_atoms``).  :meth:`repro.Session.unsat_core`
uses this as the candidate set for deletion-based core minimisation.

:class:`PositionSolver` keeps the historical one-shot interface as a thin
wrapper over a throwaway :class:`repro.Session`.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from itertools import islice
from typing import Dict, FrozenSet, List, Optional, Set, Tuple, Union

from ..automata.dense import stats_snapshot as dense_stats_snapshot
from ..automata.enumeration import is_finite, shortest_word, words_up_to
from ..automata.nfa import Nfa
from ..core.notcontains import NotContainsEncoder, base_transition_counts, find_failing_offset
from ..core.predicates import (
    Disequality,
    NotContains,
    NotPrefixOf,
    NotSuffixOf,
    PositionPredicate,
    StrAt,
)
from ..core.single import SingleEncoding, encode_single
from ..core.system import SystemEncoding, encode_system
from ..core.witness import extract_assignment
from ..eqsolver import Branch, DecompositionResult, decompose
from ..lia import LiaSolver, LiaStatus, conj, eq, gt, var
from ..lia import And as LiaAnd
from ..lia import Eq as LiaEq
from ..lia import Formula as LiaFormula
from ..lia import Le as LiaLe
from ..lia import LinExpr
from ..lia.simplify import eliminate_equalities
from ..budget import Budget, BudgetExceeded, UnknownKind, UnknownReason
from ..strings.ast import Problem, RegexMembership, length_variable
from ..strings.normal_form import NormalForm, NormalizationCache, normalize
from ..strings.reductions import ReductionError, needs_reduction, reduce_problem
from ..strings.semantics import eval_problem
from .config import SolverConfig
from .result import SolveResult, Status, StringModel

Encoding = Union[SingleEncoding, SystemEncoding]

#: hashable key of one LIA part of a branch conjunction
PartKey = Tuple

#: sentinel: an exactly-enumerated disequality group has no solution
_GROUP_UNSAT = object()
#: candidate words per variable above which a finite-group enumeration is
#: no longer considered complete (keeps the exact search tiny)
_GROUP_WORD_CAP = 16
#: node budget of the exact group search
_GROUP_SEARCH_NODES = 50000


class _Lru(OrderedDict):
    """A tiny LRU mapping used for every pipeline cache."""

    def __init__(self, capacity: int) -> None:
        super().__init__()
        self.capacity = capacity

    def lookup(self, key):
        if key in self:
            self.move_to_end(key)
            return self[key]
        return None

    def store(self, key, value) -> None:
        self[key] = value
        self.move_to_end(key)
        while len(self) > self.capacity:
            self.popitem(last=False)


@dataclass(eq=False)
class _Component:
    """A group of position predicates sharing string variables.

    Prepared components (with their encodings, ¬contains encoders and the
    master transition counters of the MBQI loop) are cached across checks
    and reused verbatim while no new atom touches their variables.

    ``eq=False`` keeps the default identity hash: components appear inside
    part keys (``("enc", component)``), which both addresses them and keeps
    them alive for as long as a pinned branch solver asserts them.
    """

    predicates: List[PositionPredicate] = field(default_factory=list)
    contains: List[NotContains] = field(default_factory=list)
    variables: Set[str] = field(default_factory=set)
    encoding: Optional[Encoding] = None
    encoders: List[Tuple[NotContains, Optional[NotContainsEncoder]]] = field(default_factory=list)
    #: lazily computed, shared by every MBQI round of the branch (the base
    #: transition counters of the master encoding never change across rounds)
    master_counts: Optional[Dict[Tuple, LinExpr]] = None
    #: lazily computed variable set of the encoding formula (for mapping
    #: LIA conflict participants back to this component)
    formula_vars: Optional[FrozenSet[str]] = None

    def formula_variables(self) -> FrozenSet[str]:
        if self.formula_vars is None:
            self.formula_vars = frozenset(self.encoding.formula.variables())
        return self.formula_vars


@dataclass
class _BranchSolver:
    """One pinned LIA assertion stack (see the module docstring)."""

    solver: LiaSolver
    #: per pushed level: the part keys asserted at that level
    levels: List[List[PartKey]] = field(default_factory=list)


@dataclass
class _BranchOutcome:
    status: Status
    model: Optional[StringModel] = None
    reason: Union[str, UnknownReason] = ""
    lia_queries: int = 0
    exact: bool = True
    stats: Dict[str, int] = field(default_factory=dict)
    #: for UNSAT: normal-form variables the refutation touched (empty set
    #: means "unknown participants" — callers must widen to everything)
    participant_vars: Optional[Set[str]] = None
    #: for UNSAT: input-atom indices identified directly (integer parts)
    participant_atoms: Set[int] = field(default_factory=set)


def _atom_key(atom) -> Tuple:
    """A hashable content key for one input atom.

    Atoms are frozen dataclasses and hash by value, except that
    ``RegexMembership`` may carry an ``Nfa``; the automaton itself goes
    into the key (identity hash — ``Nfa`` defines no ``__eq__``), which
    also keeps it alive for as long as any cache entry is keyed by it, so
    the identity can never be recycled while the key is live.
    """
    if isinstance(atom, RegexMembership) and isinstance(atom.language, Nfa):
        return ("re-nfa", atom.var, atom.language, atom.positive)
    return ("atom", atom)


class IncrementalPipeline:
    """The cached, incremental solving pipeline behind :class:`repro.Session`.

    One pipeline instance serves one logical assertion stack: its caches are
    keyed by content, so feeding it arbitrary problems is *correct*, but the
    reuse (and the memory held by the caches) is designed for sequences of
    problems sharing long prefixes.
    """

    def __init__(
        self,
        config: Optional[SolverConfig] = None,
        normalization_cache: Optional[NormalizationCache] = None,
    ) -> None:
        self.config = config or SolverConfig()
        # An externally supplied cache outlives this pipeline: the serve
        # workers share one per process so jobs warm each other up.
        self.normalization_cache = normalization_cache or NormalizationCache()
        self._normal_forms: _Lru = _Lru(64)
        self._decompositions: _Lru = _Lru(32)
        self._components: _Lru = _Lru(self.config.session_encoding_cache)
        self._branch_solvers: _Lru = _Lru(self.config.session_branch_solvers)
        #: integer conjunct -> may it travel as an assumption literal?
        #: (defining equalities must stay asserted so the LIA presolve can
        #: eliminate them — losing that elimination costs 3× on the
        #: equality-linked e2e instances)
        self._assumable: _Lru = _Lru(256)
        self.counters: Dict[str, int] = {
            "checks": 0,
            "normal_form_hits": 0,
            "normal_form_misses": 0,
            "decomposition_hits": 0,
            "decomposition_misses": 0,
            "component_hits": 0,
            "component_misses": 0,
            "branch_solver_reuses": 0,
            "branch_solver_creates": 0,
            "branch_solver_rebuilds": 0,
            "lia_parts_asserted": 0,
            "lia_parts_reused": 0,
            "distinct_shortcuts": 0,
            "reduction_cases": 0,
            "ncontains_vacuous": 0,
        }

    # ------------------------------------------------------------------
    def check(self, problem: Problem, budget: Optional[Budget] = None) -> SolveResult:
        """Decide satisfiability of ``problem`` (reusing every warm cache).

        Problems containing the extended string functions (``str.substr``,
        ``str.indexof``, ``str.replace``) are first compiled into core-only
        case conjunctions by :mod:`repro.strings.reductions`; each case
        runs through the cached conjunctive pipeline and the verdicts are
        merged (sat: first satisfiable case, with the reduction's fresh
        variables stripped from the model; unsat: all cases refuted, cores
        mapped back to the input atoms through the case provenance).

        ``budget`` overrides the config-derived per-check budget (a caller
        racing several checks, or retrying after a timeout with more room).
        The budget is *activated* for the duration of the check: every
        engine layer's cooperative checkpoints charge against it, and
        exceeding it unwinds here into a structured ``timeout``/``unknown``
        verdict whose :class:`UnknownReason` names the stage that hit the
        limit.  The check never corrupts the pipeline: caches only commit
        completed values, and a pinned branch LIA solver that was
        mid-mutation when the check unwound is dropped (rebuilt on demand).
        Unexpected engine exceptions likewise become
        ``unknown(internal_error)`` verdicts — counted in ``counters`` and
        ``stats``, never silently discarded; only ``KeyboardInterrupt``
        propagates (with the same no-corruption guarantee).
        """
        self.counters["checks"] += 1
        watch = budget if budget is not None else Budget(
            self.config.timeout, max_steps=self.config.max_steps
        )
        # Snapshot the automata-layer counters so the per-check deltas
        # (dense compilations, interning and normalisation-cache traffic)
        # can be reported through ``SolveResult.stats``.
        dense_before = dense_stats_snapshot()
        cache_hits_before = self.normalization_cache.hits
        cache_misses_before = self.normalization_cache.misses
        cache_warm_before = self.normalization_cache.warm_hits
        try:
            with watch.activate():
                if needs_reduction(problem):
                    result = self._check_extended(problem, watch)
                else:
                    result = self._check_core(problem, watch)
        except BudgetExceeded as limit:
            status = (
                Status.TIMEOUT
                if limit.reason.kind is UnknownKind.TIMEOUT
                else Status.UNKNOWN
            )
            result = SolveResult(status, elapsed=watch.elapsed(), reason=limit.reason)
        except Exception as failure:
            self.counters["internal_errors"] = (
                self.counters.get("internal_errors", 0) + 1
            )
            reason = UnknownReason(
                UnknownKind.INTERNAL_ERROR,
                stage=watch.current_stage,
                detail=f"{type(failure).__name__}: {failure}",
                steps=watch.steps,
                elapsed=watch.elapsed(),
            )
            result = SolveResult(
                Status.UNKNOWN,
                elapsed=watch.elapsed(),
                reason=reason,
                stats={"internal_errors": 1},
            )
        for key, value in watch.stats_snapshot().items():
            result.stats[key] = result.stats.get(key, 0) + value
        for key, value in dense_stats_snapshot().items():
            result.stats[key] = result.stats.get(key, 0) + value - dense_before[key]
        result.stats["automata_cache_hits"] = (
            result.stats.get("automata_cache_hits", 0)
            + self.normalization_cache.hits
            - cache_hits_before
        )
        result.stats["automata_cache_misses"] = (
            result.stats.get("automata_cache_misses", 0)
            + self.normalization_cache.misses
            - cache_misses_before
        )
        result.stats["normalization_warm_hits"] = (
            result.stats.get("normalization_warm_hits", 0)
            + self.normalization_cache.warm_hits
            - cache_warm_before
        )
        return result

    def _check_extended(self, problem: Problem, watch: Budget) -> SolveResult:
        """Case-expand the extended atoms, decide each case, merge verdicts."""
        try:
            with watch.stage("reduce"):
                cases = reduce_problem(
                    problem, max_cases=self.config.max_reduction_cases
                )
        except ReductionError as error:
            return SolveResult(
                Status.UNKNOWN,
                elapsed=watch.elapsed(),
                reason=UnknownReason(
                    UnknownKind.INCOMPLETE, stage="reduce", detail=str(error)
                ),
            )
        self.counters["reduction_cases"] = (
            self.counters.get("reduction_cases", 0) + len(cases)
        )

        branches = 0
        lia_queries = 0
        stats: Dict[str, int] = {}
        saw_unknown = False
        unknown_reason: Optional[UnknownReason] = None
        participants_known = True
        core: Set[int] = set()
        widened: Set[int] = set()
        for case in cases:
            watch.check_now("reduce.case")
            result = self._check_core(
                case.problem, watch, branch_budget=self.config.reduction_max_branches
            )
            branches += result.branches_explored
            lia_queries += result.lia_queries
            for key, value in result.stats.items():
                stats[key] = stats.get(key, 0) + value
            if result.status is Status.SAT:
                model = StringModel(
                    strings={
                        name: word
                        for name, word in result.model.strings.items()
                        if name not in case.fresh_variables
                    },
                    integers=dict(result.model.integers),
                )
                if self.config.verify_models and not eval_problem(
                    problem, model.strings, model.integers
                ):
                    # The case model must satisfy the original extended
                    # atoms by construction; a failure here means the
                    # reduction (not the encoder) is wrong — stay sound.
                    saw_unknown = True
                    unknown_reason = UnknownReason(
                        UnknownKind.INTERNAL_ERROR,
                        stage="reduce.verify",
                        detail="reduction case model failed verification",
                    )
                    continue
                return SolveResult(Status.SAT, model=model, elapsed=watch.elapsed(),
                                   branches_explored=branches, lia_queries=lia_queries, stats=stats)
            if result.status is Status.TIMEOUT:
                return SolveResult(Status.TIMEOUT, elapsed=watch.elapsed(), reason=result.reason,
                                   branches_explored=branches, lia_queries=lia_queries, stats=stats)
            if result.status is Status.UNKNOWN:
                saw_unknown = True
                if isinstance(result.reason, UnknownReason):
                    unknown_reason = result.reason
                continue
            # UNSAT: map the case's core through the provenance.
            if result.core_atoms is None:
                participants_known = False
            else:
                mapped = {case.provenance[i] for i in result.core_atoms}
                core |= mapped
                if result.core_atoms_widened is not None:
                    widened |= {case.provenance[i] for i in result.core_atoms_widened}
                else:
                    widened |= mapped
        if saw_unknown:
            return SolveResult(
                Status.UNKNOWN,
                elapsed=watch.elapsed(),
                reason=unknown_reason
                or UnknownReason(
                    UnknownKind.INCOMPLETE,
                    stage="reduce",
                    detail="some reduction case could not be decided exactly",
                ),
                branches_explored=branches, lia_queries=lia_queries, stats=stats)
        return SolveResult(
            Status.UNSAT,
            elapsed=watch.elapsed(),
            branches_explored=branches,
            lia_queries=lia_queries,
            stats=stats,
            core_atoms=frozenset(core) if participants_known else None,
            core_atoms_widened=(
                frozenset(widened) if participants_known and widened != core else None
            ),
        )

    def _check_core(
        self, problem: Problem, watch: Budget, branch_budget: Optional[int] = None
    ) -> SolveResult:
        """The conjunctive-core pipeline (no extended atoms)."""
        atoms_key = (problem.alphabet,) + tuple(_atom_key(atom) for atom in problem.atoms)
        normal_form = self._normal_forms.lookup(atoms_key)
        if normal_form is None:
            self.counters["normal_form_misses"] += 1
            with watch.stage("normalize"):
                normal_form = normalize(problem, cache=self.normalization_cache)
            self._normal_forms.store(atoms_key, normal_form)
        else:
            self.counters["normal_form_hits"] += 1

        with watch.stage("decompose"):
            branches, branch_fp_base, all_exact = self._decompose(
                normal_form, branch_budget
            )

        lia_queries = 0
        saw_unknown = False
        unknown_reason: Optional[UnknownReason] = None
        stats: Dict[str, int] = {}
        participant_vars: Set[str] = set()
        participant_atoms: Set[int] = set()
        participants_known = True

        def merge_stats(delta: Dict[str, int]) -> None:
            for key, value in delta.items():
                stats[key] = stats.get(key, 0) + value

        for index, branch in enumerate(branches):
            watch.check_now("solve.branch")
            with watch.stage("solve"):
                outcome = self._solve_branch(
                    problem, normal_form, branch, index, (branch_fp_base, index), watch
                )
            lia_queries += outcome.lia_queries
            merge_stats(outcome.stats)
            if outcome.status is Status.SAT:
                return SolveResult(
                    Status.SAT,
                    model=outcome.model,
                    elapsed=watch.elapsed(),
                    branches_explored=index + 1,
                    lia_queries=lia_queries,
                    stats=stats,
                )
            if outcome.status is Status.TIMEOUT:
                return SolveResult(Status.TIMEOUT, elapsed=watch.elapsed(), reason=outcome.reason,
                                   branches_explored=index + 1, lia_queries=lia_queries, stats=stats)
            if outcome.status is Status.UNKNOWN:
                saw_unknown = True
                if isinstance(outcome.reason, UnknownReason):
                    unknown_reason = outcome.reason
            if not outcome.exact:
                all_exact = False
            if outcome.status is Status.UNSAT:
                if outcome.participant_vars or outcome.participant_atoms:
                    participant_vars |= outcome.participant_vars or set()
                    participant_atoms |= outcome.participant_atoms
                else:
                    participants_known = False

        if saw_unknown or not all_exact:
            return SolveResult(
                Status.UNKNOWN,
                elapsed=watch.elapsed(),
                reason=unknown_reason
                or UnknownReason(
                    UnknownKind.INCOMPLETE,
                    stage="decompose",
                    detail="decomposition incomplete (branch/noodle budget or fragment)",
                ),
                branches_explored=len(branches),
                lia_queries=lia_queries,
                stats=stats,
            )

        core_atoms: Optional[FrozenSet[int]] = None
        core_widened: Optional[FrozenSet[int]] = None
        if participants_known:
            # Tight candidate: exactly what the branch refutations reported
            # (closed under the branch substitutions).
            tight = set(participant_atoms)
            tight.update(normal_form.atoms_touching(participant_vars))
            core_atoms = frozenset(tight)
            # Widened candidate: branches pruned inside the decomposition
            # (empty refinements) implicate the equations and the atoms of
            # their variables without reporting participants; fold the
            # equation variables in wholesale.  Callers try the tight set
            # first and fall back here when its verification fails.
            widened_vars = set(participant_vars)
            for lhs, rhs in normal_form.equations:
                widened_vars.update(lhs)
                widened_vars.update(rhs)
            widened = tight | set(normal_form.atoms_touching(widened_vars))
            if widened != tight:
                core_widened = frozenset(widened)
        return SolveResult(
            Status.UNSAT,
            elapsed=watch.elapsed(),
            branches_explored=len(branches),
            lia_queries=lia_queries,
            stats=stats,
            core_atoms=core_atoms,
            core_atoms_widened=core_widened,
        )

    # ------------------------------------------------------------------
    # Decomposition (cached)
    # ------------------------------------------------------------------
    def _decompose(
        self, normal_form: NormalForm, branch_budget: Optional[int] = None
    ) -> Tuple[List[Branch], Tuple, bool]:
        """Run (or reuse) the equation elimination for this normal form."""
        max_branches = branch_budget or self.config.max_branches
        if not normal_form.equations:
            branch = Branch(dict(normal_form.automata))
            return [branch], ("noeq", normal_form.alphabet), True

        eq_vars: Dict[str, None] = {}
        for lhs, rhs in normal_form.equations:
            for name in lhs + rhs:
                eq_vars.setdefault(name, None)
        eq_automata = {name: normal_form.automata[name] for name in eq_vars}
        # The automata objects go into the key directly (identity hash +
        # keepalive): an id()-based key could silently collide after the
        # object was collected and its address recycled.
        key = (
            tuple(normal_form.equations),
            tuple(eq_automata.items()),
            max_branches,
            self.config.max_noodles,
        )
        decomposition: Optional[DecompositionResult] = self._decompositions.lookup(key)
        if decomposition is None:
            self.counters["decomposition_misses"] += 1
            decomposition = decompose(
                normal_form.equations,
                eq_automata,
                max_branches=max_branches,
                max_noodles=self.config.max_noodles,
                alphabet=normal_form.alphabet,
                max_levi_splits=2 * max_branches,
            )
            self._decompositions.store(key, decomposition)
        else:
            self.counters["decomposition_hits"] += 1
        return decomposition.branches, ("eq", key), decomposition.complete

    # ------------------------------------------------------------------
    # Branch preparation
    # ------------------------------------------------------------------
    def _expand_predicates(
        self, normal_form: NormalForm, branch: Branch
    ) -> Tuple[Optional[List[PositionPredicate]], Optional[List[NotContains]], Dict[str, Nfa], str]:
        """Apply the branch substitution to the position predicates."""
        automata = dict(normal_form.automata)
        automata.update(branch.automata)
        regular: List[PositionPredicate] = []
        contains: List[NotContains] = []
        for predicate in normal_form.predicates:
            if isinstance(predicate, Disequality):
                regular.append(Disequality(branch.expand_term(predicate.lhs), branch.expand_term(predicate.rhs)))
            elif isinstance(predicate, NotPrefixOf):
                regular.append(NotPrefixOf(branch.expand_term(predicate.lhs), branch.expand_term(predicate.rhs)))
            elif isinstance(predicate, NotSuffixOf):
                regular.append(NotSuffixOf(branch.expand_term(predicate.lhs), branch.expand_term(predicate.rhs)))
            elif isinstance(predicate, StrAt):
                target = branch.expand(predicate.target)
                if len(target) == 0:
                    fresh = f"_eps{len(automata)}"
                    automata[fresh] = Nfa.epsilon_language()
                    target = (fresh,)
                if len(target) != 1:
                    return None, None, automata, "str.at target expands to a concatenation"
                regular.append(
                    StrAt(target[0], branch.expand_term(predicate.haystack), predicate.index, predicate.negated)
                )
            elif isinstance(predicate, NotContains):
                expanded = NotContains(
                    branch.expand_term(predicate.needle), branch.expand_term(predicate.haystack)
                )
                if self._ncontains_vacuous(expanded, automata, normal_form.alphabet):
                    self.counters["ncontains_vacuous"] += 1
                    continue
                contains.append(expanded)
            else:  # pragma: no cover - defensive
                return None, None, automata, f"unsupported predicate {predicate!r}"
        return regular, contains, automata, ""

    #: per-side state cap for the vacuity pre-pass below; beyond it the
    #: concatenations (and the lazy product walk over them) stop being
    #: obviously cheaper than just encoding the predicate
    _NCONTAINS_VACUITY_LIMIT = 64

    def _ncontains_vacuous(
        self,
        predicate: NotContains,
        automata: Dict[str, Nfa],
        alphabet: Tuple[str, ...],
    ) -> bool:
        """Sound vacuity pre-pass for one ``¬contains`` predicate.

        Over-approximate the reachable violations: if even
        ``L(h₁)⋯L(h_m)  ∩  Σ*·L(n₁)⋯L(n_k)·Σ*`` is empty — ignoring that
        shared variables correlate the two sides, which only shrinks the
        real solution set — then no assignment makes the haystack contain
        the needle, so the predicate holds vacuously and need not be
        encoded.  Decided by the lazy first-accepting-pair product walk;
        nothing is materialised beyond the two concatenations.
        """
        if not alphabet:
            return False
        from ..automata import concat, intersection_empty

        total = 0
        for name in predicate.needle + predicate.haystack:
            nfa = automata.get(name)
            if nfa is None:
                return False
            total += len(nfa.states)
            if total > self._NCONTAINS_VACUITY_LIMIT:
                return False
        haystack = Nfa.epsilon_language()
        for name in predicate.haystack:
            haystack = concat(haystack, automata[name])
        pattern = Nfa.universal(alphabet)
        for name in predicate.needle:
            pattern = concat(pattern, automata[name])
        pattern = concat(pattern, Nfa.universal(alphabet))
        return intersection_empty(haystack, pattern)

    def _prepare_component(
        self,
        index: int,
        position: int,
        predicates: List[PositionPredicate],
        contains: List[NotContains],
        variables: Set[str],
        automata: Dict[str, Nfa],
    ) -> _Component:
        """Build (or reuse) the encoding of one predicate component.

        The LIA-variable prefix is positional (``b0.c1.`` — the historical
        naming, which keeps the LIA search behaviour of the one-shot path
        bit-identical to earlier releases), while the cache key is pure
        content (prefix + predicates + automata).  Component groups are
        created in predicate order, so under the grow-only session access
        pattern positions — and therefore prefixes and cache keys — stay
        stable; a component *merge* shifts the positions after it, which
        costs a re-encode of those components on the next check.
        """
        names = sorted(variables)
        prefix = f"b{index}.c{position}."
        key = (
            prefix,
            tuple(predicates),
            tuple(contains),
            tuple((name, automata[name]) for name in names),
        )
        component = self._components.lookup(key)
        if component is not None:
            self.counters["component_hits"] += 1
            return component
        self.counters["component_misses"] += 1
        component = _Component(
            predicates=list(predicates), contains=list(contains), variables=set(variables)
        )
        if len(component.predicates) == 1 and not component.contains:
            component.encoding = encode_single(
                component.predicates[0], automata, prefix=prefix,
                extra_variables=[v for v in names if v not in component.predicates[0].string_variables()],
            )
        else:
            component.encoding = encode_system(
                component.predicates, automata, prefix=prefix, extra_variables=names
            )
        for nc_index, predicate in enumerate(component.contains):
            encoder = NotContainsEncoder(predicate, automata, index=nc_index)
            component.encoders.append((predicate, encoder if encoder.languages_are_flat() else None))
        self._components.store(key, component)
        return component

    def _build_components(
        self,
        regular: List[PositionPredicate],
        contains: List[NotContains],
        normal_form: NormalForm,
        branch: Branch,
        automata: Dict[str, Nfa],
        index: int,
    ) -> List[_Component]:
        """Group predicates into components of shared variables and encode each."""
        groups: List[Tuple[List[PositionPredicate], List[NotContains], Set[str]]] = []

        def group_for(names: Set[str]):
            hit = None
            # Iterate over a snapshot: merging removes entries from
            # ``groups``, and removing during iteration would skip the
            # element after each merged group (leaving a variable split
            # across two components when a predicate bridges 3+ groups).
            for group in list(groups):
                if group[2] & names:
                    if hit is None:
                        hit = group
                    else:  # merge
                        hit[0].extend(group[0])
                        hit[1].extend(group[1])
                        hit[2].update(group[2])
                        groups.remove(group)
            if hit is None:
                hit = ([], [], set())
                groups.append(hit)
            hit[2].update(names)
            return hit

        for predicate in regular:
            group_for(set(predicate.string_variables()))[0].append(predicate)
        for predicate in contains:
            group_for(set(predicate.string_variables()))[1].append(predicate)

        # Variables whose length is referenced by the integer constraints but
        # that belong to no predicate need a (predicate-free) encoding so that
        # their ⟨L, x⟩ counters exist.
        referenced = set()
        for name in normal_form.integer_formula.variables():
            if name.startswith("@len."):
                original = name[len("@len.") :]
                expansion = (
                    branch.expand(original)
                    if (original in branch.automata or original in branch.substitution)
                    else (original,)
                )
                referenced.update(expansion)
        # One singleton group per uncovered variable (sorted for stable
        # positional prefixes): lumping them into one component would fuse
        # unrelated variables into a single encoding, smearing refutation
        # participants across them — a length bound on x would implicate a
        # bystander y in every unsat core.
        for name in sorted(referenced):
            if name in automata and not any(name in g[2] for g in groups):
                groups.append(([], [], {name}))

        return [
            self._prepare_component(index, position, predicates, nc, variables, automata)
            for position, (predicates, nc, variables) in enumerate(groups)
        ]

    def _length_links(
        self, normal_form: NormalForm, branch: Branch, components: List[_Component]
    ) -> List[Tuple[str, LiaFormula]]:
        """Tie the reserved ``@len.x`` variables to tag counters of the encodings."""

        def length_of(name: str) -> Optional[LinExpr]:
            for component in components:
                if name in component.variables:
                    return component.encoding.length_of(name)
            return None

        referenced = [
            name[len("@len.") :]
            for name in normal_form.integer_formula.variables()
            if name.startswith("@len.")
        ]
        links: List[Tuple[str, LiaFormula]] = []
        for name in referenced:
            expansion = (
                branch.expand(name)
                if (name in branch.automata or name in branch.substitution)
                else (name,)
            )
            total = LinExpr.constant(0)
            covered = True
            for part in expansion:
                expr = length_of(part)
                if expr is None:
                    covered = False
                    break
                total = total + expr
            if covered:
                links.append((name, eq(var(length_variable(name)), total)))
        return links

    # ------------------------------------------------------------------
    # Branch LIA solver management
    # ------------------------------------------------------------------
    def _branch_solver(self, fingerprint: Tuple, parts: List[Tuple[PartKey, LiaFormula]]) -> LiaSolver:
        """Pin (or reuse) the incremental LIA solver of one branch.

        Pops the deepest suffix of levels holding a part that is no longer
        wanted, then pushes one level asserting the parts not yet on the
        stack.  MBQI lemmas asserted later during the check live in that
        new level (untracked), so they persist exactly as long as every
        tracked part beneath them does.
        """
        state: Optional[_BranchSolver] = self._branch_solvers.lookup(fingerprint)
        if state is None:
            self.counters["branch_solver_creates"] += 1
            state = _BranchSolver(solver=LiaSolver(self.config.lia))
            self._branch_solvers.store(fingerprint, state)
        else:
            self.counters["branch_solver_reuses"] += 1

        wanted = {key for key, _ in parts}
        keep = 0
        for level_keys in state.levels:
            if all(key in wanted for key in level_keys):
                keep += 1
            else:
                break
        if keep < len(state.levels):
            # Retracting a *component encoding* would leave its (large)
            # Tseitin clause set and theory atoms behind as dead weight the
            # SAT search still has to assign — reuse would then cost more
            # than it saves.  Rebuild the context instead; retracted small
            # parts (integer conjuncts, length links) pop cheaply.
            dropped_encoding = any(
                key[0] == "enc"
                for level_keys in state.levels[keep:]
                for key in level_keys
            )
            if dropped_encoding:
                self.counters["branch_solver_rebuilds"] += 1
                state.solver = LiaSolver(self.config.lia)
                state.levels = []
        while len(state.levels) > keep:
            state.solver.pop()
            state.levels.pop()

        asserted: Set[PartKey] = set()
        for level_keys in state.levels:
            asserted.update(level_keys)
        delta = [(key, formula) for key, formula in parts if key not in asserted]
        self.counters["lia_parts_reused"] += len(parts) - len(delta)
        self.counters["lia_parts_asserted"] += len(delta)
        if delta or not state.levels:
            # Re-checking an unchanged stack must not grow it: with an
            # empty delta the existing top level is reused, and any MBQI
            # lemmas of this check join it — sound, because that level is
            # popped together with (or before) every part it depends on.
            state.solver.push()
            for _key, formula in delta:
                state.solver.add_assertion(formula)
            state.levels.append([key for key, _ in delta])
        return state.solver

    # ------------------------------------------------------------------
    def _assumption_safe(self, formula: LiaFormula) -> bool:
        """May this integer conjunct travel as an assumption literal?

        Assumption formulae bypass the LIA presolve; a *defining equality*
        (one ``eliminate_equalities`` would substitute away) must therefore
        stay asserted — its core membership falls back to the conflict-
        participant mapping.  Inequalities and disjunctive structure never
        presolve, so assuming them is free.
        """
        safe = self._assumable.lookup(formula)
        if safe is None:
            # Wrap in a conjunction: the presolve only inspects And nodes,
            # and at flush time the part sits inside the batch conjunction.
            _, eliminated = eliminate_equalities(LiaAnd((formula,)), protected=())
            safe = not eliminated
            self._assumable.store(formula, safe)
        return safe

    # ------------------------------------------------------------------
    # Easy-case pairwise-distinct path
    # ------------------------------------------------------------------
    def _distinct_witness(
        self,
        problem: Problem,
        normal_form: NormalForm,
        branch: Branch,
        regular: List[PositionPredicate],
        automata: Dict[str, Nfa],
        remaining: List[str],
    ) -> Optional[_BranchOutcome]:
        """Model a branch of single-variable disequalities by word picking.

        ``(distinct x y z)`` over unconstrained (or weakly constrained)
        variables expands into a clique of pairwise disequalities whose
        3-predicate ``A^III`` system encoding is enormous compared to the
        problem's difficulty: any three distinct short words witness it.
        When every position predicate of the branch is a ``Disequality``
        between two *single* variables, greedily assign each variable the
        first word of its automaton (shortest first, restricted to any
        simple per-variable length window the integer constraints impose)
        not already taken by a neighbour in the disequality graph —
        ``deg+1`` candidate words always suffice — and verify the assembled
        model against the *original* problem with the semantics oracle.
        Any shortfall (not enough short words, a side that is a
        concatenation, verification failure — e.g. an integer constraint
        beyond the window fragment) returns ``None`` and the branch flows
        through the ordinary encoding, so this path can only ever produce
        verified SAT answers.
        """
        edges: Dict[str, Set[str]] = {}
        for predicate in regular:
            if not isinstance(predicate, Disequality):
                return None
            if len(predicate.lhs) != 1 or len(predicate.rhs) != 1:
                return None
            left, right = predicate.lhs[0], predicate.rhs[0]
            if left == right:
                return None  # x ≠ x is false: let the encoding refute it
            edges.setdefault(left, set()).add(right)
            edges.setdefault(right, set()).add(left)

        if any(name not in automata for name in edges):
            return None
        windows = self._length_windows(normal_form, branch)
        if windows is None:
            return None  # a window is already contradictory

        def in_window(name: str, word: str) -> bool:
            low, high = windows.get(name, (0, None))
            return len(word) >= low and (high is None or len(word) <= high)

        def pick(name: str, taken: Set[str], degree: int) -> Optional[str]:
            low, high = windows.get(name, (0, None))
            horizon = low + 3 * degree + 4
            if high is not None:
                horizon = min(horizon, high)
            candidates = (
                word for word in words_up_to(automata[name], horizon)
                if in_window(name, word)
            )
            for candidate in islice(candidates, degree + 1):
                if candidate not in taken:
                    return candidate
            return None

        strings = self._exact_group_search(edges, automata, windows, in_window)
        if strings is _GROUP_UNSAT:
            # Every variable's candidate set was enumerated *completely*
            # (finite language, window applied) and no assignment satisfies
            # the disequalities: the memberships + windows + disequalities
            # alone — a subset of the branch constraints — are infeasible.
            return _BranchOutcome(
                Status.UNSAT,
                participant_vars=self._close_participants(set(edges), branch),
            )
        if strings is None:
            strings = {}
            for name in sorted(edges, key=lambda n: (-len(edges[n]), n)):
                taken = {strings[other] for other in edges[name] if other in strings}
                word = pick(name, taken, len(edges[name]))
                if word is None:
                    return None  # not enough short witnesses: full encoding
                strings[name] = word
        for name in remaining:
            if name not in strings:
                word = pick(name, set(), 0) if name in windows else None
                strings[name] = (
                    word if word is not None else (shortest_word(automata[name]) or "")
                )

        model = self._build_model(problem, normal_form, branch, strings, {})
        if not eval_problem(problem, model.strings, model.integers):
            return None
        self.counters["distinct_shortcuts"] += 1
        return _BranchOutcome(Status.SAT, model=model, lia_queries=0, exact=True)

    def _exact_group_search(
        self,
        edges: Dict[str, Set[str]],
        automata: Dict[str, Nfa],
        windows: Dict[str, Tuple[int, Optional[int]]],
        in_window,
    ):
        """Exact decision of a small finite disequality group.

        When every group variable has a *finite* language whose words (after
        window filtering) can be enumerated completely and compactly, the
        group is decided exactly by backtracking: a found assignment is a
        model candidate, exhaustion is a sound UNSAT verdict for the whole
        branch — the pigeonhole shapes (``(distinct x y z)`` over a two-word
        language) that overwhelm the tag-automaton encoding entirely.
        Returns an assignment dict, ``_GROUP_UNSAT``, or ``None`` when the
        group is not exactly enumerable (caller falls back to greedy).
        """
        candidates: Dict[str, List[str]] = {}
        for name in edges:
            nfa = automata[name]
            low, high = windows.get(name, (0, None))
            if high is None:
                if not is_finite(nfa):
                    return None
                horizon = len(nfa.states)  # longest loop-free word
            else:
                horizon = high
            # Filter by the window *before* capping: capping the raw
            # enumeration would let a truncated candidate set pass as a
            # complete one (an unsound UNSAT on wide languages with a
            # narrow window).
            in_range = (w for w in words_up_to(nfa, horizon) if in_window(name, w))
            words = list(islice(in_range, _GROUP_WORD_CAP + 1))
            if len(words) > _GROUP_WORD_CAP:
                return None  # too wide to call the enumeration complete
            candidates[name] = words
        order = sorted(candidates, key=lambda n: (len(candidates[n]), n))
        assignment: Dict[str, str] = {}
        budget = [_GROUP_SEARCH_NODES]

        def search(position: int) -> Optional[bool]:
            if position == len(order):
                return True
            name = order[position]
            taken = {assignment[o] for o in edges[name] if o in assignment}
            for word in candidates[name]:
                if word in taken:
                    continue
                budget[0] -= 1
                if budget[0] <= 0:
                    return None  # inconclusive: give the encoding a shot
                assignment[name] = word
                result = search(position + 1)
                if result:
                    return True
                del assignment[name]
                if result is None:
                    return None
            return False

        result = search(0)
        if result is None:
            return None
        return dict(assignment) if result else _GROUP_UNSAT

    def _length_windows(
        self, normal_form: NormalForm, branch: Branch
    ) -> Optional[Dict[str, Tuple[int, Optional[int]]]]:
        """Per-variable length windows from the simple integer conjuncts.

        Walks the top-level conjunction of the integer constraints and turns
        every bound or equality over a *single* ``@len`` variable (whose
        branch expansion is still a single variable) into a
        ``(low, high)`` window.  Everything else is ignored — the final
        model verification of the witness path is the safety net.  Returns
        ``None`` when two windows already contradict each other.
        """
        windows: Dict[str, Tuple[int, Optional[int]]] = {}

        def narrow(name: str, low: Optional[int], high: Optional[int]) -> bool:
            old_low, old_high = windows.get(name, (0, None))
            new_low = max(old_low, low if low is not None else 0)
            new_high = old_high if high is None else (
                high if old_high is None else min(old_high, high)
            )
            windows[name] = (new_low, new_high)
            return new_high is None or new_low <= new_high

        def visit(formula: LiaFormula) -> bool:
            if isinstance(formula, LiaAnd):
                return all(visit(arg) for arg in formula.args)
            if isinstance(formula, (LiaLe, LiaEq)):
                coeffs = formula.expr.coeffs
                if len(coeffs) != 1:
                    return True
                (raw_name, coeff), = coeffs.items()
                if not raw_name.startswith("@len.") or coeff == 0:
                    return True
                original = raw_name[len("@len.") :]
                expansion = (
                    branch.expand(original)
                    if (original in branch.automata or original in branch.substitution)
                    else (original,)
                )
                if len(expansion) != 1:
                    return True
                name = expansion[0]
                constant = formula.expr.const
                if isinstance(formula, LiaEq):
                    if constant % coeff:
                        return False  # c·L + k = 0 with no integer L
                    value = -constant // coeff
                    return value >= 0 and narrow(name, value, value)
                if coeff > 0:  # c·L + k <= 0  →  L <= floor(-k / c)
                    return narrow(name, None, -constant // coeff)
                #  c < 0:  L >= ceil(k / -c)
                return narrow(name, -(constant // coeff), None)
            return True  # disjunctive / non-length structure: no window

        for formula, _index in normal_form.integer_parts:
            if not visit(formula):
                return None
        return windows

    # ------------------------------------------------------------------
    def _solve_branch(
        self,
        problem: Problem,
        normal_form: NormalForm,
        branch: Branch,
        index: int,
        fingerprint: Tuple,
        watch: Budget,
    ) -> _BranchOutcome:
        regular, contains, automata, error = self._expand_predicates(normal_form, branch)
        if regular is None:
            return _BranchOutcome(
                Status.UNKNOWN,
                reason=UnknownReason(
                    UnknownKind.FRAGMENT, stage="expand", detail=error
                ),
                exact=False,
            )

        remaining = [name for name in automata if name not in branch.substitution]

        # Variables not constrained by any predicate still need a non-empty
        # language; they receive their shortest word in the final model.
        for name in remaining:
            # Emptiness straight off the dense reachability mask — no trimmed
            # copy is materialised (and ε-acceptance is part of emptiness:
            # an initial-and-final state is always useful).
            if automata[name].is_empty():
                return _BranchOutcome(
                    Status.UNSAT,
                    participant_vars=self._close_participants({name}, branch),
                )

        # A single disequality encodes cheaply (the A^II construction); the
        # witness path targets the multi-predicate groups whose A^III
        # system encoding dwarfs the problem.
        if self.config.distinct_shortcut and len(regular) >= 2 and not contains:
            shortcut = self._distinct_witness(
                problem, normal_form, branch, regular, automata, remaining
            )
            if shortcut is not None:
                return shortcut

        try:
            with watch.stage("encode"):
                components = self._build_components(
                    regular, contains, normal_form, branch, automata, index
                )
        except BudgetExceeded:
            raise
        except Exception as failure:
            # An encoder bug must not silently discard the branch: answer
            # unknown (sound), name the stage, and count the error so it
            # shows up in stats and can gate CI.
            self.counters["internal_errors"] = (
                self.counters.get("internal_errors", 0) + 1
            )
            return _BranchOutcome(
                Status.UNKNOWN,
                reason=UnknownReason(
                    UnknownKind.INTERNAL_ERROR,
                    stage="encode",
                    detail=f"{type(failure).__name__}: {failure}",
                ),
                exact=False,
                stats={"internal_errors": 1},
            )

        # Assemble the branch conjunction as keyed parts (see the module
        # docstring): integer conjuncts carry their source-atom index,
        # length links their variable, encodings their component cache
        # identity — the keys drive both the incremental assertion stack
        # and the conflict-participant mapping.  With ``assumption_cores``
        # the integer conjuncts travel as labelled assumptions instead:
        # final-conflict analysis then reports the exact integer atoms of a
        # refutation (``LiaResult.core_labels``) for free.
        assume_ints = self.config.assumption_cores
        parts: List[Tuple[PartKey, LiaFormula]] = []
        #: integer conjuncts that stay asserted — exactly the ones whose
        #: core membership must still come from the conflict-variable
        #: mapping (assumed conjuncts are covered by their failed labels)
        int_parts: List[Tuple[LiaFormula, int]] = []
        assumed: List[Tuple[int, LiaFormula]] = []
        for formula, atom_index in normal_form.integer_parts:
            if assume_ints and self._assumption_safe(formula):
                assumed.append((atom_index, formula))
            else:
                parts.append((("int", formula), formula))
                int_parts.append((formula, atom_index))
        links = self._length_links(normal_form, branch, components)
        for name, formula in links:
            parts.append((("link", formula), formula))
        exact = True
        approximations: List[Tuple[LiaFormula, Set[str]]] = []
        for component in components:
            parts.append((("enc", component), component.encoding.formula))
            for predicate, encoder in component.encoders:
                if encoder is None:
                    exact = False
                    needle = LinExpr.sum_of(component.encoding.length_of(n) for n in predicate.needle)
                    haystack = LinExpr.sum_of(component.encoding.length_of(n) for n in predicate.haystack)
                    formula = gt(needle, haystack)
                    parts.append((("approx", formula), formula))
                    approximations.append((formula, set(predicate.string_variables())))

        # The MBQI refinement loop re-checks the same large conjunction with
        # one small lemma added per round.  With ``incremental_lia`` the base
        # parts live on the branch's pinned assertion stack and every round
        # only encodes its new lemma (atom maps, Tseitin clauses, learned
        # theory clauses and the simplex tableau survive across rounds *and*
        # across checks).
        lemmas: List[LiaFormula] = []
        queries = 0
        stats: Dict[str, int] = {}

        def merge_stats(delta: Dict[str, int]) -> None:
            for key, value in delta.items():
                stats[key] = stats.get(key, 0) + value

        incremental = self.config.incremental_lia
        try:
            if incremental:
                solver = self._branch_solver(fingerprint, parts)
            for _round in range(self.config.max_instantiation_rounds):
                watch.check_now("mbqi.round")
                queries += 1
                if incremental:
                    result = solver.check(assumptions=assumed, budget=watch)
                else:
                    solver = LiaSolver(self.config.lia)
                    result = solver.check(
                        conj([formula for _, formula in parts] + lemmas),
                        assumptions=assumed,
                        budget=watch,
                    )
                merge_stats(result.stats)
                if result.status is LiaStatus.UNSAT:
                    # Assumed integer atoms come exactly from the failed-
                    # assumption labels; asserted ones (and everything else)
                    # map through the conflict participants as before.
                    vars_, atoms_ = self._map_participants(
                        result.conflict_vars,
                        int_parts,
                        links,
                        components,
                        approximations,
                        branch,
                    )
                    if assume_ints:
                        atoms_ = atoms_ | {
                            label for label in result.core_labels if isinstance(label, int)
                        }
                    return _BranchOutcome(Status.UNSAT, lia_queries=queries, exact=exact, stats=stats,
                                          participant_vars=vars_, participant_atoms=atoms_)
                if result.status is LiaStatus.UNKNOWN:
                    watch.check_now("lia")
                    return _BranchOutcome(
                        Status.UNKNOWN,
                        reason=UnknownReason(
                            UnknownKind.INCOMPLETE, stage="lia", detail=str(result.reason)
                        ),
                        lia_queries=queries, exact=exact, stats=stats)

                strings: Dict[str, str] = {}
                reconstruction_failed = False
                for component in components:
                    names = sorted(component.variables)
                    extracted = extract_assignment(component.encoding.parikh, result.model, names)
                    if extracted is None:
                        reconstruction_failed = True
                        break
                    strings.update(extracted)
                if reconstruction_failed:
                    return _BranchOutcome(
                        Status.UNKNOWN,
                        reason=UnknownReason(
                            UnknownKind.INCOMPLETE, stage="witness",
                            detail="witness reconstruction failed",
                        ),
                        lia_queries=queries, exact=False, stats=stats)
                for name in remaining:
                    if name not in strings:
                        strings[name] = shortest_word(automata[name]) or ""

                # MBQI refinement for ¬contains: evaluate on the candidate words.
                refinement_added = False
                for component in components:
                    for predicate, encoder in component.encoders:
                        predicate_strings = {name: strings.get(name, "") for name in predicate.string_variables()}
                        offset = find_failing_offset(predicate, predicate_strings)
                        if offset is None:
                            continue
                        if encoder is None:
                            return _BranchOutcome(
                                Status.UNKNOWN,
                                reason=UnknownReason(
                                    UnknownKind.FRAGMENT, stage="mbqi",
                                    detail="non-flat ¬contains counterexample",
                                ),
                                lia_queries=queries, exact=False, stats=stats)
                        if component.master_counts is None:
                            component.master_counts = base_transition_counts(
                                component.encoding.parikh, component.encoding.info
                            )
                        lemma = encoder.instantiation_lemma(
                            offset, component.master_counts, component.encoding.length_of
                        )
                        lemmas.append(lemma)
                        if incremental:
                            solver.add_assertion(lemma)
                        refinement_added = True
                        break
                    if refinement_added:
                        break
                if refinement_added:
                    continue

                model = self._build_model(problem, normal_form, branch, strings, result.model)
                if self.config.verify_models and not eval_problem(problem, model.strings, model.integers):
                    return _BranchOutcome(
                        Status.UNKNOWN,
                        reason=UnknownReason(
                            UnknownKind.INTERNAL_ERROR, stage="verify",
                            detail="model verification failed",
                        ),
                        lia_queries=queries, exact=False, stats=stats)
                return _BranchOutcome(Status.SAT, model=model, lia_queries=queries, exact=exact, stats=stats)
        except BaseException:
            # The unwind (budget exhaustion, fault injection, Ctrl-C, an
            # engine bug) may have interrupted the pinned stack mid-mutation
            # (a replay push, an MBQI lemma assert, an in-flight CDCL
            # search).  Its level bookkeeping can no longer be trusted, so
            # drop the pin — the next check rebuilds it from the parts.
            if incremental:
                self._branch_solvers.pop(fingerprint, None)
            raise

        return _BranchOutcome(
            Status.UNKNOWN,
            reason=UnknownReason(
                UnknownKind.INCOMPLETE, stage="mbqi",
                detail="instantiation budget exhausted",
            ),
            lia_queries=queries, exact=False, stats=stats)

    # ------------------------------------------------------------------
    # Refutation participants
    # ------------------------------------------------------------------
    def _close_participants(self, names: Set[str], branch: Branch) -> Set[str]:
        """Close a participant set under the branch substitution.

        A refutation touching a refined noodle variable implicates the
        eliminated variable whose split produced it.
        """
        closed = set(names)
        for eliminated, _parts in branch.substitution.items():
            if set(branch.expand(eliminated)) & closed:
                closed.add(eliminated)
        return closed

    def _map_participants(
        self,
        conflict_vars: FrozenSet[str],
        int_parts: List[Tuple[LiaFormula, int]],
        links: List[Tuple[str, LiaFormula]],
        components: List[_Component],
        approximations: List[Tuple[LiaFormula, Set[str]]],
        branch: Branch,
    ) -> Tuple[Set[str], Set[int]]:
        """Map LIA conflict variables back to string variables / atom indices.

        Returns ``(participant_vars, participant_atoms)``; an empty variable
        set with no atoms means the refutation's participants are unknown
        and callers must widen to the full assertion set.
        """
        if not conflict_vars:
            return set(), set()
        participant_vars: Set[str] = set()
        participant_atoms: Set[int] = set()
        for name in conflict_vars:
            if name.startswith("@len."):
                participant_vars.add(name[len("@len.") :])
        for formula, atom_index in int_parts:
            if conflict_vars.intersection(formula.variables()):
                participant_atoms.add(atom_index)
        for name, formula in links:
            if conflict_vars.intersection(formula.variables()):
                participant_vars.add(name)
        for component in components:
            if conflict_vars & component.formula_variables():
                participant_vars.update(component.variables)
        for formula, names in approximations:
            if conflict_vars.intersection(formula.variables()):
                participant_vars.update(names)
        if not participant_vars and not participant_atoms:
            return set(), set()
        return self._close_participants(participant_vars, branch), participant_atoms

    # ------------------------------------------------------------------
    def _build_model(
        self,
        problem: Problem,
        normal_form: NormalForm,
        branch: Branch,
        strings: Dict[str, str],
        lia_model,
    ) -> StringModel:
        """Assemble a full model of the original problem from branch-level data."""
        full_strings: Dict[str, str] = {}
        for name in set(normal_form.string_variables()) | set(problem.string_variables()):
            expansion = (
                branch.expand(name)
                if (name in branch.automata or name in branch.substitution)
                else (name,)
            )
            full_strings[name] = "".join(strings.get(part, "") for part in expansion)
        integers = {name: lia_model.get(name, 0) for name in problem.integer_variables()}
        return StringModel(strings=full_strings, integers=integers)


class PositionSolver:
    """String solver with the paper's position-constraint decision procedure.

    This is the classic one-shot interface: every :meth:`check` call builds
    a throwaway :class:`repro.Session`, asserts the problem's atoms and
    checks once — cold caches, exactly the historical semantics.  Clients
    issuing chains of related checks should hold a :class:`repro.Session`
    instead and let the incremental pipeline reuse its work.
    """

    def __init__(self, config: Optional[SolverConfig] = None) -> None:
        self.config = config or SolverConfig()

    # ------------------------------------------------------------------
    def check(self, problem: Problem) -> SolveResult:
        """Decide satisfiability of ``problem``."""
        from .session import Session

        session = Session(config=self.config, alphabet=problem.alphabet, name=problem.name)
        for atom in problem.atoms:
            session.add(atom)
        return session.check()
