"""The main string solver (the reproduction's analogue of Z3-Noodler-pos).

Pipeline for an input problem (a conjunction of string atoms):

1. **Normalisation** (:mod:`repro.strings.normal_form`) into
   ``E ∧ R ∧ I ∧ P``.
2. **Stabilization** (:mod:`repro.eqsolver.noodler`): the word equations
   ``E`` are eliminated, producing a disjunction of monadic decompositions
   (refined regular constraints plus a substitution map).
3. **Position procedure** (:mod:`repro.core`): for every branch the
   remaining position constraints are partitioned into components of
   predicates sharing variables; each component is encoded into one LIA
   formula over the Parikh image of a tag automaton — the single-predicate
   construction ``A^II`` (§5.2) when the component has one predicate, the
   system construction ``A^III`` (§5.3/§6.5) otherwise.  ¬contains
   predicates over flat languages are handled by model-based quantifier
   instantiation (§6.4).
4. **LIA solving** (:mod:`repro.lia`) and **model reconstruction**
   (:mod:`repro.core.witness`): every SAT verdict comes with a concrete
   string model which is verified against the original problem.

``UNSAT`` is only reported when every branch was refuted exactly (no budget
was exceeded, no approximation was used); otherwise the solver answers
``UNKNOWN`` — mirroring the OOR/unknown accounting of the paper's Table 1.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple, Union

from ..automata.enumeration import shortest_word
from ..automata.nfa import Nfa
from ..core.notcontains import NotContainsEncoder, base_transition_counts, find_failing_offset
from ..core.predicates import (
    Disequality,
    NotContains,
    NotPrefixOf,
    NotSuffixOf,
    PositionPredicate,
    StrAt,
)
from ..core.single import SingleEncoding, encode_single
from ..core.system import SystemEncoding, encode_system
from ..core.witness import extract_assignment
from ..eqsolver import Branch, decompose
from ..lia import LiaSolver, LiaStatus, conj, eq, gt, var
from ..lia import Formula as LiaFormula
from ..lia import LinExpr
from ..strings.ast import Problem, length_variable
from ..strings.normal_form import NormalForm, normalize
from ..strings.semantics import eval_problem
from .config import SolverConfig
from .result import SolveResult, Status, Stopwatch, StringModel

Encoding = Union[SingleEncoding, SystemEncoding]


@dataclass
class _Component:
    """A group of position predicates sharing string variables."""

    predicates: List[PositionPredicate] = field(default_factory=list)
    contains: List[NotContains] = field(default_factory=list)
    variables: Set[str] = field(default_factory=set)
    encoding: Optional[Encoding] = None
    encoders: List[Tuple[NotContains, Optional[NotContainsEncoder]]] = field(default_factory=list)
    #: lazily computed, shared by every MBQI round of the branch (the base
    #: transition counters of the master encoding never change across rounds)
    master_counts: Optional[Dict[Tuple, LinExpr]] = None


@dataclass
class _BranchOutcome:
    status: Status
    model: Optional[StringModel] = None
    reason: str = ""
    lia_queries: int = 0
    exact: bool = True
    stats: Dict[str, int] = field(default_factory=dict)


class PositionSolver:
    """String solver with the paper's position-constraint decision procedure."""

    def __init__(self, config: Optional[SolverConfig] = None) -> None:
        self.config = config or SolverConfig()

    # ------------------------------------------------------------------
    def check(self, problem: Problem) -> SolveResult:
        """Decide satisfiability of ``problem``."""
        watch = Stopwatch(self.config.timeout)
        normal_form = normalize(problem)

        decomposition = decompose(
            normal_form.equations,
            normal_form.automata,
            max_branches=self.config.max_branches,
            max_noodles=self.config.max_noodles,
        )
        branches = decomposition.branches
        if not normal_form.equations:
            branches = [Branch(dict(normal_form.automata))]

        all_exact = decomposition.complete
        lia_queries = 0
        saw_unknown = False
        stats: Dict[str, int] = {}

        def merge_stats(delta: Dict[str, int]) -> None:
            for key, value in delta.items():
                stats[key] = stats.get(key, 0) + value

        for index, branch in enumerate(branches):
            if watch.expired():
                return SolveResult(Status.TIMEOUT, elapsed=watch.elapsed(), reason="timeout",
                                   branches_explored=index, lia_queries=lia_queries, stats=stats)
            outcome = self._solve_branch(problem, normal_form, branch, index, watch)
            lia_queries += outcome.lia_queries
            merge_stats(outcome.stats)
            if outcome.status is Status.SAT:
                return SolveResult(
                    Status.SAT,
                    model=outcome.model,
                    elapsed=watch.elapsed(),
                    branches_explored=index + 1,
                    lia_queries=lia_queries,
                    stats=stats,
                )
            if outcome.status is Status.TIMEOUT:
                return SolveResult(Status.TIMEOUT, elapsed=watch.elapsed(), reason=outcome.reason,
                                   branches_explored=index + 1, lia_queries=lia_queries, stats=stats)
            if outcome.status is Status.UNKNOWN:
                saw_unknown = True
            if not outcome.exact:
                all_exact = False

        if saw_unknown or not all_exact:
            return SolveResult(
                Status.UNKNOWN,
                elapsed=watch.elapsed(),
                reason="some branch could not be decided exactly",
                branches_explored=len(branches),
                lia_queries=lia_queries,
                stats=stats,
            )
        return SolveResult(
            Status.UNSAT,
            elapsed=watch.elapsed(),
            branches_explored=len(branches),
            lia_queries=lia_queries,
            stats=stats,
        )

    # ------------------------------------------------------------------
    # Branch preparation
    # ------------------------------------------------------------------
    def _expand_predicates(
        self, normal_form: NormalForm, branch: Branch
    ) -> Tuple[Optional[List[PositionPredicate]], Optional[List[NotContains]], Dict[str, Nfa], str]:
        """Apply the branch substitution to the position predicates."""
        automata = dict(branch.automata)
        regular: List[PositionPredicate] = []
        contains: List[NotContains] = []
        for predicate in normal_form.predicates:
            if isinstance(predicate, Disequality):
                regular.append(Disequality(branch.expand_term(predicate.lhs), branch.expand_term(predicate.rhs)))
            elif isinstance(predicate, NotPrefixOf):
                regular.append(NotPrefixOf(branch.expand_term(predicate.lhs), branch.expand_term(predicate.rhs)))
            elif isinstance(predicate, NotSuffixOf):
                regular.append(NotSuffixOf(branch.expand_term(predicate.lhs), branch.expand_term(predicate.rhs)))
            elif isinstance(predicate, StrAt):
                target = branch.expand(predicate.target)
                if len(target) == 0:
                    fresh = f"_eps{len(automata)}"
                    automata[fresh] = Nfa.epsilon_language()
                    target = (fresh,)
                if len(target) != 1:
                    return None, None, automata, "str.at target expands to a concatenation"
                regular.append(
                    StrAt(target[0], branch.expand_term(predicate.haystack), predicate.index, predicate.negated)
                )
            elif isinstance(predicate, NotContains):
                contains.append(
                    NotContains(branch.expand_term(predicate.needle), branch.expand_term(predicate.haystack))
                )
            else:  # pragma: no cover - defensive
                return None, None, automata, f"unsupported predicate {predicate!r}"
        return regular, contains, automata, ""

    def _build_components(
        self,
        regular: List[PositionPredicate],
        contains: List[NotContains],
        normal_form: NormalForm,
        branch: Branch,
        automata: Dict[str, Nfa],
        remaining: List[str],
        index: int,
    ) -> List[_Component]:
        """Group predicates into components of shared variables and encode each."""
        components: List[_Component] = []

        def component_for(names: Set[str]) -> _Component:
            hit: Optional[_Component] = None
            for component in components:
                if component.variables & names:
                    if hit is None:
                        hit = component
                    else:  # merge
                        hit.predicates.extend(component.predicates)
                        hit.contains.extend(component.contains)
                        hit.variables |= component.variables
                        components.remove(component)
            if hit is None:
                hit = _Component()
                components.append(hit)
            hit.variables |= names
            return hit

        for predicate in regular:
            component_for(set(predicate.string_variables())).predicates.append(predicate)
        for predicate in contains:
            component_for(set(predicate.string_variables())).contains.append(predicate)

        # Variables whose length is referenced by the integer constraints but
        # that belong to no predicate need a (predicate-free) encoding so that
        # their ⟨L, x⟩ counters exist.
        referenced = set()
        for name in normal_form.integer_formula.variables():
            if name.startswith("@len."):
                original = name[len("@len.") :]
                expansion = (
                    branch.expand(original)
                    if (original in branch.automata or original in branch.substitution)
                    else (original,)
                )
                referenced.update(expansion)
        uncovered = [name for name in referenced if name in automata and not any(name in c.variables for c in components)]
        if uncovered:
            leftover = _Component(variables=set(uncovered))
            components.append(leftover)

        for position, component in enumerate(components):
            prefix = f"b{index}.c{position}."
            extra = sorted(component.variables)
            if len(component.predicates) == 1 and not component.contains:
                component.encoding = encode_single(
                    component.predicates[0], automata, prefix=prefix,
                    extra_variables=[v for v in extra if v not in component.predicates[0].string_variables()],
                )
            else:
                component.encoding = encode_system(
                    component.predicates, automata, prefix=prefix, extra_variables=extra
                )
            for nc_index, predicate in enumerate(component.contains):
                encoder = NotContainsEncoder(predicate, automata, index=nc_index)
                component.encoders.append((predicate, encoder if encoder.languages_are_flat() else None))
        return components

    def _length_links(
        self, normal_form: NormalForm, branch: Branch, components: List[_Component]
    ) -> LiaFormula:
        """Tie the reserved ``@len.x`` variables to tag counters of the encodings."""

        def length_of(name: str) -> Optional[LinExpr]:
            for component in components:
                if name in component.variables:
                    return component.encoding.length_of(name)
            return None

        referenced = [
            name[len("@len.") :]
            for name in normal_form.integer_formula.variables()
            if name.startswith("@len.")
        ]
        links = []
        for name in referenced:
            expansion = (
                branch.expand(name)
                if (name in branch.automata or name in branch.substitution)
                else (name,)
            )
            total = LinExpr.constant(0)
            covered = True
            for part in expansion:
                expr = length_of(part)
                if expr is None:
                    covered = False
                    break
                total = total + expr
            if covered:
                links.append(eq(var(length_variable(name)), total))
        return conj(links)

    # ------------------------------------------------------------------
    def _solve_branch(
        self,
        problem: Problem,
        normal_form: NormalForm,
        branch: Branch,
        index: int,
        watch: Stopwatch,
    ) -> _BranchOutcome:
        regular, contains, automata, error = self._expand_predicates(normal_form, branch)
        if regular is None:
            return _BranchOutcome(Status.UNKNOWN, reason=error, exact=False)

        remaining = [name for name in automata if name not in branch.substitution]

        # Variables not constrained by any predicate still need a non-empty
        # language; they receive their shortest word in the final model.
        for name in remaining:
            if automata[name].trim().is_empty() and not automata[name].accepts(""):
                return _BranchOutcome(Status.UNSAT)

        try:
            components = self._build_components(
                regular, contains, normal_form, branch, automata, remaining, index
            )
        except Exception as failure:  # pragma: no cover - defensive
            return _BranchOutcome(Status.UNKNOWN, reason=f"encoding failed: {failure}", exact=False)

        parts: List[LiaFormula] = [normal_form.integer_formula, self._length_links(normal_form, branch, components)]
        exact = True
        for component in components:
            parts.append(component.encoding.formula)
            for predicate, encoder in component.encoders:
                if encoder is None:
                    exact = False
                    needle = LinExpr.sum_of(component.encoding.length_of(n) for n in predicate.needle)
                    haystack = LinExpr.sum_of(component.encoding.length_of(n) for n in predicate.haystack)
                    parts.append(gt(needle, haystack))

        # The MBQI refinement loop re-checks the same large conjunction with
        # one small lemma added per round.  With ``incremental_lia`` the base
        # parts are asserted once on an incremental solver and every round
        # only encodes its new lemma (atom maps, Tseitin clauses, learned
        # theory clauses and the simplex tableau survive across rounds).
        lemmas: List[LiaFormula] = []
        queries = 0
        stats: Dict[str, int] = {}

        def merge_stats(delta: Dict[str, int]) -> None:
            for key, value in delta.items():
                stats[key] = stats.get(key, 0) + value

        incremental = self.config.incremental_lia
        solver = LiaSolver(self.config.lia)
        if incremental:
            solver.add_assertion(conj(parts))
        for _round in range(self.config.max_instantiation_rounds):
            if watch.expired():
                return _BranchOutcome(Status.TIMEOUT, reason="timeout", lia_queries=queries,
                                      exact=exact, stats=stats)
            queries += 1
            if incremental:
                result = solver.check(deadline=watch.deadline)
            else:
                solver = LiaSolver(self.config.lia)
                result = solver.check(conj(parts + lemmas), deadline=watch.deadline)
            merge_stats(result.stats)
            if result.status is LiaStatus.UNSAT:
                return _BranchOutcome(Status.UNSAT, lia_queries=queries, exact=exact, stats=stats)
            if result.status is LiaStatus.UNKNOWN:
                status = Status.TIMEOUT if watch.expired() else Status.UNKNOWN
                return _BranchOutcome(status, reason=result.reason, lia_queries=queries,
                                      exact=exact, stats=stats)

            strings: Dict[str, str] = {}
            reconstruction_failed = False
            for component in components:
                names = sorted(component.variables)
                extracted = extract_assignment(component.encoding.parikh, result.model, names)
                if extracted is None:
                    reconstruction_failed = True
                    break
                strings.update(extracted)
            if reconstruction_failed:
                return _BranchOutcome(Status.UNKNOWN, reason="witness reconstruction failed",
                                      lia_queries=queries, exact=False, stats=stats)
            for name in remaining:
                if name not in strings:
                    strings[name] = shortest_word(automata[name]) or ""

            # MBQI refinement for ¬contains: evaluate on the candidate words.
            refinement_added = False
            for component in components:
                for predicate, encoder in component.encoders:
                    predicate_strings = {name: strings.get(name, "") for name in predicate.string_variables()}
                    offset = find_failing_offset(predicate, predicate_strings)
                    if offset is None:
                        continue
                    if encoder is None:
                        return _BranchOutcome(Status.UNKNOWN, reason="non-flat ¬contains counterexample",
                                              lia_queries=queries, exact=False, stats=stats)
                    if component.master_counts is None:
                        component.master_counts = base_transition_counts(
                            component.encoding.parikh, component.encoding.info
                        )
                    lemma = encoder.instantiation_lemma(
                        offset, component.master_counts, component.encoding.length_of
                    )
                    lemmas.append(lemma)
                    if incremental:
                        solver.add_assertion(lemma)
                    refinement_added = True
                    break
                if refinement_added:
                    break
            if refinement_added:
                continue

            model = self._build_model(problem, normal_form, branch, strings, result.model)
            if self.config.verify_models and not eval_problem(problem, model.strings, model.integers):
                return _BranchOutcome(Status.UNKNOWN, reason="model verification failed",
                                      lia_queries=queries, exact=False, stats=stats)
            return _BranchOutcome(Status.SAT, model=model, lia_queries=queries, exact=exact, stats=stats)

        return _BranchOutcome(Status.UNKNOWN, reason="instantiation budget exhausted",
                              lia_queries=queries, exact=False, stats=stats)

    # ------------------------------------------------------------------
    def _build_model(
        self,
        problem: Problem,
        normal_form: NormalForm,
        branch: Branch,
        strings: Dict[str, str],
        lia_model,
    ) -> StringModel:
        """Assemble a full model of the original problem from branch-level data."""
        full_strings: Dict[str, str] = {}
        for name in set(normal_form.string_variables()) | set(problem.string_variables()):
            expansion = (
                branch.expand(name)
                if (name in branch.automata or name in branch.substitution)
                else (name,)
            )
            full_strings[name] = "".join(strings.get(part, "") for part in expansion)
        integers = {name: lia_model.get(name, 0) for name in problem.integer_variables()}
        return StringModel(strings=full_strings, integers=integers)
