"""String solvers: the position-procedure solver and the comparison baselines."""

from .config import SolverConfig
from .result import SolveResult, Status, StringModel
from .solver import PositionSolver
from .baseline import EagerReductionSolver
from .enumerative import EnumerativeSolver
from .bruteforce import brute_force_check

__all__ = [
    "SolverConfig",
    "SolveResult",
    "Status",
    "StringModel",
    "PositionSolver",
    "EagerReductionSolver",
    "EnumerativeSolver",
    "brute_force_check",
]
