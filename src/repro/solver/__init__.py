"""String solvers: the incremental session, the position-procedure solver
and the comparison baselines."""

from ..budget import Budget, BudgetExceeded, UnknownKind, UnknownReason
from .config import SolverConfig
from .result import SolveResult, Status, StringModel
from .solver import IncrementalPipeline, PositionSolver
from .session import Session
from .baseline import EagerReductionSolver
from .enumerative import EnumerativeSolver
from .bruteforce import brute_force_check

__all__ = [
    "Budget",
    "BudgetExceeded",
    "UnknownKind",
    "UnknownReason",
    "SolverConfig",
    "SolveResult",
    "Status",
    "StringModel",
    "Session",
    "IncrementalPipeline",
    "PositionSolver",
    "EagerReductionSolver",
    "EnumerativeSolver",
    "brute_force_check",
]
