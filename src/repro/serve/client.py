"""A small blocking client for the solver server's JSON-lines protocol.

Used by ``python -m repro.smtlib --server HOST:PORT``, the traffic-replay
benchmark and the test-suite.  One :class:`ServeClient` wraps one TCP
connection; requests are answered in completion order, so a client that
wants simple semantics (this one) sends one request at a time and matches
the ``id``.  Thread safety: use one client per thread.
"""

from __future__ import annotations

import socket
from typing import Any, Dict, Optional, Sequence

from .protocol import MAX_LINE_BYTES, decode_line, encode_line


class ServeError(RuntimeError):
    """Connection-level or protocol-level failure talking to the server."""


class ServeClient:
    """One blocking connection to a running :mod:`repro.serve` server."""

    def __init__(
        self, host: str = "127.0.0.1", port: int = 7411, timeout: Optional[float] = 300.0
    ) -> None:
        self.host = host
        self.port = port
        try:
            self._sock = socket.create_connection((host, port), timeout=timeout)
        except OSError as error:
            raise ServeError(f"cannot connect to {host}:{port}: {error}") from None
        self._file = self._sock.makefile("rb")
        self._next_id = 0

    # ------------------------------------------------------------------
    def close(self) -> None:
        try:
            self._file.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    def request(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        """Send one request object, block for its response object."""
        self._next_id += 1
        request_id = self._next_id
        payload = dict(payload)
        payload.setdefault("id", request_id)
        try:
            self._sock.sendall(encode_line(payload))
            while True:
                line = self._file.readline(MAX_LINE_BYTES + 2)
                if not line:
                    raise ServeError("server closed the connection mid-request")
                response = decode_line(line)
                # Sequential use means the next response is ours, but be
                # defensive about stray ids (e.g. after a timeout skew).
                if response.get("id") in (payload["id"], None):
                    return response
        except (OSError, ValueError) as error:
            raise ServeError(f"request failed: {error}") from None

    # ------------------------------------------------------------------
    def solve(
        self,
        script: str,
        name: str = "",
        timeout: Optional[float] = None,
        portfolio=None,
        inject: Sequence[Dict[str, Any]] = (),
    ) -> Dict[str, Any]:
        """Submit one SMT-LIB script; returns the solve response object."""
        payload: Dict[str, Any] = {"op": "solve", "script": script}
        if name:
            payload["name"] = name
        if timeout is not None:
            payload["timeout"] = timeout
        if portfolio is not None:
            payload["portfolio"] = portfolio
        if inject:
            payload["inject"] = list(inject)
        return self.request(payload)

    def ping(self) -> Dict[str, Any]:
        return self.request({"op": "ping"})

    def stats(self) -> Dict[str, Any]:
        """Server-level counters (jobs, dedup, cancellations, restarts)."""
        return self.request({"op": "stats"})

    def shutdown(self) -> Dict[str, Any]:
        """Ask the server to drain and exit cleanly."""
        return self.request({"op": "shutdown"})


def parse_host_port(value: str, default_port: int = 7411) -> tuple:
    """Parse ``HOST:PORT`` (or bare ``HOST``) into a ``(host, port)`` pair."""
    if ":" in value:
        host, _, port_text = value.rpartition(":")
        try:
            return (host or "127.0.0.1", int(port_text))
        except ValueError:
            raise ServeError(f"bad port in {value!r}") from None
    return (value or "127.0.0.1", default_port)
