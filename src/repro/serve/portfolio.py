"""Portfolio strategies: complementary solver configurations raced per job.

The ingredients are the ablation switches :class:`repro.SolverConfig`
already exposes — the server races the pipeline against itself under
configurations that win on *different* instance shapes, takes the first
**sound** verdict and cancels the rest:

* ``witness`` — the default pipeline: witness/enumeration shortcuts on
  (the n-ary ``distinct`` easy path answers in microseconds where the
  encoding searches), incremental LIA, cutting planes.  Fastest on the
  sat-heavy symbolic-execution shapes.
* ``encoding`` — ``distinct_shortcut=False``: always the tag-automaton
  ``A^III`` encoding.  Covers instances where the greedy witness path
  declines and its fallback order loses time, and doubles as a standing
  cross-check of the shortcut (a disagreement between the two is an
  engine bug, which the server detects and refuses to answer).
* ``frugal`` — ``lia_cuts=False, incremental_lia=False``: the seed-style
  from-scratch LIA without cutting planes.  Cheapest setup cost; wins on
  small easily-sat instances where cut derivation is pure overhead, and
  diverges (hits its budget) on the cut-hungry unsat families — which is
  exactly why it only ever *races*, never answers alone.

"First sound verdict wins" is sound because every individual verdict
already is: ``sat`` models are re-verified against the original atoms and
``unsat`` cores re-checked by the engine regardless of configuration, so
the race only changes *which* sound answer arrives first, never whether
the answer is trustworthy.  Racing buys latency, not certainty.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Sequence, Tuple

from ..solver import SolverConfig

#: name → factory; every factory accepts the per-job budget knobs
STRATEGIES: Dict[str, Callable[..., SolverConfig]] = {
    "witness": lambda **kw: SolverConfig(**kw),
    "encoding": lambda **kw: SolverConfig(distinct_shortcut=False, **kw),
    "frugal": lambda **kw: SolverConfig(lia_cuts=False, incremental_lia=False, **kw),
}

#: the default race: the two complementary full-strength paths.  ``frugal``
#: joins via ``--portfolio witness,encoding,frugal`` when workers outnumber
#: the job stream.
DEFAULT_PORTFOLIO: Tuple[str, ...] = ("witness", "encoding")


def strategy_names(requested) -> Tuple[str, ...]:
    """Normalise a request's ``portfolio`` field into strategy names.

    ``True``/``None`` → the default portfolio, ``False`` → just
    ``witness``, a list → those names (validated).  Unknown names raise
    ``ValueError`` (the server answers an error response).
    """
    if requested is None or requested is True:
        return DEFAULT_PORTFOLIO
    if requested is False:
        return ("witness",)
    names = tuple(str(name) for name in requested)
    if not names:
        return DEFAULT_PORTFOLIO
    for name in names:
        if name not in STRATEGIES:
            raise ValueError(
                f"unknown strategy {name!r} (have: {', '.join(sorted(STRATEGIES))})"
            )
    if len(set(names)) != len(names):
        raise ValueError("duplicate strategy names in portfolio")
    return names


def config_for(
    name: str,
    timeout: Optional[float] = None,
    max_steps: Optional[int] = None,
) -> SolverConfig:
    """Build the :class:`SolverConfig` of strategy ``name`` for one job."""
    return STRATEGIES[name](timeout=timeout, max_steps=max_steps)


def pick_winner(outcomes: Sequence) -> Optional[object]:
    """The best completed outcome when nobody fully decided.

    Preference order: most decided ``check-sat`` answers, then portfolio
    position (deterministic).  Outcomes with protocol errors only win when
    nothing else completed at all; returns ``None`` for an empty field.
    """
    best = None
    best_rank: Tuple[int, int, int] = (-1, -1, 0)
    for position, outcome in enumerate(outcomes):
        if outcome is None:
            continue
        rank = (0 if outcome.error else 1, outcome.decided_count, -position)
        if best is None or rank > best_rank:
            best = outcome
            best_rank = rank
    return best
