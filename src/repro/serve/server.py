"""The asyncio front door: connections, dedup, portfolio racing, retries.

One :class:`SolverServer` owns

* an ``asyncio`` TCP server speaking the JSON-lines protocol (plus the raw
  SMT-LIB fallback) of :mod:`repro.serve.protocol`,
* a ``ProcessPoolExecutor`` worker fleet (:mod:`repro.serve.workers`),
  warm-seeded from the parent's interned automata and wired to the shared
  cancellation-flag array,
* the in-flight table that dedups structurally identical jobs, and
* the per-job portfolio coordinator: race the configured strategies,
  answer with the first fully *decided* outcome, cancel the rest.

Job lifecycle (the ``solve`` op)::

    request line ──parse/validate──▶ dedup table ──hit──▶ share the
         │                              │                 in-flight future
         │ miss                         ▼
         ▼                        race strategies: one JobSpec per
    slot + generation per          strategy → executor; first decided
    strategy (backpressure:        outcome wins → write the losers'
    bounded slot pool)             cancel flags → respond; losers unwind
                                   at their next checkpoint and free
                                   their workers

Fault tolerance: a worker death breaks the whole pool
(``BrokenProcessPool``), so the server rebuilds the executor — warm
payload and flags are re-used — and retries the affected runs
(``retries`` per spec, solving is pure so a retry is safe); a run that
keeps dying answers a structured ``unknown``.  A *hung* worker (no
checkpoints, so no cancellation point) is abandoned at the job deadline
plus grace: the job answers structured ``unknown(timeout)`` verdicts and
the slot is reclaimed only when the worker eventually returns — the fleet
degrades instead of wedging, and the response is never dropped.
"""

from __future__ import annotations

import asyncio
import glob as globlib
import itertools
import multiprocessing
import os
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from .portfolio import DEFAULT_PORTFOLIO, strategy_names
from .protocol import (
    JobOutcome,
    JobSpec,
    MAX_LINE_BYTES,
    conflicting_verdicts,
    count_check_sats,
    dedup_key,
    decode_line,
    encode_line,
    outcome_to_response,
    pad_outcome,
    synthetic_outcome,
)
from .workers import initializer, run_job

#: extra wall seconds past a job's deadline before the server stops
#: waiting for its workers and synthesises the response
DEADLINE_GRACE = 5.0


def _ensure_child_import_path() -> None:
    """Make ``repro`` importable in spawn children via ``PYTHONPATH``.

    The pool's spawn children import :mod:`repro.serve.workers` while
    unpickling the initializer; when the parent found ``repro`` through a
    ``sys.path`` edit (pytest's conftest, a script header) rather than an
    install, the child would not.  Exporting the package's parent
    directory through the environment closes the gap for every child the
    server ever spawns.
    """
    src = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
    existing = os.environ.get("PYTHONPATH", "")
    parts = existing.split(os.pathsep) if existing else []
    if src not in parts:
        os.environ["PYTHONPATH"] = os.pathsep.join([src] + parts)


def build_warm_payload(
    paths: Sequence[str], limit: int = 1024
) -> Tuple[List[Dict[str, Any]], int]:
    """Normalise warmup scripts in-process and snapshot the intern table.

    Every readable ``.smt2`` file in ``paths`` (globs allowed) is parsed
    and run through the *normalisation* layer only — no solving — which
    interns exactly the automata (word/regex/intersection forms) the
    workers would otherwise rebuild per job.  Returns the serialised
    payload and the number of scripts that contributed.
    """
    from ..smtlib import parse_problem
    from ..strings.normal_form import normalize
    from ..automata.serialization import intern_snapshot

    contributed = 0
    for pattern in paths:
        matches = sorted(globlib.glob(pattern)) or [pattern]
        for path in matches:
            try:
                with open(path) as handle:
                    text = handle.read()
                normalize(parse_problem(text))
                contributed += 1
            except Exception:
                continue  # warmup is best-effort; a bad file costs nothing
    return intern_snapshot(limit=limit), contributed


@dataclass
class _Race:
    """Book-keeping of one in-flight job's strategy race."""

    tasks: List[asyncio.Task] = field(default_factory=list)
    slots: Dict[asyncio.Task, Tuple[int, int]] = field(default_factory=dict)
    strategies: Dict[asyncio.Task, str] = field(default_factory=dict)


class SolverServer:
    """Async portfolio solver server over a process worker fleet."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        workers: int = 2,
        portfolio: Sequence[str] = DEFAULT_PORTFOLIO,
        default_timeout: float = 30.0,
        max_steps: Optional[int] = None,
        warm_paths: Sequence[str] = (),
        warm_limit: int = 1024,
        slots: Optional[int] = None,
        retries: int = 1,
        enable_fault_injection: bool = False,
        mp_method: str = "spawn",
    ) -> None:
        self.host = host
        self.port = port
        self.workers = max(1, workers)
        self.portfolio = strategy_names(list(portfolio))
        self.default_timeout = default_timeout
        self.max_steps = max_steps
        self.warm_paths = tuple(warm_paths)
        self.warm_limit = warm_limit
        self.retries = max(0, retries)
        self.enable_fault_injection = enable_fault_injection
        self.mp_method = mp_method
        self.n_slots = slots or max(4 * self.workers, 8)

        self.stats: Dict[str, int] = {
            "jobs_total": 0,
            "jobs_deduped": 0,
            "jobs_raw": 0,
            "portfolio_runs": 0,
            "portfolio_cancelled": 0,
            "portfolio_abandoned": 0,
            "verdict_conflicts": 0,
            "worker_restarts": 0,
            "job_retries": 0,
            "responses": 0,
            "errors": 0,
        }
        #: per-strategy win counters (first decided outcome)
        self.wins: Dict[str, int] = {}
        self.warm_payload: List[Dict[str, Any]] = []
        self.warm_scripts = 0

        self._ctx = multiprocessing.get_context(self.mp_method)
        self._flags = None
        self._executor: Optional[ProcessPoolExecutor] = None
        self._executor_gen = 0
        self._slot_pool: Optional[asyncio.Queue] = None
        self._generation = itertools.count(1)
        self._inflight: Dict[str, asyncio.Task] = {}
        self._jobs: set = set()
        self._server: Optional[asyncio.base_events.Server] = None
        self._closing = asyncio.Event()
        self._started = time.time()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        _ensure_child_import_path()
        if self.warm_paths:
            self.warm_payload, self.warm_scripts = await asyncio.to_thread(
                build_warm_payload, self.warm_paths, self.warm_limit
            )
        self._flags = self._ctx.Array("l", self.n_slots, lock=False)
        self._slot_pool = asyncio.Queue()
        for slot in range(self.n_slots):
            self._slot_pool.put_nowait(slot)
        self._build_executor()
        self._server = await asyncio.start_server(
            self._handle_client, self.host, self.port, limit=MAX_LINE_BYTES
        )
        self.port = self._server.sockets[0].getsockname()[1]

    def _build_executor(self) -> None:
        self._executor_gen += 1
        self._executor = ProcessPoolExecutor(
            max_workers=self.workers,
            mp_context=self._ctx,
            initializer=initializer,
            initargs=(self._flags, self.warm_payload),
        )

    async def wait_closed(self) -> None:
        await self._closing.wait()

    def request_shutdown(self) -> None:
        """Signal-safe shutdown trigger (SIGINT/SIGTERM handler)."""
        if not self._closing.is_set():
            asyncio.get_running_loop().create_task(self.shutdown())

    async def shutdown(self) -> None:
        """Stop accepting, drain in-flight jobs, reap the fleet."""
        if self._closing.is_set():
            return
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        # Cancel whatever is still racing so the drain is quick: -1 is the
        # universal cancel value every worker hook honours regardless of
        # its generation.
        if self._flags is not None:
            for slot in range(self.n_slots):
                self._flags[slot] = -1
        pending = [task for task in self._jobs if not task.done()]
        if pending:
            await asyncio.wait(pending, timeout=DEADLINE_GRACE + 1.0)
        # Then join every worker process (a clean reap: shutdown(wait=True)
        # joins the children; a broken pool already reaped its own).
        if self._executor is not None:
            await asyncio.to_thread(self._executor.shutdown, True)
        self._closing.set()

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        write_lock = asyncio.Lock()
        tasks: List[asyncio.Task] = []
        try:
            first = await reader.readline()
            if not first:
                return
            if not first.lstrip().startswith(b"{"):
                await self._handle_raw(first, reader, writer)
                return
            line = first
            while line:
                stripped = line.strip()
                if stripped:
                    task = asyncio.create_task(
                        self._handle_request_line(stripped, writer, write_lock)
                    )
                    tasks.append(task)
                    self._jobs.add(task)
                    task.add_done_callback(self._jobs.discard)
                line = await reader.readline()
            if tasks:
                await asyncio.wait(tasks)
        except (
            ConnectionResetError,
            BrokenPipeError,
            asyncio.LimitOverrunError,
            ValueError,  # StreamReader raises it for overlong lines
        ):
            pass
        finally:
            for task in tasks:
                if not task.done():
                    task.cancel()
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _handle_raw(
        self,
        first: bytes,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        """Raw mode: the whole connection is one SMT-LIB script."""
        self.stats["jobs_raw"] += 1
        rest = await reader.read()
        script = (first + rest).decode("utf-8", errors="replace")
        response = await self._solve(
            {"op": "solve", "script": script, "timeout": self.default_timeout}
        )
        for line in response.get("output", []):
            writer.write((line + "\n").encode("utf-8"))
        if not response.get("ok", False):
            writer.write(
                f"(error \"{response.get('error', 'internal error')}\")\n".encode()
            )
        await writer.drain()

    async def _handle_request_line(
        self, line: bytes, writer: asyncio.StreamWriter, write_lock: asyncio.Lock
    ) -> None:
        request_id: Any = None
        try:
            request = decode_line(line)
            request_id = request.get("id")
            response = await self._dispatch(request)
        except asyncio.CancelledError:
            raise
        except Exception as error:  # malformed request, internal dispatch bug
            self.stats["errors"] += 1
            response = {"ok": False, "error": f"{type(error).__name__}: {error}"}
        if request_id is not None:
            response.setdefault("id", request_id)
        self.stats["responses"] += 1
        async with write_lock:
            try:
                writer.write(encode_line(response))
                await writer.drain()
            except (ConnectionResetError, BrokenPipeError):
                pass  # client went away; the job result is simply dropped

    async def _dispatch(self, request: Dict[str, Any]) -> Dict[str, Any]:
        op = request.get("op", "solve")
        if op == "ping":
            return {"ok": True, "pong": True, "uptime": time.time() - self._started}
        if op == "stats":
            return {"ok": True, "stats": self.server_stats()}
        if op == "shutdown":
            asyncio.get_running_loop().create_task(self.shutdown())
            return {"ok": True, "shutting_down": True}
        if op == "solve":
            return await self._solve(request)
        return {"ok": False, "error": f"unknown op {op!r}"}

    def server_stats(self) -> Dict[str, Any]:
        snapshot: Dict[str, Any] = dict(self.stats)
        snapshot["wins"] = dict(self.wins)
        snapshot["workers"] = self.workers
        snapshot["slots"] = self.n_slots
        snapshot["portfolio"] = list(self.portfolio)
        snapshot["warm_payload"] = len(self.warm_payload)
        snapshot["warm_scripts"] = self.warm_scripts
        snapshot["executor_generation"] = self._executor_gen
        snapshot["uptime"] = time.time() - self._started
        return snapshot

    # ------------------------------------------------------------------
    # Solving
    # ------------------------------------------------------------------
    async def _solve(self, request: Dict[str, Any]) -> Dict[str, Any]:
        script = request.get("script")
        if not isinstance(script, str) or not script.strip():
            return {"ok": False, "error": "solve needs a non-empty 'script' string"}
        timeout = request.get("timeout", self.default_timeout)
        if timeout is not None:
            timeout = float(timeout)
            if timeout <= 0:
                return {"ok": False, "error": "timeout must be positive"}
        try:
            strategies = strategy_names(request.get("portfolio"))
        except ValueError as error:
            return {"ok": False, "error": str(error)}
        if request.get("portfolio") is None:
            strategies = self.portfolio
        inject = request.get("inject") or ()
        if inject and not self.enable_fault_injection:
            return {
                "ok": False,
                "error": "fault injection is disabled (start the server with "
                "--enable-fault-injection)",
            }
        self.stats["jobs_total"] += 1

        key = dedup_key(script, timeout) if not inject else None
        if key is not None:
            running = self._inflight.get(key)
            if running is not None:
                self.stats["jobs_deduped"] += 1
                response = dict(await asyncio.shield(running))
                response["deduped"] = True
                return response
            job = asyncio.create_task(
                self._race(script, request.get("name", ""), timeout, strategies, inject)
            )
            self._inflight[key] = job
            job.add_done_callback(
                lambda _task, key=key: self._inflight.pop(key, None)
            )
            response = dict(await asyncio.shield(job))
            response["deduped"] = False
            return response
        response = await self._race(
            script, request.get("name", ""), timeout, strategies, inject
        )
        response["deduped"] = False
        return response

    async def _race(
        self,
        script: str,
        name: str,
        timeout: Optional[float],
        strategies: Sequence[str],
        inject: Sequence[Dict[str, Any]],
    ) -> Dict[str, Any]:
        """Race the portfolio for one job; first decided outcome wins."""
        started = time.time()
        deadline = None if timeout is None else started + timeout
        self.stats["portfolio_runs"] += 1
        race = _Race()
        for strategy in strategies:
            slot = await self._slot_pool.get()
            generation = next(self._generation)
            spec = JobSpec(
                script=script,
                name=name,
                strategy=strategy,
                slot=slot,
                generation=generation,
                deadline=deadline,
                max_steps=self.max_steps,
                inject=tuple(dict(trigger) for trigger in inject),
            )
            task = asyncio.create_task(self._run_one(spec))
            race.tasks.append(task)
            race.slots[task] = (slot, generation)
            race.strategies[task] = strategy

        completed: List[JobOutcome] = []
        winner: Optional[JobOutcome] = None
        cancelled_runs = 0
        pending = set(race.tasks)
        abandoned = 0
        while pending and winner is None:
            wait_budget = None
            if deadline is not None:
                wait_budget = max(deadline + DEADLINE_GRACE - time.time(), 0.05)
            done, pending = await asyncio.wait(
                pending, timeout=wait_budget, return_when=asyncio.FIRST_COMPLETED
            )
            if not done:
                # Past deadline + grace with workers still silent: hung
                # fleet.  Cancel, abandon, answer for the job ourselves.
                abandoned = len(pending)
                break
            for task in done:
                outcome = task.result()
                self._release(race, task, outcome)
                completed.append(outcome)
                if outcome.cancelled:
                    cancelled_runs += 1
                    self.stats["portfolio_cancelled"] += 1
                if winner is None and outcome.decided:
                    winner = outcome

        # Cancel every still-running sibling (winner found, or give-up).
        # Each loser lands whenever its next checkpoint observes the flag;
        # the done callback reclaims its slot then and counts the
        # cancellation in the server stats even when it arrives after the
        # response below has gone out.
        def _late(finished: asyncio.Task, race: _Race = race) -> None:
            try:
                outcome = finished.result()
            except Exception:
                self._release(race, finished, None)
                return
            self._release(race, finished, outcome)
            if outcome.cancelled:
                self.stats["portfolio_cancelled"] += 1

        for task in pending:
            slot, generation = race.slots[task]
            self._flags[slot] = generation
            task.add_done_callback(_late)
        if pending and winner is not None:
            # Collect quick-cancelling losers so their cancel flag shows in
            # the response's portfolio field; don't wait past a short grace
            # — a loser deep in a long checkpoint interval frees its slot
            # (and is counted) via the done callback whenever it lands.
            done, still = await asyncio.wait(pending, timeout=0.5)
            for task in done:
                try:
                    outcome = task.result()
                except Exception:
                    continue
                completed.append(outcome)
                if outcome.cancelled:
                    cancelled_runs += 1
            pending = still
        if abandoned:
            self.stats["portfolio_abandoned"] += abandoned

        conflict = conflicting_verdicts(completed)
        if conflict is not None:
            index, a, b = conflict
            self.stats["verdict_conflicts"] += 1
            reason = (
                f"internal_error@serve.portfolio [strategies disagree on "
                f"check {index}: {a} vs {b}]"
            )
            outcome = synthetic_outcome("portfolio", count_check_sats(script), reason)
            return outcome_to_response(
                outcome,
                elapsed=time.time() - started,
                portfolio=self._portfolio_field(strategies, cancelled_runs, completed),
            )

        if winner is None:
            from .portfolio import pick_winner

            winner = pick_winner(completed)
        if winner is None:
            reason = (
                f"timeout@serve.fleet after {time.time() - started:.2f}s "
                f"[no worker outcome within deadline+grace]"
            )
            winner = synthetic_outcome(
                "none", count_check_sats(script), reason
            )
        else:
            self.wins[winner.strategy] = self.wins.get(winner.strategy, 0) + 1
            # A winner that unwound mid-script (interrupt, out-of-check
            # abort) answered only a prefix; the client still gets one
            # structured answer per check-sat.
            if winner.stats.get("serve_interrupted"):
                tail_reason = "interrupted@serve.worker [run aborted mid-script]"
            else:
                tail_reason = "timeout@serve.worker [run aborted before this check]"
            winner = pad_outcome(winner, count_check_sats(script), tail_reason)
        return outcome_to_response(
            winner,
            elapsed=time.time() - started,
            portfolio=self._portfolio_field(strategies, cancelled_runs, completed),
        )

    def _portfolio_field(
        self,
        strategies: Sequence[str],
        cancelled_runs: int,
        completed: Sequence[JobOutcome],
    ) -> Dict[str, Any]:
        return {
            "strategies": list(strategies),
            "cancelled": cancelled_runs,
            "completed": len(completed),
        }

    def _release(self, race: _Race, task: asyncio.Task, outcome: JobOutcome) -> None:
        entry = race.slots.pop(task, None)
        if entry is not None:
            self._slot_pool.put_nowait(entry[0])

    async def _run_one(self, spec: JobSpec) -> JobOutcome:
        """Run one spec with broken-pool detection and bounded retries."""
        attempt = 0
        while True:
            executor = self._executor
            generation = self._executor_gen
            try:
                future = executor.submit(
                    run_job,
                    JobSpec(
                        script=spec.script,
                        name=spec.name,
                        strategy=spec.strategy,
                        slot=spec.slot,
                        generation=spec.generation,
                        deadline=spec.deadline,
                        max_steps=spec.max_steps,
                        attempt=attempt,
                        inject=spec.inject,
                    ),
                )
                return await asyncio.wrap_future(future)
            except (BrokenProcessPool, RuntimeError) as error:
                # A worker died (taking the pool with it) or the pool was
                # torn down under us.  Rebuild once per generation, retry
                # the run while the budget allows.
                if isinstance(error, RuntimeError) and not isinstance(
                    error, BrokenProcessPool
                ):
                    if "shutdown" not in str(error):
                        raise
                if self._executor_gen == generation:
                    self.stats["worker_restarts"] += 1
                    try:
                        executor.shutdown(wait=False)
                    except Exception:
                        pass
                    self._build_executor()
                attempt += 1
                expired = (
                    spec.deadline is not None and time.time() >= spec.deadline
                )
                if attempt > self.retries or expired:
                    reason = (
                        f"internal_error@serve.worker [worker died "
                        f"({attempt - 1} retr{'y' if attempt == 2 else 'ies'} "
                        f"used)]"
                    )
                    if expired:
                        reason = (
                            "timeout@serve.worker [worker died and the "
                            "deadline passed before a retry]"
                        )
                    outcome = synthetic_outcome(
                        spec.strategy, count_check_sats(spec.script), reason
                    )
                    outcome.stats["serve_worker_died"] = 1
                    return outcome
                self.stats["job_retries"] += 1


async def run_server(server: SolverServer, ready_line: bool = True) -> int:
    """Start ``server``, print the ready line, block until shutdown."""
    await server.start()
    if ready_line:
        print(
            f"repro.serve listening on {server.host}:{server.port} "
            f"(workers={server.workers}, portfolio={','.join(server.portfolio)}, "
            f"warm={len(server.warm_payload)})",
            flush=True,
        )
    loop = asyncio.get_event_loop()
    try:
        import signal

        loop.add_signal_handler(signal.SIGINT, server.request_shutdown)
        loop.add_signal_handler(signal.SIGTERM, server.request_shutdown)
    except (NotImplementedError, RuntimeError):  # pragma: no cover - non-POSIX
        pass
    await server.wait_closed()
    return 0
