"""Run a solver server: ``python -m repro.serve [options]``.

Boots the asyncio front door plus the process worker fleet and blocks
until a clean shutdown (SIGINT/SIGTERM or a client ``shutdown`` op), then
exits 0 with every worker reaped.  The ready line::

    repro.serve listening on 127.0.0.1:7411 (workers=4, portfolio=witness,encoding, warm=137)

is printed (and flushed) once the socket is bound — drivers that need the
ephemeral port of ``--port 0`` parse it from there.
"""

from __future__ import annotations

import argparse
import asyncio
import os
from typing import List, Optional

from .portfolio import DEFAULT_PORTFOLIO, STRATEGIES
from .server import SolverServer, run_server


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="Serve the repro string solver over TCP (JSON-lines protocol "
        "or raw SMT-LIB scripts) with portfolio racing on a process worker fleet.",
    )
    parser.add_argument("--host", default="127.0.0.1", help="bind address")
    parser.add_argument(
        "--port", type=int, default=7411,
        help="TCP port (0 picks an ephemeral port, reported on the ready line)",
    )
    parser.add_argument(
        "--workers", type=int, default=max(2, (os.cpu_count() or 2) // 2),
        help="worker processes in the fleet (default: half the cores, min 2)",
    )
    parser.add_argument(
        "--portfolio", default=",".join(DEFAULT_PORTFOLIO),
        help="comma-separated strategies raced per job "
        f"(available: {', '.join(sorted(STRATEGIES))})",
    )
    parser.add_argument(
        "--timeout", type=float, default=30.0,
        help="default per-job wall-clock budget in seconds (default 30)",
    )
    parser.add_argument(
        "--max-steps", type=int, default=None,
        help="deterministic per-job step cap (default: none)",
    )
    parser.add_argument(
        "--warm", nargs="*", default=(), metavar="PATH",
        help=".smt2 files/globs normalised at startup; their automata are "
        "shipped to every worker as the warm intern payload",
    )
    parser.add_argument(
        "--warm-limit", type=int, default=1024,
        help="cap on the number of automata in the warm payload",
    )
    parser.add_argument(
        "--slots", type=int, default=None,
        help="in-flight strategy-run cap (default: 4x workers)",
    )
    parser.add_argument(
        "--retries", type=int, default=1,
        help="re-submissions of a run whose worker died (default 1)",
    )
    parser.add_argument(
        "--enable-fault-injection", action="store_true",
        help="accept 'inject' fault triggers in solve requests (chaos tests; "
        "never enable on a shared server)",
    )
    args = parser.parse_args(argv)

    portfolio = tuple(
        name.strip() for name in args.portfolio.split(",") if name.strip()
    )
    server = SolverServer(
        host=args.host,
        port=args.port,
        workers=args.workers,
        portfolio=portfolio,
        default_timeout=args.timeout,
        max_steps=args.max_steps,
        warm_paths=args.warm,
        warm_limit=args.warm_limit,
        slots=args.slots,
        retries=args.retries,
        enable_fault_injection=args.enable_fault_injection,
    )
    return asyncio.run(run_server(server))


if __name__ == "__main__":
    raise SystemExit(main())
