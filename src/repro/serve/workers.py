"""The process worker fleet: per-process warm caches and job execution.

The solver is pure-Python and CPU-bound, so concurrency means *processes*
(the GIL rules threads out).  The server owns a
:class:`concurrent.futures.ProcessPoolExecutor` whose workers are
initialised once through :func:`initializer` and then run one
:class:`~repro.serve.protocol.JobSpec` per :func:`run_job` call.

Worker startup does two things:

* **Warm-cache seeding** — the parent serialises its hot interned automata
  (:func:`repro.automata.serialization.intern_snapshot`, the dense wire
  format of PR 7) and every worker re-interns the payload on start
  (:func:`~repro.automata.serialization.intern_restore`).  From then on
  the normalisation layer's ``intern_nfa`` calls *hit* the shared
  canonical automata instead of rebuilding them; the
  ``automata_interning_warm_hits`` counter that flows through
  ``SolveResult.stats`` into ``Session.statistics()`` proves it per job.

* **Cancellation wiring** — the fleet shares one lock-free
  ``multiprocessing.Array`` of per-slot generation flags, inherited
  through the pool's ``initargs``.  Every job's budget ``hook`` polls its
  slot: the moment the parent writes the job's generation number there,
  the next engine checkpoint raises
  :class:`~repro.budget.BudgetExceeded` with an ``interrupted`` reason and
  the run unwinds through the PR-6 machinery (transactional caches, no
  corruption) within one checkpoint interval.  This is how portfolio
  losers are cancelled across the process boundary: no signals, no pipes
  — one shared-memory write, observed at the next cooperative checkpoint.

Fault injection (chaos tests) rides the same hook: a spec's ``inject``
triggers build a :class:`repro.testing.faults.FaultInjector` chained in
front of the cancellation poll, including the ``kill`` action
(``os._exit``) that simulates a worker dying mid-job.
"""

from __future__ import annotations

import os
import time
from typing import Any, Dict, Optional, Sequence

from ..budget import Budget, BudgetExceeded, UnknownKind, UnknownReason
from .protocol import JobOutcome, JobSpec

#: the shared cancellation flags (``multiprocessing.Array('l', slots)``),
#: installed by :func:`initializer` in every worker
_FLAGS = None

#: number of automata the warm payload seeded into this worker's interner
_WARM_SEEDED = 0

#: one NormalizationCache per worker process, shared by every job it runs:
#: the second job solving a related script hits the first job's compiled
#: regexes, word automata and membership intersections instead of
#: rebuilding them.  ``run_job`` marks all entries warm before each job,
#: so cross-job reuse surfaces as ``normalization_warm_hits`` in the job's
#: statistics (the same pattern as ``automata_interning_warm_hits``).
_NORMALIZATION_CACHE = None

#: how often (in budget checkpoints) the cancellation flag is polled; the
#: flag is one shared-memory integer read, so a small interval keeps the
#: cancel latency at "a few engine checkpoints" for negligible cost (a
#: trivial script produces only ~20 checkpoints end to end, so the
#: interval must stay well below that for losers of short races to
#: observe their flag at all)
_CANCEL_POLL_INTERVAL = 4


def initializer(flags, warm_payload: Sequence[Dict[str, Any]]) -> None:
    """Pool initializer: install the cancel flags, seed the warm caches."""
    global _FLAGS, _WARM_SEEDED
    _FLAGS = flags
    from ..automata.serialization import intern_restore

    _WARM_SEEDED = intern_restore(list(warm_payload))


def warm_seeded() -> int:
    """Automata seeded into this process's intern table at startup."""
    return _WARM_SEEDED


class _Cancelled(Exception):
    """Internal marker: the run observed its cancellation flag."""


def _build_hook(spec: JobSpec, state: Dict[str, bool]):
    """The budget hook of one run: fault triggers + cancellation polling."""
    injector = None
    if spec.inject:
        from ..testing.faults import FaultInjector, FaultSpec

        specs = []
        for trigger in spec.inject:
            if trigger.get("strategy") not in (None, spec.strategy):
                continue
            if spec.attempt >= trigger.get("attempts", 1 << 30):
                continue
            specs.append(
                FaultSpec(
                    stage=str(trigger.get("stage", "enter:solve")),
                    at=int(trigger.get("at", 1)),
                    action=str(trigger.get("action", "raise")),
                    delay=float(trigger.get("delay", 0.0)),
                    repeat=int(trigger.get("repeat", 1)),
                )
            )
        if specs:
            injector = FaultInjector(specs)

    flags, slot, generation = _FLAGS, spec.slot, spec.generation
    poll_in = [_CANCEL_POLL_INTERVAL]

    def hook(stage: str, count: int) -> None:
        if injector is not None:
            injector(stage, count)
        if flags is None or slot < 0:
            return
        poll_in[0] -= 1
        if poll_in[0] > 0:
            return
        poll_in[0] = _CANCEL_POLL_INTERVAL
        value = flags[slot]
        if value == generation or value == -1:  # -1: server-wide shutdown
            state["cancelled"] = True
            raise BudgetExceeded(
                UnknownReason(
                    UnknownKind.INTERRUPTED,
                    stage=stage,
                    detail="cancelled by portfolio",
                )
            )

    return hook


def run_job(spec: JobSpec) -> JobOutcome:
    """Execute one strategy run of one job inside a worker process.

    Always returns a :class:`JobOutcome` — parse errors, budget
    exhaustion, cancellation and injected interrupts all land in
    structured fields; the only ways no outcome comes back are a dead
    worker (the server detects the broken pool and retries) and a hard
    hang (the server answers for the job at its deadline).
    """
    from ..smtlib import ScriptRunner, SmtLibError
    from ..strings.normal_form import NormalizationCache
    from .portfolio import config_for

    global _NORMALIZATION_CACHE
    if _NORMALIZATION_CACHE is None:
        _NORMALIZATION_CACHE = NormalizationCache()
    else:
        # Everything cached by earlier jobs is "warm" for this one; hits on
        # those entries flow through Session.statistics() as
        # normalization_warm_hits.
        _NORMALIZATION_CACHE.mark_all_warm()

    started = time.time()
    outcome = JobOutcome(strategy=spec.strategy, worker_pid=os.getpid())
    if spec.deadline is None:
        remaining = None
    else:
        # A spec that aged out in the executor queue still runs — with an
        # epsilon budget, so every check answers a structured timeout
        # immediately and the response shape stays uniform.
        remaining = max(spec.deadline - started, 0.002)
    state = {"cancelled": False}
    budget = Budget(remaining, max_steps=spec.max_steps, hook=_build_hook(spec, state))
    config = config_for(spec.strategy, timeout=remaining, max_steps=spec.max_steps)
    # Collect output through the runner's callback: lines survive even when
    # an injected interrupt aborts the script halfway through.
    output_lines = []
    runner = ScriptRunner(
        config=config,
        out=output_lines.append,
        normalization_cache=_NORMALIZATION_CACHE,
    )
    try:
        runner.run(spec.script, name=spec.name, budget=budget)
    except SmtLibError as error:
        outcome.error = f"smtlib error: {error}"
    except BudgetExceeded:
        # Outside-a-check exhaustion (the pipeline converts in-check
        # exhaustion into verdicts); the answered prefix stands.
        outcome.stats["serve_budget_aborted"] = 1
    except KeyboardInterrupt:
        # Injected interrupt mid-run: the session unwound safely (PR-6
        # contract); report what was answered before the interrupt.
        outcome.stats["serve_interrupted"] = 1
    outcome.output = output_lines
    outcome.verdicts = list(runner.verdicts)
    outcome.reasons = list(runner.reasons)
    outcome.internal_errors = runner.internal_errors
    outcome.cancelled = state["cancelled"]
    if runner.session is not None:
        stats = runner.session.statistics()
        for key, value in stats.items():
            if isinstance(value, int):
                outcome.stats[key] = outcome.stats.get(key, 0) + value
    outcome.stats["serve_warm_seeded"] = _WARM_SEEDED
    outcome.elapsed = time.time() - started
    return outcome
