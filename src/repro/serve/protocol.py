"""Wire protocol of the solver server: requests, responses, job payloads.

Two layers of "wire" meet here:

* **client ↔ server** — JSON lines over TCP.  One request object per line,
  one response object per answering line; responses carry the client's
  ``id`` so a pipelining client can match them up (the server answers in
  completion order, not submission order).  A connection whose first byte
  is not ``{`` falls back to *raw mode*: the whole stream until EOF is one
  SMT-LIB script, answered with the solver's plain output lines — so
  ``cat file.smt2 | nc host port`` works without any framing.

* **server ↔ worker** — pickled :class:`JobSpec` / :class:`JobOutcome`
  dataclasses across the :class:`concurrent.futures.ProcessPoolExecutor`
  boundary.  Everything in them is plain data (strings, numbers, tuples),
  so the pickle stream stays version-stable; ``tests/test_serve_pickle.py``
  audits the round trip of every type that crosses this boundary.

Request objects::

    {"op": "solve", "id": 7, "script": "(assert ...)\\n(check-sat)",
     "timeout": 10.0, "portfolio": true}        # or a strategy-name list
    {"op": "ping"} | {"op": "stats"} | {"op": "shutdown"}

Solve responses::

    {"id": 7, "ok": true, "verdicts": ["sat"], "reasons": [""],
     "output": ["sat"], "strategy": "witness", "deduped": false,
     "portfolio": {"strategies": [...], "cancelled": 1, "completed": 1},
     "stats": {...}, "elapsed": 0.042}

Errors: ``{"id": 7, "ok": false, "error": "..."}``.  Every request gets
exactly one response — the server never drops a job on the floor; a job it
cannot decide (deadline, dead workers) answers with structured ``unknown``
verdicts instead.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

#: requests/responses above this many bytes are rejected (a line-based
#: protocol needs a framing guard against a client streaming garbage)
MAX_LINE_BYTES = 8 * 1024 * 1024

#: ops a server understands (anything else is an error response)
OPS = ("solve", "ping", "stats", "shutdown")


def encode_line(payload: Dict[str, Any]) -> bytes:
    """One protocol object as one newline-terminated JSON line."""
    return (json.dumps(payload, separators=(",", ":")) + "\n").encode("utf-8")


def decode_line(line: bytes) -> Dict[str, Any]:
    """Parse one protocol line; raises ``ValueError`` on malformed input."""
    if len(line) > MAX_LINE_BYTES:
        raise ValueError(f"request over the {MAX_LINE_BYTES} byte line limit")
    payload = json.loads(line.decode("utf-8"))
    if not isinstance(payload, dict):
        raise ValueError("request must be a JSON object")
    return payload


# ----------------------------------------------------------------------
# Server → worker
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class JobSpec:
    """One strategy run of one job, pickled to a worker process.

    ``slot``/``generation`` address the cross-process cancellation flag:
    the worker's budget hook polls ``flags[slot]`` and aborts with an
    ``interrupted`` reason the moment it equals ``generation`` (the parent
    writes that value to cancel exactly this run — slots are reused, the
    generation makes stale writes inert).  ``deadline`` is absolute wall
    time (``time.time()``), so a spec that sat in the executor queue past
    its deadline answers immediately.  ``inject`` carries fault-injection
    triggers (test/chaos mode only; see :mod:`repro.serve.workers`).
    """

    script: str
    name: str = ""
    strategy: str = "witness"
    slot: int = -1
    generation: int = 0
    deadline: Optional[float] = None
    max_steps: Optional[int] = None
    attempt: int = 0
    inject: Tuple[Dict[str, Any], ...] = ()


@dataclass
class JobOutcome:
    """What one strategy run reports back across the worker boundary."""

    strategy: str
    #: every output line the script produced (verdicts, models, cores, echo)
    output: List[str] = field(default_factory=list)
    #: the check-sat answers, in order (``sat``/``unsat``/``unknown``)
    verdicts: List[str] = field(default_factory=list)
    #: per check-sat: displayable structured reason ("" when decided)
    reasons: List[str] = field(default_factory=list)
    #: cumulative session statistics (plus worker-side serve counters)
    stats: Dict[str, int] = field(default_factory=dict)
    #: engine-internal errors observed by the runner
    internal_errors: int = 0
    #: the run aborted because the cancellation flag was set
    cancelled: bool = False
    #: non-empty on a parse/protocol failure (the job never solved)
    error: str = ""
    #: worker-side wall seconds spent on this run
    elapsed: float = 0.0
    #: pid of the worker that ran the job (diagnostics)
    worker_pid: int = 0

    @property
    def decided(self) -> bool:
        """Every check-sat answered ``sat`` or ``unsat`` (a *sound* win:
        all verdicts are model-verified / core-checked by the engine)."""
        return not self.error and bool(self.verdicts) and all(
            verdict in ("sat", "unsat") for verdict in self.verdicts
        )

    @property
    def decided_count(self) -> int:
        return sum(1 for verdict in self.verdicts if verdict in ("sat", "unsat"))


def outcome_to_response(outcome: JobOutcome, **extra: Any) -> Dict[str, Any]:
    """Project a worker outcome onto the client-facing response object."""
    payload: Dict[str, Any] = {
        "ok": not outcome.error,
        "verdicts": list(outcome.verdicts),
        "reasons": list(outcome.reasons),
        "output": list(outcome.output),
        "strategy": outcome.strategy,
        "stats": dict(outcome.stats),
        "internal_errors": outcome.internal_errors,
    }
    if outcome.error:
        payload["error"] = outcome.error
    payload.update(extra)
    return payload


# ----------------------------------------------------------------------
# Structural dedup keys
# ----------------------------------------------------------------------
def dedup_key(script_text: str, timeout: Optional[float]) -> Optional[str]:
    """A structural identity key for batch dedup, or ``None`` if exempt.

    Two in-flight jobs with the same key are the *same subproblem*: the
    server solves once and fans the response out.  The key is the printer
    fixpoint of the parsed problem — parse → print canonicalises naming,
    literal syntax and atom order the same way the PR-7 dense canonical
    forms canonicalise automata (the printer is the problem-level
    counterpart; its regex/atom structure is what the normalisation layer
    interns by canonical dense key downstream).  Only single-``check-sat``
    scripts without model/core/echo output are eligible — for anything
    richer the observable output depends on more than the problem, so the
    responses cannot be shared.  The timeout participates in the key:
    jobs racing under very different budgets should not alias.
    """
    from ..smtlib import parse_problem, parse_script, problem_to_smtlib
    from ..smtlib.parser import AssertCommand, CheckSat, DeclareConst
    from ..smtlib.parser import PopCommand, PushCommand, SetInfo, SetLogic, SetOption

    try:
        script = parse_script(script_text)
    except Exception:
        return None
    checks = 0
    for command in script.commands:
        if isinstance(command, CheckSat):
            checks += 1
        elif isinstance(command, (PushCommand, PopCommand)):
            return None
        elif not isinstance(
            command, (AssertCommand, DeclareConst, SetInfo, SetLogic, SetOption)
        ):
            # get-model / get-unsat-core / echo / exit: output is richer
            # than the verdict — not shareable.
            return None
    if checks != 1:
        return None
    try:
        printed = problem_to_smtlib(parse_problem(script_text))
    except Exception:
        return None
    bucket = "inf" if timeout is None else f"{timeout:.3f}"
    return f"{bucket}\n{printed}"


def count_check_sats(script_text: str) -> int:
    """How many ``check-sat`` commands a script issues (0 on parse failure).

    Used to synthesise a full set of structured ``unknown`` answers when no
    worker outcome survives (hung fleet past the deadline) — every
    ``check-sat`` still gets its answer line; a job is never dropped.
    """
    from ..smtlib import parse_script
    from ..smtlib.parser import CheckSat

    try:
        script = parse_script(script_text)
    except Exception:
        return 0
    return sum(1 for command in script.commands if isinstance(command, CheckSat))


def synthetic_outcome(
    strategy: str, n_checks: int, reason: str, cancelled: bool = False
) -> JobOutcome:
    """An all-unknown outcome fabricated server-side (no worker answered)."""
    output: List[str] = []
    for _ in range(n_checks):
        output.append("unknown")
        output.append(f"; unknown: {reason}")
    return JobOutcome(
        strategy=strategy,
        output=output,
        verdicts=["unknown"] * n_checks,
        reasons=[reason] * n_checks,
        cancelled=cancelled,
    )


def pad_outcome(outcome: JobOutcome, expected: int, reason: str) -> JobOutcome:
    """Complete an aborted run's answers up to ``expected`` check-sats.

    A run that unwound mid-script (injected interrupt, budget abort
    outside a check) answered only a prefix of its ``check-sat``s; the
    serve layer still owes the client one structured answer per check.
    Appends ``unknown`` verdicts carrying ``reason`` for the missing
    tail.  No-op when the run answered everything or failed to parse
    (``outcome.error`` — the whole response is an error then).
    """
    if outcome.error or expected <= len(outcome.verdicts):
        return outcome
    for _ in range(expected - len(outcome.verdicts)):
        outcome.output.append("unknown")
        outcome.output.append(f"; unknown: {reason}")
        outcome.verdicts.append("unknown")
        outcome.reasons.append(reason)
    return outcome


def conflicting_verdicts(outcomes: Sequence[JobOutcome]) -> Optional[Tuple[int, str, str]]:
    """Cross-check decided verdicts of completed runs of *one* job.

    Every engine verdict is independently sound (models are re-verified,
    cores re-checked), so two strategies disagreeing ``sat`` vs ``unsat``
    on the same check index would mean an engine soundness bug.  The
    server refuses to pick either answer in that case — this function
    returns ``(index, verdict_a, verdict_b)`` for the first conflict, and
    the caller answers ``unknown(internal_error)`` and counts it.
    """
    agreed: Dict[int, str] = {}
    for outcome in outcomes:
        if outcome.error:
            continue
        for index, verdict in enumerate(outcome.verdicts):
            if verdict not in ("sat", "unsat"):
                continue
            seen = agreed.get(index)
            if seen is None:
                agreed[index] = verdict
            elif seen != verdict:
                return (index, seen, verdict)
    return None
