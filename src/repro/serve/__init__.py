"""``repro.serve`` — the async portfolio solver server.

The one-request-one-session architecture of :class:`repro.Session` scales
to concurrent traffic here: an asyncio front door accepts SMT-LIB jobs
over a JSON-lines TCP protocol (or as raw scripts), dispatches them to a
process worker fleet with warm per-worker automata caches, races
complementary solver configurations per job (first *sound* verdict wins,
losers cancelled across the process boundary through the budget hook) and
dedups structurally identical in-flight jobs.

Entry points:

* ``python -m repro.serve`` — run a server,
* ``python -m repro.smtlib --server HOST:PORT`` — submit scripts to one,
* :class:`~repro.serve.client.ServeClient` — programmatic access,
* ``benchmarks/perf/bench_serve.py`` — the latency-under-load benchmark.
"""

from .client import ServeClient, ServeError, parse_host_port
from .portfolio import DEFAULT_PORTFOLIO, STRATEGIES, config_for, strategy_names
from .protocol import JobOutcome, JobSpec, dedup_key
from .server import SolverServer, build_warm_payload, run_server

__all__ = [
    "ServeClient",
    "ServeError",
    "parse_host_port",
    "DEFAULT_PORTFOLIO",
    "STRATEGIES",
    "config_for",
    "strategy_names",
    "JobOutcome",
    "JobSpec",
    "dedup_key",
    "SolverServer",
    "build_warm_payload",
    "run_server",
]
